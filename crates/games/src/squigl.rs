//! Squigl — output-agreement object tracing.
//!
//! Both players see the same image and an ESP-provided word, and each
//! *traces* the object the word names. They score when their traces
//! overlap strongly; the intersection of agreeing traces is kept as a
//! segmentation of the object. Where Peekaboom locates objects via
//! inversion, Squigl segments them via output agreement — the paper
//! presents the pair as the two spatial GWAPs.
//!
//! Traces are modelled as rectangles around the object (a player's
//! bounding trace): an attentive player's trace covers the object box
//! with skill-scaled jitter, a careless one drifts. Agreement = IoU of
//! the two traces above a threshold; the verified output is their
//! intersection.

use crate::world::WorldConfig;
use hc_core::prelude::*;
use hc_crowd::{Population, Vocabulary};
use rand::Rng;

/// Canvas width (shared with Peekaboom's convention).
pub const CANVAS_W: u32 = 640;
/// Canvas height.
pub const CANVAS_H: u32 = 480;

/// IoU two traces must reach to count as agreeing.
pub const AGREEMENT_IOU: f64 = 0.5;

/// Pause between rounds.
const INTER_ROUND_GAP: SimDuration = SimDuration::from_secs(2);

/// One Squigl stimulus: a named object with a ground-truth box.
#[derive(Debug, Clone, PartialEq)]
pub struct SquiglObject {
    /// The word naming the object to trace.
    pub word: Label,
    /// Ground-truth object box.
    pub bbox: Region,
}

/// The Squigl world.
#[derive(Debug, Clone)]
pub struct SquiglWorld {
    objects: Vec<SquiglObject>,
    vocabulary: Vocabulary,
}

impl SquiglWorld {
    /// Generates `config.stimuli` objects.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        let vocabulary = Vocabulary::new(config.vocabulary, config.zipf_exponent);
        let objects = (0..config.stimuli)
            .map(|_| {
                let w = rng.gen_range(80..260u32);
                let h = rng.gen_range(80..220u32);
                let x = rng.gen_range(0..CANVAS_W - w);
                let y = rng.gen_range(0..CANVAS_H - h);
                SquiglObject {
                    word: vocabulary.sample(rng),
                    bbox: Region::new(x, y, w, h),
                }
            })
            .collect();
        SquiglWorld {
            objects,
            vocabulary,
        }
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Registers every object as a platform task.
    pub fn register_tasks(&self, platform: &mut Platform) -> Vec<TaskId> {
        (0..self.objects.len())
            .map(|i| platform.add_task(Stimulus::Image(i as u64)))
            .collect()
    }

    /// The object behind a task.
    #[must_use]
    pub fn object_for_task(&self, task: TaskId) -> Option<&SquiglObject> {
        self.objects.get(task.raw() as usize)
    }

    /// The shared vocabulary.
    #[must_use]
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Samples one player's trace of `object`: the true box inflated/
    /// deflated and jittered inversely to skill. Adversarial players
    /// produce unrelated rectangles.
    pub fn sample_trace<R: Rng + ?Sized>(
        &self,
        object: &SquiglObject,
        skill: f64,
        adversarial: bool,
        rng: &mut R,
    ) -> Region {
        if adversarial {
            let w = rng.gen_range(40..200u32);
            let h = rng.gen_range(40..200u32);
            let x = rng.gen_range(0..CANVAS_W - w);
            let y = rng.gen_range(0..CANVAS_H - h);
            return Region::new(x, y, w, h);
        }
        let skill = skill.clamp(0.0, 1.0);
        let jitter = (1.0 - skill) * 60.0 + 4.0;
        let dx = (hc_sim::dist::standard_normal(rng) * jitter) as i64;
        let dy = (hc_sim::dist::standard_normal(rng) * jitter) as i64;
        let grow = 1.0 + hc_sim::dist::standard_normal(rng).abs() * (1.0 - skill) * 0.4;
        let w = ((f64::from(object.bbox.w) * grow) as u32).clamp(8, CANVAS_W);
        let h = ((f64::from(object.bbox.h) * grow) as u32).clamp(8, CANVAS_H);
        let x =
            (i64::from(object.bbox.x) + dx).clamp(0, i64::from(CANVAS_W.saturating_sub(w))) as u32;
        let y =
            (i64::from(object.bbox.y) + dy).clamp(0, i64::from(CANVAS_H.saturating_sub(h))) as u32;
        Region::new(x, y, w, h)
    }
}

/// Segmentations produced by a session: `(task, agreed region, IoU vs
/// truth)` per agreeing round.
#[derive(Debug, Clone, Default)]
pub struct SquiglOutputs {
    /// Agreed segmentations.
    pub segmentations: Vec<(TaskId, Region, f64)>,
}

impl SquiglOutputs {
    /// Mean IoU against ground truth over agreed rounds (0 when none).
    #[must_use]
    pub fn mean_iou(&self) -> f64 {
        if self.segmentations.is_empty() {
            return 0.0;
        }
        self.segmentations
            .iter()
            .map(|(_, _, iou)| iou)
            .sum::<f64>()
            / self.segmentations.len() as f64
    }
}

/// Drives one Squigl session between two players.
#[allow(clippy::too_many_arguments)]
pub fn play_squigl_session<R: Rng + ?Sized>(
    platform: &mut Platform,
    world: &SquiglWorld,
    population: &mut Population,
    left: PlayerId,
    right: PlayerId,
    session_id: SessionId,
    start: SimTime,
    rng: &mut R,
) -> (SessionTranscript, SquiglOutputs) {
    let cfg = platform.config().session;
    let mut session = Session::new(session_id, [left, right], start, cfg);
    let mut outputs = SquiglOutputs::default();
    let mut now = start;
    let mut streaks = [0u32; 2];

    while session.can_play_more(now) {
        let Some(task) = platform.next_task_for(&[left, right], rng) else {
            break;
        };
        platform.record_served(task, &[left, right]);
        let Some(object) = world.object_for_task(task).cloned() else {
            break;
        };
        let (pa, pb) = population
            .get_pair_mut(left, right)
            .expect("players exist and are distinct"); // hc-analyze: allow(P1): callers pass two distinct registered ids
                                                       // Each player traces once; tracing takes a few think-time draws.
        let mut duration = SimDuration::ZERO;
        let mut traces = [Region::new(0, 0, 0, 0); 2];
        for (i, profile) in [pa, pb].into_iter().enumerate() {
            traces[i] = world.sample_trace(&object, profile.skill, profile.is_adversarial(), rng);
            duration += profile.response.sample(None, rng) * 3;
        }
        let iou = traces[0].iou(&traces[1]);
        let matched = iou >= AGREEMENT_IOU;
        if matched {
            if let Some(agreed) = traces[0].intersect(&traces[1]) {
                outputs
                    .segmentations
                    .push((task, agreed, agreed.iou(&object.bbox)));
                // The agreed association flows through verification.
                let _ = platform.ingest_agreement(task, object.word.clone(), left, right);
            }
        }
        let end = now + duration.min(cfg.round_time_limit);
        let rule = platform.score_rule();
        let dur_secs = duration.as_secs_f64();
        let points = [
            rule.round_score(matched, dur_secs, streaks[0]),
            rule.round_score(matched, dur_secs, streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::OutputAgreement,
            task,
            matched,
            candidate_outputs: u32::from(matched),
            duration: duration.min(cfg.round_time_limit),
            points,
        });
        now = end + INTER_ROUND_GAP;
    }

    let transcript = session.finish(now);
    platform.record_session(&transcript);
    (transcript, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_crowd::{ArchetypeMix, PopulationBuilder};
    use rand::SeedableRng;

    fn setup(skill: f64) -> (Platform, SquiglWorld, Population, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let world = SquiglWorld::generate(&WorldConfig::small(), &mut rng);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .unwrap();
        world.register_tasks(&mut platform);
        let pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .skill_range(skill, (skill + 0.01).min(1.0))
            .build(&mut rng);
        platform.register_player();
        platform.register_player();
        (platform, world, pop, rng)
    }

    #[test]
    fn skilled_pairs_segment_objects() {
        let (mut platform, world, mut pop, mut rng) = setup(0.95);
        let (t, out) = play_squigl_session(
            &mut platform,
            &world,
            &mut pop,
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(t.rounds() > 0);
        assert!(
            t.match_rate() > 0.5,
            "skilled agreement rate {}",
            t.match_rate()
        );
        assert!(!out.segmentations.is_empty());
        assert!(out.mean_iou() > 0.5, "segmentation IoU {}", out.mean_iou());
    }

    #[test]
    fn unskilled_traces_agree_less() {
        let rate = |skill: f64| {
            let (mut platform, world, mut pop, mut rng) = setup(skill);
            let mut matched = 0;
            let mut rounds = 0;
            for s in 0..6 {
                let (t, _) = play_squigl_session(
                    &mut platform,
                    &world,
                    &mut pop,
                    PlayerId::new(0),
                    PlayerId::new(1),
                    SessionId::new(s),
                    SimTime::from_secs(s * 1_000),
                    &mut rng,
                );
                matched += t.matched_count();
                rounds += t.rounds();
            }
            matched as f64 / rounds.max(1) as f64
        };
        assert!(rate(0.95) > rate(0.1) + 0.2, "skill must drive agreement");
    }

    #[test]
    fn adversarial_traces_rarely_agree_with_honest_ones() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let world = SquiglWorld::generate(&WorldConfig::small(), &mut rng);
        let object = world.object_for_task(TaskId::new(0)).unwrap();
        let mut agreements = 0;
        for _ in 0..300 {
            let honest = world.sample_trace(object, 0.9, false, &mut rng);
            let adv = world.sample_trace(object, 0.9, true, &mut rng);
            if honest.iou(&adv) >= AGREEMENT_IOU {
                agreements += 1;
            }
        }
        assert!(agreements < 30, "adversarial agreements {agreements}");
    }

    #[test]
    fn traces_stay_on_canvas() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let world = SquiglWorld::generate(&WorldConfig::small(), &mut rng);
        let object = world.object_for_task(TaskId::new(1)).unwrap();
        for _ in 0..300 {
            for adv in [false, true] {
                let tr = world.sample_trace(object, 0.2, adv, &mut rng);
                assert!(tr.x + tr.w <= CANVAS_W, "trace off canvas: {tr:?}");
                assert!(tr.y + tr.h <= CANVAS_H, "trace off canvas: {tr:?}");
            }
        }
    }

    #[test]
    fn world_accessors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let world = SquiglWorld::generate(&WorldConfig::small(), &mut rng);
        assert_eq!(world.len(), 50);
        assert!(!world.is_empty());
        assert!(world.object_for_task(TaskId::new(0)).is_some());
        assert!(world.object_for_task(TaskId::new(999)).is_none());
        assert!(!world.vocabulary().is_empty());
        assert_eq!(SquiglOutputs::default().mean_iou(), 0.0);
    }
}
