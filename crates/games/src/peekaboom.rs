//! Peekaboom — inversion-problem object location.
//!
//! "Boom" sees an image and a word (e.g. an ESP-verified label) and
//! reveals small circular-ish patches of the image; "Peek" sees only the
//! revealed patches and must guess the word. A correct guess proves the
//! revealed area depicts the object, so the union of reveals localizes it
//! — the output the deployed game shipped to vision researchers. Quality
//! is scored as intersection-over-union between the revealed union and
//! the true object box.

use crate::world::WorldConfig;
use hc_core::prelude::*;
use hc_crowd::{LabelDistribution, Population, Vocabulary};
use rand::Rng;

/// Canvas size reveals live on.
pub const CANVAS_W: u32 = 640;
/// Canvas height.
pub const CANVAS_H: u32 = 480;

/// Reveal patch edge length.
const PATCH: u32 = 80;

/// Maximum reveals per round.
const MAX_REVEALS: usize = 8;

/// Guesses per reveal.
const GUESSES_PER_REVEAL: usize = 2;

/// Pause between rounds.
const INTER_ROUND_GAP: SimDuration = SimDuration::from_secs(2);

/// One Peekaboom stimulus: an object with a name and a true bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct BoomObject {
    /// The word Peek must guess.
    pub word: Label,
    /// Ground-truth object box.
    pub bbox: Region,
}

/// The Peekaboom world.
#[derive(Debug, Clone)]
pub struct PeekaboomWorld {
    objects: Vec<BoomObject>,
    vocabulary: Vocabulary,
}

impl PeekaboomWorld {
    /// Generates `config.stimuli` objects with random boxes on the canvas.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        let vocabulary = Vocabulary::new(config.vocabulary, config.zipf_exponent);
        let objects = (0..config.stimuli)
            .map(|_| {
                let w = rng.gen_range(60..240u32);
                let h = rng.gen_range(60..200u32);
                let x = rng.gen_range(0..CANVAS_W - w);
                let y = rng.gen_range(0..CANVAS_H - h);
                BoomObject {
                    word: vocabulary.sample(rng),
                    bbox: Region::new(x, y, w, h),
                }
            })
            .collect();
        PeekaboomWorld {
            objects,
            vocabulary,
        }
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Registers every object as a platform task.
    pub fn register_tasks(&self, platform: &mut Platform) -> Vec<TaskId> {
        (0..self.objects.len())
            .map(|i| platform.add_task(Stimulus::Image(i as u64)))
            .collect()
    }

    /// The object behind a task.
    #[must_use]
    pub fn object_for_task(&self, task: TaskId) -> Option<&BoomObject> {
        self.objects.get(task.raw() as usize)
    }

    /// The shared vocabulary.
    #[must_use]
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Samples a reveal patch roughly centred on the object (Boom knows
    /// where it is) with jitter scaled by `(1 - skill)`.
    pub fn sample_reveal<R: Rng + ?Sized>(
        &self,
        object: &BoomObject,
        skill: f64,
        rng: &mut R,
    ) -> Region {
        let cx = object.bbox.x + object.bbox.w / 2;
        let cy = object.bbox.y + object.bbox.h / 2;
        let spread = (1.0 - skill.clamp(0.0, 1.0)) * 150.0 + 20.0;
        let jx = (hc_sim::dist::standard_normal(rng) * spread) as i64;
        let jy = (hc_sim::dist::standard_normal(rng) * spread) as i64;
        let x = (i64::from(cx) + jx - i64::from(PATCH / 2)).clamp(0, i64::from(CANVAS_W - PATCH))
            as u32;
        let y = (i64::from(cy) + jy - i64::from(PATCH / 2)).clamp(0, i64::from(CANVAS_H - PATCH))
            as u32;
        Region::new(x, y, PATCH, PATCH)
    }

    /// How much of the object the reveals have uncovered, in `[0, 1]`
    /// (sum of per-reveal intersections over the object area, capped —
    /// a cheap, monotone coverage proxy).
    #[must_use]
    pub fn coverage(object: &BoomObject, reveals: &[Region]) -> f64 {
        let total: u64 = reveals
            .iter()
            .filter_map(|r| r.intersect(&object.bbox))
            .map(|r| r.area())
            .sum();
        (total as f64 / object.bbox.area().max(1) as f64).min(1.0)
    }
}

/// Outcome of one Peekaboom session beyond the transcript: the localized
/// regions and their IoU against truth.
#[derive(Debug, Clone, Default)]
pub struct PeekaboomOutputs {
    /// `(task, revealed union, IoU vs truth)` per successful round.
    pub locations: Vec<(TaskId, Region, f64)>,
}

impl PeekaboomOutputs {
    /// Mean IoU over successful rounds (0 when none).
    #[must_use]
    pub fn mean_iou(&self) -> f64 {
        if self.locations.is_empty() {
            return 0.0;
        }
        self.locations.iter().map(|(_, _, iou)| iou).sum::<f64>() / self.locations.len() as f64
    }
}

/// Drives one Peekaboom session (left seat = Boom, right = Peek).
#[allow(clippy::too_many_arguments)]
pub fn play_peekaboom_session<R: Rng + ?Sized>(
    platform: &mut Platform,
    world: &PeekaboomWorld,
    population: &mut Population,
    boom: PlayerId,
    peek: PlayerId,
    session_id: SessionId,
    start: SimTime,
    rng: &mut R,
) -> (SessionTranscript, PeekaboomOutputs) {
    let cfg = platform.config().session;
    let mut session = Session::new(session_id, [boom, peek], start, cfg);
    let mut outputs = PeekaboomOutputs::default();
    let mut now = start;
    let mut streaks = [0u32; 2];

    while session.can_play_more(now) {
        let Some(task) = platform.next_task_for(&[boom, peek], rng) else {
            break;
        };
        platform.record_served(task, &[boom, peek]);
        let Some(object) = world.object_for_task(task).cloned() else {
            break;
        };
        let mut round = InversionRound::new(task, object.word.clone(), cfg.round_time_limit);
        let deadline = now + cfg.round_time_limit;
        let (pb, pp) = population
            .get_pair_mut(boom, peek)
            .expect("players exist and are distinct"); // hc-analyze: allow(P1): callers pass two distinct registered ids
        let mut cursor = now;
        let mut reveals: Vec<Region> = Vec::new();
        let mut end = deadline;
        let mut matched = false;

        'round: for _ in 0..MAX_REVEALS {
            let reveal = world.sample_reveal(&object, pb.skill, rng);
            let latency = pb.response.sample(None, rng);
            cursor += latency;
            if cursor > deadline {
                break 'round;
            }
            if matches!(
                round.submit(Seat::Left, Answer::Region(reveal), cursor),
                SubmitOutcome::RoundOver
            ) {
                break 'round;
            }
            reveals.push(reveal);

            // Peek's guess quality scales with how much object is visible.
            let coverage = PeekaboomWorld::coverage(&object, &reveals);
            let p_word = (0.05 + 0.9 * coverage).clamp(0.0, 0.98);
            let candidates = LabelDistribution::new(vec![
                (object.word.clone(), p_word.max(0.01)),
                (
                    Label::new(&format!("noise{}a", task.raw())),
                    (1.0 - p_word) / 2.0 + 1e-9,
                ),
                (
                    Label::new(&format!("noise{}b", task.raw())),
                    (1.0 - p_word) / 2.0 + 1e-9,
                ),
            ])
            .expect("valid candidate weights"); // hc-analyze: allow(P1): candidate weights are positive by construction
            for _ in 0..GUESSES_PER_REVEAL {
                let guess = pp
                    .behavior
                    .guess(&candidates, world.vocabulary(), pp.skill, rng);
                let latency = pp.response.sample(
                    match &guess {
                        Answer::Text(l) => Some(l),
                        _ => None,
                    },
                    rng,
                );
                cursor += latency;
                if cursor > deadline {
                    break 'round;
                }
                match round.submit(Seat::Right, guess, cursor) {
                    SubmitOutcome::Matched(_) => {
                        matched = true;
                        end = cursor;
                        break 'round;
                    }
                    SubmitOutcome::RoundOver => break 'round,
                    _ => {}
                }
            }
        }

        let result = round.finish(end.min(deadline));
        if let Some(region) = result.revealed_region() {
            let iou = region.iou(&object.bbox);
            outputs.locations.push((task, region, iou));
            // The localized word is a verified association for the image.
            let _ = platform.ingest_agreement(task, object.word.clone(), boom, peek);
        }
        let duration = result.duration;
        let rule = platform.score_rule();
        let points = [
            rule.round_score(matched, duration.as_secs_f64(), streaks[0]),
            rule.round_score(matched, duration.as_secs_f64(), streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::InversionProblem,
            task,
            matched,
            candidate_outputs: u32::from(matched),
            duration,
            points,
        });
        now = end.min(deadline) + INTER_ROUND_GAP;
    }

    let transcript = session.finish(now);
    platform.record_session(&transcript);
    (transcript, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_crowd::{ArchetypeMix, PopulationBuilder};
    use rand::SeedableRng;

    fn setup(skill: f64) -> (Platform, PeekaboomWorld, Population, rand::rngs::StdRng) {
        let mut r = rand::rngs::StdRng::seed_from_u64(808);
        let world = PeekaboomWorld::generate(&WorldConfig::small(), &mut r);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .unwrap();
        world.register_tasks(&mut platform);
        let pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .skill_range(skill, skill + 0.01)
            .build(&mut r);
        platform.register_player();
        platform.register_player();
        (platform, world, pop, r)
    }

    #[test]
    fn skilled_pairs_localize_objects() {
        let (mut platform, world, mut pop, mut r) = setup(0.9);
        let (t, out) = play_peekaboom_session(
            &mut platform,
            &world,
            &mut pop,
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
            &mut r,
        );
        assert!(t.rounds() > 0);
        assert!(!out.locations.is_empty(), "no objects localized");
        assert!(out.mean_iou() > 0.1, "mean IoU {}", out.mean_iou());
        for (_, region, iou) in &out.locations {
            assert!(region.area() > 0);
            assert!((0.0..=1.0).contains(iou));
        }
    }

    #[test]
    fn reveals_concentrate_on_the_object_with_skill() {
        let mut r = rand::rngs::StdRng::seed_from_u64(2);
        let world = PeekaboomWorld::generate(&WorldConfig::small(), &mut r);
        let object = world.object_for_task(TaskId::new(0)).unwrap();
        let hits = |skill: f64, r: &mut rand::rngs::StdRng| {
            (0..300)
                .filter(|_| {
                    world
                        .sample_reveal(object, skill, r)
                        .intersect(&object.bbox)
                        .is_some()
                })
                .count()
        };
        let skilled = hits(0.95, &mut r);
        let clumsy = hits(0.0, &mut r);
        assert!(skilled > clumsy, "skilled {skilled} clumsy {clumsy}");
    }

    #[test]
    fn coverage_is_monotone_and_bounded() {
        let object = BoomObject {
            word: Label::new("car"),
            bbox: Region::new(100, 100, 100, 100),
        };
        let r1 = Region::new(100, 100, 50, 100);
        let r2 = Region::new(150, 100, 50, 100);
        let c1 = PeekaboomWorld::coverage(&object, &[r1]);
        let c2 = PeekaboomWorld::coverage(&object, &[r1, r2]);
        assert!((c1 - 0.5).abs() < 1e-12);
        assert!((c2 - 1.0).abs() < 1e-12);
        assert!(c2 >= c1);
        let far = Region::new(500, 400, 50, 50);
        assert_eq!(PeekaboomWorld::coverage(&object, &[far]), 0.0);
    }

    #[test]
    fn reveals_stay_on_canvas() {
        let mut r = rand::rngs::StdRng::seed_from_u64(5);
        let world = PeekaboomWorld::generate(&WorldConfig::small(), &mut r);
        let object = world.object_for_task(TaskId::new(1)).unwrap();
        for _ in 0..500 {
            let patch = world.sample_reveal(object, 0.0, &mut r);
            assert!(patch.x + patch.w <= CANVAS_W);
            assert!(patch.y + patch.h <= CANVAS_H);
        }
    }

    #[test]
    fn world_accessors() {
        let mut r = rand::rngs::StdRng::seed_from_u64(6);
        let world = PeekaboomWorld::generate(&WorldConfig::small(), &mut r);
        assert_eq!(world.len(), 50);
        assert!(!world.is_empty());
        assert!(world.object_for_task(TaskId::new(0)).is_some());
        assert!(world.object_for_task(TaskId::new(999)).is_none());
        let empty = PeekaboomOutputs::default();
        assert_eq!(empty.mean_iou(), 0.0);
    }
}
