//! The ESP Game — output-agreement image labeling.
//!
//! The canonical GWAP: two strangers see the same image, type labels, and
//! score when they agree; agreed labels become image metadata. This module
//! provides three layers:
//!
//! 1. [`EspWorld`] — the image world (stimulus truths + task registration).
//! 2. [`play_esp_session`] / [`play_esp_replay_session`] — drive one
//!    session between two live players (or one player and a recorded
//!    partner), answer by answer, through the `hc-core` round state
//!    machine and verification pipeline.
//! 3. [`EspCampaign`] — the full event-driven deployment: Poisson player
//!    sittings, random matching, replay-bot fallback, engagement-driven
//!    return visits — the machinery behind experiments T1 and F3–F6.

use crate::params::SessionParams;
use crate::world::{BaseWorld, WorldConfig};
use hc_collect::DetMap;
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, EngagementModel, Population, PopulationBuilder};
use hc_sim::dist::Exponential;
use hc_sim::{EventQueue, RngFactory, SimRng};
use rand::Rng;

/// Maximum answers one seat may produce in one round — the published ESP
/// interface shows players typing on the order of a dozen guesses per
/// image before passing or timing out.
const MAX_GUESSES_PER_SEAT: usize = 15;

/// Pause between rounds within a session (next image loads).
const INTER_ROUND_GAP: SimDuration = SimDuration::from_secs(2);

/// The ESP image world.
#[derive(Debug, Clone)]
pub struct EspWorld {
    base: BaseWorld,
}

impl EspWorld {
    /// Generates a world.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        EspWorld {
            base: BaseWorld::generate(config, rng),
        }
    }

    /// Number of images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when the world has no images.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Registers every image as a platform task. **Must be called before
    /// any gold tasks are added** so that task ids equal stimulus indices.
    pub fn register_tasks(&self, platform: &mut Platform) -> Vec<TaskId> {
        (0..self.base.len())
            .map(|i| platform.add_task(Stimulus::Image(i as u64)))
            .collect()
    }

    /// Registers `count` *additional* gold tasks whose accepted answers
    /// are the truth labels of freshly sampled stimuli (appended to the
    /// world), returning their task ids.
    pub fn register_gold_tasks<R: Rng + ?Sized>(
        &mut self,
        platform: &mut Platform,
        config: &WorldConfig,
        count: usize,
        rng: &mut R,
    ) -> Vec<TaskId> {
        (0..count)
            .map(|_| {
                let truth = crate::world::sample_stimulus_truth(config, &self.base.vocabulary, rng);
                let accepted: Vec<Label> = truth.labels().to_vec();
                let stim = self.base.truths.len() as u64;
                self.base.truths.push(truth);
                platform.add_gold_task(Stimulus::Image(stim), accepted)
            })
            .collect()
    }

    /// Ground truth for a task (valid because task ids mirror stimulus
    /// indices — see [`EspWorld::register_tasks`]).
    #[must_use]
    pub fn truth_for_task(&self, task: TaskId) -> Option<&hc_crowd::LabelDistribution> {
        self.base.truth(task.raw() as usize)
    }

    /// Whether a verified label is actually true of its image.
    #[must_use]
    pub fn is_correct(&self, task: TaskId, label: &Label) -> bool {
        self.base.is_correct(task.raw() as usize, label)
    }

    /// The shared vocabulary.
    #[must_use]
    pub fn vocabulary(&self) -> &hc_crowd::Vocabulary {
        &self.base.vocabulary
    }

    /// Precision of the platform's verified labels against this world.
    /// Returns `(correct, total)`.
    #[must_use]
    pub fn verified_precision(&self, platform: &Platform) -> (usize, usize) {
        let mut correct = 0;
        let total = platform.verified_labels().len();
        for v in platform.verified_labels() {
            if self.is_correct(v.task, &v.label) {
                correct += 1;
            }
        }
        (correct, total)
    }
}

/// Drives one live two-player session; returns the transcript (already
/// recorded into the platform).
pub fn play_esp_session<R: Rng + ?Sized>(
    platform: &mut Platform,
    world: &EspWorld,
    population: &mut Population,
    params: SessionParams,
    rng: &mut R,
) -> SessionTranscript {
    let SessionParams {
        seats: [left, right],
        session_id,
        start,
    } = params;
    let cfg = platform.config().session;
    let mut session = Session::new(session_id, [left, right], start, cfg);
    let mut now = start;
    let mut streaks = [0u32; 2];

    while session.can_play_more(now) {
        let Some(task) = platform.next_task_for(&[left, right], rng) else {
            break;
        };
        platform.record_served(task, &[left, right]);
        let taboo = platform.taboo_for(task);
        let Some(truth) = world.truth_for_task(task) else {
            break;
        };
        let mut round = OutputAgreementRound::new(task, taboo.clone(), cfg.round_time_limit);
        let deadline = now + cfg.round_time_limit;

        let (pa, pb) = population
            .get_pair_mut(left, right)
            .expect("both players exist and are distinct"); // hc-analyze: allow(P1): callers pass two distinct registered ids
        let mut profiles = [pa, pb];
        let mut cursors = [now, now];
        let mut guesses_left = [MAX_GUESSES_PER_SEAT; 2];
        let mut left_trace: Vec<(SimDuration, Label)> = Vec::new();
        let mut matched_label: Option<Label> = None;
        let mut end = deadline;

        loop {
            // The seat whose next action is earliest moves.
            let seat_idx = if cursors[0] <= cursors[1] { 0 } else { 1 };
            // hc-analyze: allow(P1): seat_idx is 0 or 1 by construction
            if guesses_left[seat_idx] == 0 && guesses_left[1 - seat_idx] == 0 {
                break;
            }
            if guesses_left[seat_idx] == 0 {
                cursors[seat_idx] = SimTime::MAX; // seat exhausted; let other play
                continue;
            }
            let profile = &mut profiles[seat_idx];
            let answer = profile
                .behavior
                .next_answer(truth, &world.base.vocabulary, &taboo, rng);
            let latency = profile.response.sample(
                match &answer {
                    Answer::Text(l) => Some(l),
                    _ => None,
                },
                rng,
            );
            cursors[seat_idx] += latency;
            guesses_left[seat_idx] -= 1;
            let at = cursors[seat_idx];
            if at > deadline {
                end = deadline;
                break;
            }
            let seat = if seat_idx == 0 {
                Seat::Left
            } else {
                Seat::Right
            };
            if seat == Seat::Left {
                if let Answer::Text(l) = &answer {
                    left_trace.push((at.saturating_since(now), l.clone()));
                }
            }
            match round.submit(seat, answer, at) {
                SubmitOutcome::Matched(label) => {
                    matched_label = label;
                    end = at;
                    break;
                }
                SubmitOutcome::BothPassed => {
                    end = at;
                    break;
                }
                SubmitOutcome::RoundOver => {
                    end = deadline;
                    break;
                }
                _ => {}
            }
        }

        let result = round.finish(end);
        let matched = result.is_match();
        if let Some(label) = matched_label.or(result.agreed_label.clone()) {
            let _ = platform.ingest_agreement(task, label, left, right);
        }
        // Record the left seat's trace for future replay-bot sessions.
        if !left_trace.is_empty() {
            platform
                .replay_mut()
                .record(RecordedRound::new(task, left, left_trace));
        }
        let duration = end.saturating_since(now);
        let rule = platform.score_rule();
        let points = [
            rule.round_score(matched, duration.as_secs_f64(), streaks[0]),
            rule.round_score(matched, duration.as_secs_f64(), streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::OutputAgreement,
            task,
            matched,
            candidate_outputs: u32::from(matched),
            duration,
            points,
        });
        now = end + INTER_ROUND_GAP;
    }

    let transcript = session.finish(now);
    platform.record_session(&transcript);
    if hc_obs::active() {
        hc_obs::span(
            "games",
            "esp.session",
            start.ticks(),
            transcript.ended.ticks(),
            &[
                ("rounds", transcript.rounds().into()),
                ("matched", transcript.matched_count().into()),
            ],
        );
    }
    transcript
}

/// Drives one session of `player` against replayed recordings. Tasks
/// without a recording are played "seeding": the player's guesses are
/// recorded for future replays but cannot verify anything.
pub fn play_esp_replay_session<R: Rng + ?Sized>(
    platform: &mut Platform,
    world: &EspWorld,
    population: &mut Population,
    params: SessionParams,
    rng: &mut R,
) -> SessionTranscript {
    let player = params.left();
    let (session_id, start) = (params.session_id, params.start);
    let cfg = platform.config().session;
    // The replay partner keeps its recorded identity for pair accounting;
    // sessions are created against a synthetic "bot seat" of the recorded
    // player when available.
    let mut session = Session::new(session_id, [player, player], start, cfg);
    let mut now = start;
    let mut streak = 0u32;

    while session.can_play_more(now) {
        let Some(task) = platform.next_task_for(&[player], rng) else {
            break;
        };
        platform.record_served(task, &[player]);
        let taboo = platform.taboo_for(task);
        let Some(truth) = world.truth_for_task(task) else {
            break;
        };
        let recording = platform.replay().sample(task, rng).cloned();
        let mut round = OutputAgreementRound::new(task, taboo.clone(), cfg.round_time_limit);
        let deadline = now + cfg.round_time_limit;

        // Feed the recorded partner's events up-front into a schedule.
        let mut bot_events: Vec<(SimTime, Label)> = recording
            .as_ref()
            .map(|r| {
                r.events
                    .iter()
                    .map(|(d, l)| (now + *d, l.clone()))
                    .collect()
            })
            .unwrap_or_default();
        bot_events.reverse(); // pop() from the back = chronological order

        let profile = population.get_mut(player).expect("player exists"); // hc-analyze: allow(P1): callers pass a registered id
        let mut cursor = now;
        let mut guesses_left = MAX_GUESSES_PER_SEAT;
        let mut trace: Vec<(SimDuration, Label)> = Vec::new();
        let mut matched_label: Option<Label> = None;
        let mut end = deadline;

        loop {
            let next_bot = bot_events.last().map(|(t, _)| *t).unwrap_or(SimTime::MAX);
            let human_turn = cursor <= next_bot && guesses_left > 0;
            if !human_turn && next_bot == SimTime::MAX {
                break; // both sides exhausted
            }
            let (seat, at, answer) = if human_turn {
                let answer =
                    profile
                        .behavior
                        .next_answer(truth, &world.base.vocabulary, &taboo, rng);
                let latency = profile.response.sample(
                    match &answer {
                        Answer::Text(l) => Some(l),
                        _ => None,
                    },
                    rng,
                );
                cursor += latency;
                guesses_left -= 1;
                (Seat::Left, cursor, answer)
            } else {
                let (t, l) = bot_events.pop().expect("checked non-empty"); // hc-analyze: allow(P1): branch taken only when bot_events is non-empty
                (Seat::Right, t, Answer::Text(l))
            };
            if at > deadline {
                end = deadline;
                break;
            }
            if seat == Seat::Left {
                if let Answer::Text(l) = &answer {
                    trace.push((at.saturating_since(now), l.clone()));
                }
            }
            match round.submit(seat, answer, at) {
                SubmitOutcome::Matched(label) => {
                    matched_label = label;
                    end = at;
                    break;
                }
                SubmitOutcome::BothPassed => {
                    end = at;
                    break;
                }
                SubmitOutcome::RoundOver => {
                    end = deadline;
                    break;
                }
                _ => {}
            }
        }

        let result = round.finish(end);
        let matched = result.is_match();
        if let (Some(label), Some(rec)) = (
            matched_label.or(result.agreed_label.clone()),
            recording.as_ref(),
        ) {
            let _ = platform.ingest_agreement(task, label, player, rec.recorded_player);
        }
        if !trace.is_empty() {
            platform
                .replay_mut()
                .record(RecordedRound::new(task, player, trace));
        }
        let duration = end.saturating_since(now);
        let rule = platform.score_rule();
        let points = rule.round_score(matched, duration.as_secs_f64(), streak);
        streak = if matched { streak + 1 } else { 0 };
        session.record_round(RoundRecord {
            template: TemplateKind::OutputAgreement,
            task,
            matched,
            candidate_outputs: u32::from(matched),
            duration,
            points: [points, 0],
        });
        now = end + INTER_ROUND_GAP;
    }

    // Replay sessions deliberately bypass `record_session` (which assumes
    // two live players): the campaign credits the lone human's play time
    // to its own ledger, and the seen-task set clears here.
    let transcript = session.finish(now);
    platform.tasks_clear_seen(player);
    if hc_obs::active() {
        hc_obs::span(
            "games",
            "esp.replay_session",
            start.ticks(),
            transcript.ended.ticks(),
            &[
                ("rounds", transcript.rounds().into()),
                ("matched", transcript.matched_count().into()),
            ],
        );
    }
    transcript
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct EspCampaignConfig {
    /// World shape.
    pub world: WorldConfig,
    /// Platform/verification parameters.
    pub platform: PlatformConfig,
    /// Population size.
    pub players: usize,
    /// Behaviour mix.
    pub mix: ArchetypeMix,
    /// Engagement (sitting length / churn) model.
    pub engagement: EngagementModel,
    /// Mean gap between a player's sittings.
    pub mean_return_gap: SimDuration,
    /// Simulated wall-clock horizon.
    pub horizon: SimTime,
    /// How often the matchmaker sweeps for replay fallback.
    pub sweep_interval: SimDuration,
    /// Spread of first arrivals across the start of the campaign.
    pub arrival_spread: SimDuration,
}

impl EspCampaignConfig {
    /// A small, fast campaign for tests.
    #[must_use]
    pub fn small() -> Self {
        EspCampaignConfig {
            world: WorldConfig::small(),
            platform: PlatformConfig::default(),
            players: 40,
            mix: ArchetypeMix::realistic(),
            engagement: EngagementModel::esp_calibrated(),
            mean_return_gap: SimDuration::from_mins(60),
            horizon: SimTime::from_secs(4 * 3600),
            sweep_interval: SimDuration::from_secs(5),
            arrival_spread: SimDuration::from_mins(30),
        }
    }
}

/// What a campaign run produced.
#[derive(Debug, Clone)]
pub struct EspCampaignReport {
    /// The paper's three metrics over the campaign.
    pub metrics: GwapMetrics,
    /// Verified labels: `(correct, total)` against world truth.
    pub precision: (usize, usize),
    /// Live + replay pairing statistics.
    pub matchmaker: hc_core::matchmaker::MatchmakerStats,
    /// Sessions completed (live).
    pub live_sessions: u64,
    /// Sessions completed against replay bots.
    pub replay_sessions: u64,
    /// Mean matchmaking wait (seconds).
    pub mean_wait_secs: f64,
}

impl EspCampaignReport {
    /// Precision as a fraction (1.0 when nothing verified).
    #[must_use]
    pub fn precision_rate(&self) -> f64 {
        if self.precision.1 == 0 {
            1.0
        } else {
            self.precision.0 as f64 / self.precision.1 as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum CampaignEvent {
    Arrival(PlayerId),
    Sweep,
}

#[derive(Debug)]
struct PlanState {
    sittings: Vec<SimDuration>,
    next: usize,
    remaining: SimDuration,
}

/// The full event-driven ESP deployment.
#[derive(Debug)]
pub struct EspCampaign {
    config: EspCampaignConfig,
    platform: Platform,
    world: EspWorld,
    population: Population,
    // Per-player session plans: keyed lookups only (never iterated).
    plans: DetMap<PlayerId, PlanState>,
    session_ids: hc_core::id::IdAllocator<SessionId>,
    rng: SimRng,
    live_sessions: u64,
    replay_sessions: u64,
    replay_play: ContributionLedger,
}

impl EspCampaign {
    /// Builds a campaign from a config and master seed.
    ///
    /// # Panics
    ///
    /// Panics when the platform config is invalid.
    #[must_use]
    pub fn new(config: EspCampaignConfig, seed: u64) -> Self {
        let factory = RngFactory::new(seed);
        let mut world_rng = factory.stream("world");
        let world = EspWorld::generate(&config.world, &mut world_rng);
        let mut platform = Platform::new(config.platform).expect("valid platform config"); // hc-analyze: allow(P1): documented # Panics contract for invalid experiment configs
        world.register_tasks(&mut platform);
        let mut pop_rng = factory.stream("population");
        let population = PopulationBuilder::new(config.players)
            .mix(config.mix.clone())
            .build(&mut pop_rng);
        // Give the platform's player-id allocator the same ids.
        for _ in 0..config.players {
            platform.register_player();
        }
        let mut plan_rng = factory.stream("plans");
        let plans = population
            .players()
            .iter()
            .map(|p| {
                let lifetime = config.engagement.sample_lifetime(&mut plan_rng);
                (
                    p.id,
                    PlanState {
                        sittings: lifetime.session_lengths,
                        next: 0,
                        remaining: SimDuration::ZERO,
                    },
                )
            })
            .collect();
        EspCampaign {
            config,
            platform,
            world,
            population,
            plans,
            session_ids: hc_core::id::IdAllocator::new(),
            rng: factory.stream("campaign"),
            live_sessions: 0,
            replay_sessions: 0,
            replay_play: ContributionLedger::new(),
        }
    }

    /// Runs the campaign to its horizon and reports.
    pub fn run(&mut self) -> EspCampaignReport {
        // Every player gets an opening arrival (plus the sweep tick), so
        // the queue's working set is at least the population; size it up
        // front instead of regrowing through the arrival storm.
        let mut queue: EventQueue<CampaignEvent> =
            EventQueue::with_capacity(self.config.players.max(16) + 1);
        // First arrivals: exponential spread across the opening window.
        let spread = Exponential::new(1.0 / self.config.arrival_spread.as_secs_f64().max(1e-6))
            .expect("positive spread"); // hc-analyze: allow(P1): rate argument clamped to at least 1e-6
        let ids: Vec<PlayerId> = self.population.players().iter().map(|p| p.id).collect();
        for p in &ids {
            let at = SimTime::from_secs_f64(spread.sample(&mut self.rng));
            queue.push(at, CampaignEvent::Arrival(*p));
        }
        queue.push(
            SimTime::ZERO + self.config.sweep_interval,
            CampaignEvent::Sweep,
        );

        // Captured once: the campaign loop must not change shape when a
        // recording subscriber appears mid-run on another layer.
        let tracing = hc_obs::active();
        let mut arrivals = 0u64;
        let mut sweeps = 0u64;
        let mut queue_high_water = 0usize;
        let mut last_now = SimTime::ZERO;

        while let Some((now, ev)) = queue.pop() {
            if now > self.config.horizon {
                break;
            }
            match ev {
                CampaignEvent::Arrival(p) => {
                    self.handle_arrival(&mut queue, now, p);
                    arrivals += 1;
                }
                CampaignEvent::Sweep => {
                    self.handle_sweep(&mut queue, now);
                    queue.push(now + self.config.sweep_interval, CampaignEvent::Sweep);
                    sweeps += 1;
                }
            }
            if tracing {
                queue_high_water = queue_high_water.max(queue.len());
                last_now = now;
            }
        }
        if tracing {
            hc_obs::counter("games.arrivals", last_now.ticks(), arrivals);
            hc_obs::counter("games.sweeps", last_now.ticks(), sweeps);
            hc_obs::gauge(
                "games.queue_high_water",
                last_now.ticks(),
                queue_high_water as f64,
            );
            hc_obs::span(
                "games",
                "esp.campaign",
                0,
                last_now.ticks(),
                &[
                    ("live_sessions", self.live_sessions.into()),
                    ("replay_sessions", self.replay_sessions.into()),
                ],
            );
        }
        self.report()
    }

    fn handle_arrival(
        &mut self,
        queue: &mut EventQueue<CampaignEvent>,
        now: SimTime,
        player: PlayerId,
    ) {
        self.platform.set_time(now);
        // Starting a fresh sitting?
        {
            let plan = self.plans.get_mut(&player).expect("planned player"); // hc-analyze: allow(P1): every registered player gets a plan at construction
            if plan.remaining.is_zero() {
                let Some(len) = plan.sittings.get(plan.next).copied() else {
                    return; // churned
                };
                plan.next += 1;
                plan.remaining = len;
            }
        }
        match self
            .platform
            .matchmaker_mut()
            .on_arrival(now, player, &mut self.rng)
        {
            MatchDecision::Paired { partner, .. } => {
                let sid = self.session_ids.next();
                let transcript = play_esp_session(
                    &mut self.platform,
                    &self.world,
                    &mut self.population,
                    SessionParams::pair(partner, player, sid, now),
                    &mut self.rng,
                );
                self.live_sessions += 1;
                let end = transcript.ended;
                let dur = transcript.duration();
                for p in [partner, player] {
                    self.after_session(queue, end, p, dur);
                }
            }
            MatchDecision::Queued => {}
        }
    }

    fn handle_sweep(&mut self, queue: &mut EventQueue<CampaignEvent>, now: SimTime) {
        self.platform.set_time(now);
        let timed_out = self.platform.matchmaker_mut().take_timed_out(now);
        for player in timed_out {
            let sid = self.session_ids.next();
            let transcript = play_esp_replay_session(
                &mut self.platform,
                &self.world,
                &mut self.population,
                SessionParams::solo(player, sid, now),
                &mut self.rng,
            );
            self.replay_sessions += 1;
            self.replay_play.record_play(player, transcript.duration());
            let end = transcript.ended;
            let dur = transcript.duration();
            self.after_session(queue, end, player, dur);
        }
    }

    fn after_session(
        &mut self,
        queue: &mut EventQueue<CampaignEvent>,
        end: SimTime,
        player: PlayerId,
        played: SimDuration,
    ) {
        let plan = self.plans.get_mut(&player).expect("planned player"); // hc-analyze: allow(P1): every registered player gets a plan at construction
        plan.remaining = plan
            .remaining
            .saturating_sub(played.max(SimDuration::from_secs(1)));
        if !plan.remaining.is_zero() {
            queue.push(end, CampaignEvent::Arrival(player));
        } else if plan.next < plan.sittings.len() {
            let gap = Exponential::new(1.0 / self.config.mean_return_gap.as_secs_f64().max(1e-6))
                .expect("positive gap") // hc-analyze: allow(P1): rate argument clamped to at least 1e-6
                .sample(&mut self.rng);
            queue.push(
                end + SimDuration::from_secs_f64(gap),
                CampaignEvent::Arrival(player),
            );
        }
    }

    fn report(&self) -> EspCampaignReport {
        // Campaign ALP = platform ledger (live sessions, both seats)
        // merged with replay-session play time.
        let mut ledger = ContributionLedger::new();
        ledger.merge(&self.replay_play);
        let platform_metrics = self.platform.metrics();
        // Merge platform per-player time by re-deriving from its ledger is
        // not exposed; approximate by adding totals: the platform ledger
        // already carries per-player live time, so ask it directly.
        let metrics = {
            // Combine: total outputs come from the platform; hours from both.
            let hours = platform_metrics.total_human_hours + ledger.total_human_hours();
            let players = platform_metrics.player_count.max(ledger.player_count());
            let throughput = if hours > 0.0 {
                platform_metrics.total_outputs as f64 / hours
            } else {
                0.0
            };
            let alp = if players > 0 {
                hours / players as f64
            } else {
                0.0
            };
            GwapMetrics {
                throughput_per_human_hour: throughput,
                alp_hours: alp,
                expected_contribution: throughput * alp,
                total_outputs: platform_metrics.total_outputs,
                total_human_hours: hours,
                player_count: players,
            }
        };
        EspCampaignReport {
            metrics,
            precision: self.world.verified_precision(&self.platform),
            matchmaker: self.platform.matchmaker().stats(),
            live_sessions: self.live_sessions,
            replay_sessions: self.replay_sessions,
            mean_wait_secs: self.platform.matchmaker().wait_stats().mean(),
        }
    }

    /// The platform, for post-run inspection.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The world, for post-run inspection.
    #[must_use]
    pub fn world(&self) -> &EspWorld {
        &self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(404)
    }

    fn setup(players: usize, mix: ArchetypeMix) -> (Platform, EspWorld, Population, SimRng) {
        let mut r = rng();
        let world = EspWorld::generate(&WorldConfig::small(), &mut r);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .unwrap();
        world.register_tasks(&mut platform);
        let pop = PopulationBuilder::new(players).mix(mix).build(&mut r);
        for _ in 0..players {
            platform.register_player();
        }
        (platform, world, pop, r)
    }

    #[test]
    fn honest_pairs_match_and_verify() {
        let (mut platform, world, mut pop, mut r) = setup(2, ArchetypeMix::all_honest());
        let t = play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(0),
                SimTime::ZERO,
            ),
            &mut r,
        );
        assert!(t.rounds() > 0);
        assert!(t.match_rate() > 0.5, "honest match rate {}", t.match_rate());
        assert!(!platform.verified_labels().is_empty());
        // All verified labels are true of their images.
        let (correct, total) = world.verified_precision(&platform);
        assert_eq!(correct, total);
    }

    #[test]
    fn random_players_rarely_match() {
        // A realistic (large) vocabulary: random typing almost never
        // collides across seats within a round's guess budget.
        let mut r = rng();
        let mut cfg = WorldConfig::small();
        cfg.vocabulary = 5_000;
        let world = EspWorld::generate(&cfg, &mut r);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .unwrap();
        world.register_tasks(&mut platform);
        let mut pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::custom().with(hc_crowd::Behavior::Random, 1.0))
            .build(&mut r);
        platform.register_player();
        platform.register_player();
        let mut matched = 0;
        let mut rounds = 0;
        for s in 0..6 {
            let t = play_esp_session(
                &mut platform,
                &world,
                &mut pop,
                SessionParams::pair(
                    PlayerId::new(0),
                    PlayerId::new(1),
                    SessionId::new(s),
                    SimTime::from_secs(s * 1000),
                ),
                &mut r,
            );
            matched += t.matched_count();
            rounds += t.rounds();
        }
        let rate = matched as f64 / rounds.max(1) as f64;
        assert!(rate < 0.3, "random players matched {rate}");
    }

    #[test]
    fn session_respects_budgets() {
        let (mut platform, world, mut pop, mut r) = setup(2, ArchetypeMix::all_honest());
        let t = play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(0),
                SimTime::ZERO,
            ),
            &mut r,
        );
        assert!(t.rounds() <= 15);
        // Duration can exceed the limit only by the final round + gap.
        assert!(t.duration() < SimDuration::from_secs(150 + 150 + 5));
    }

    #[test]
    fn sessions_record_replay_traces() {
        let (mut platform, world, mut pop, mut r) = setup(2, ArchetypeMix::all_honest());
        play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(0),
                SimTime::ZERO,
            ),
            &mut r,
        );
        assert!(platform.replay().covered_tasks() > 0);
    }

    #[test]
    fn replay_session_verifies_against_recordings() {
        let (mut platform, world, mut pop, mut r) = setup(3, ArchetypeMix::all_honest());
        // Seed recordings with a live session between 0 and 1.
        play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(0),
                SimTime::ZERO,
            ),
            &mut r,
        );
        let before = platform.verified_labels().len();
        let t = play_esp_replay_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::solo(
                PlayerId::new(2),
                SessionId::new(1),
                SimTime::from_secs(1000),
            ),
            &mut r,
        );
        assert!(t.rounds() > 0);
        // Replay rounds on recorded tasks can verify new labels (not
        // guaranteed every seed, but the pipeline must not error and the
        // platform must survive; with honest players and shared truth the
        // expected overlap is high).
        assert!(platform.verified_labels().len() >= before);
    }

    #[test]
    fn campaign_runs_to_horizon_and_reports() {
        let mut config = EspCampaignConfig::small();
        config.horizon = SimTime::from_secs(2 * 3600);
        let mut campaign = EspCampaign::new(config, 7);
        let report = campaign.run();
        assert!(
            report.live_sessions + report.replay_sessions > 0,
            "no sessions ran"
        );
        assert!(report.metrics.total_human_hours > 0.0);
        assert!(report.metrics.throughput_per_human_hour > 0.0);
        assert!(
            report.precision_rate() > 0.8,
            "precision {}",
            report.precision_rate()
        );
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let mk = || {
            let mut config = EspCampaignConfig::small();
            config.players = 20;
            config.horizon = SimTime::from_secs(3600);
            EspCampaign::new(config, 99).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.metrics.total_outputs, b.metrics.total_outputs);
        assert_eq!(a.live_sessions, b.live_sessions);
        assert_eq!(a.replay_sessions, b.replay_sessions);
        assert_eq!(a.precision, b.precision);
    }

    #[test]
    fn world_gold_tasks_extend_truths() {
        let mut r = rng();
        let cfg = WorldConfig::small();
        let mut world = EspWorld::generate(&cfg, &mut r);
        let mut platform = Platform::new(PlatformConfig::default()).unwrap();
        world.register_tasks(&mut platform);
        let gold = world.register_gold_tasks(&mut platform, &cfg, 5, &mut r);
        assert_eq!(gold.len(), 5);
        assert_eq!(world.len(), 55);
        for g in gold {
            assert!(platform.gold().is_gold(g));
            assert!(world.truth_for_task(g).is_some());
        }
    }

    #[test]
    fn empty_report_precision_is_one() {
        let report = EspCampaignReport {
            metrics: ContributionLedger::new().metrics(),
            precision: (0, 0),
            matchmaker: Default::default(),
            live_sessions: 0,
            replay_sessions: 0,
            mean_wait_secs: 0.0,
        };
        assert_eq!(report.precision_rate(), 1.0);
    }
}
