//! The scheduling envelope shared by every `play_*_session` driver.
//!
//! Bundling who plays and when into one value keeps the driver
//! signatures short (the platform, world, population and RNG stay
//! separate because they are borrowed, not copied) and gives campaign
//! loops a single thing to thread through their event handlers.

use hc_core::prelude::*;

/// Who plays a session and when it starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionParams {
    /// The two seats. A solo (replay) session repeats the same id, which
    /// matches how [`Session`] records single-player transcripts.
    pub seats: [PlayerId; 2],
    /// Id the session is recorded under.
    pub session_id: SessionId,
    /// Simulation time of the first round.
    pub start: SimTime,
}

impl SessionParams {
    /// A live two-player session.
    #[must_use]
    pub fn pair(left: PlayerId, right: PlayerId, session_id: SessionId, start: SimTime) -> Self {
        SessionParams {
            seats: [left, right],
            session_id,
            start,
        }
    }

    /// A single-player (replay/bot) session.
    #[must_use]
    pub fn solo(player: PlayerId, session_id: SessionId, start: SimTime) -> Self {
        SessionParams {
            seats: [player, player],
            session_id,
            start,
        }
    }

    /// The left seat.
    #[must_use]
    pub fn left(&self) -> PlayerId {
        self.seats[0]
    }

    /// The right seat.
    #[must_use]
    pub fn right(&self) -> PlayerId {
        self.seats[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_and_solo_constructors() {
        let p = SessionParams::pair(
            PlayerId::new(1),
            PlayerId::new(2),
            SessionId::new(9),
            SimTime::from_secs(5),
        );
        assert_eq!(p.left(), PlayerId::new(1));
        assert_eq!(p.right(), PlayerId::new(2));
        let s = SessionParams::solo(PlayerId::new(3), SessionId::new(10), SimTime::ZERO);
        assert_eq!(s.left(), s.right());
    }
}
