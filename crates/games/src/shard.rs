//! Sharded single-run campaigns over the [`hc_sim::shard`] engine.
//!
//! [`EspCampaign`](crate::esp::EspCampaign) and the generic
//! [`Campaign`](crate::campaign::Campaign) process one event at a time on
//! one core; this module re-architects the same deployment dynamics
//! (Poisson sittings, random matching, replay-bot fallback,
//! engagement-driven returns) as a [`ShardWorkload`] so one run scales
//! across cores while staying byte-identical at any `--shards` ×
//! `--threads` combination.
//!
//! ## Who owns what
//!
//! * **Shards** (`player_id % K`) own idle player profiles
//!   ([`PlayerStore`]), sitting plans (arena-allocated in a
//!   [`SliceArena`]), arrival calendars, and — the hot path — *session
//!   play*: every planned session is executed entirely on a worker
//!   thread from its own per-session RNG stream. **Matchmaking is
//!   sharded too**: the wait pool is partitioned into deterministic
//!   skill tiers ([`BucketLayout`]); bucket `b` lives on shard `b % K`
//!   as a [`BucketPool`] and pairing runs inside the shard window, with
//!   each arrival drawing from the bucket's own counter-indexed RNG
//!   stream.
//! * **The hub** owns everything semantically global: the
//!   [`Platform`] (task queues, verification, scoring, anti-cheat,
//!   replay store) and session-id allocation. It plans sessions and
//!   applies outcomes — its per-window work is proportional to the
//!   sessions starting and finishing, never to raw arrival traffic, so
//!   it falls off the critical path of large runs.
//!
//! ## The session protocol
//!
//! ```text
//! shard --Arrived{profile}--->  shard b % K    (arrival flies to its skill bucket)
//! shard --Paired{w, a}------->  hub            (bucket pool matched two players)
//! shard --TimedOut{profile}-->  hub            (bot-fallback deadline expired)
//! hub   --Play(SessionJob)--->  shard sid % K  (planned rounds + profiles)
//! shard --Done{outcome}------>  hub            (transcript + per-round effects)
//! shard --Return{profile}---->  shard p % K    (profile flies home)
//! hub   --Return{profile}---->  shard p % K    (give-up: no solo mode)
//! ```
//!
//! The hub *plans* sessions (task selection, taboo lists, replay
//! recordings — everything that reads platform state) and *applies*
//! outcomes in session-id order; shards *play* them purely from the
//! plan. Planning is optimistic: up to `max_rounds` rounds are planned
//! and marked served even when the session ends early — a documented,
//! deterministic deviation from the serial campaigns (see DESIGN.md,
//! "Sharding & determinism"). Matching inside a skill tier and the
//! arrival→bucket delivery hop (pairing lands one window after the
//! arrival is emitted) are likewise documented deviations.
//!
//! Replay-fallback sweeps run on the owning shard at each bucket's own
//! deadline windows ([`BucketPool::next_deadline`] feeds the shard
//! wake), so timeout timing is a pure function of pool contents —
//! never of which other work happens to share the shard.
//!
//! Exchange keys are pure functions of simulation state (times, player
//! ids, session ids), never of the shard layout, which is what makes
//! the merged order — and therefore every downstream byte —
//! `K`-invariant.

use crate::params::SessionParams;
use crate::world::WorldConfig;
use hc_collect::{DetMap, PlayerStore, SliceArena, Span};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, EngagementModel, PlayerProfile, PopulationBuilder};
use hc_sim::dist::Exponential;
use hc_sim::shard::{
    Addr, HubDecision, Mailbox, ShardConfig, ShardError, ShardWorkload, WindowInfo,
};
use hc_sim::{OnlineStats, RngFactory, SimRng, WheelQueue};
use rand::Rng;

/// Pause between rounds within a session (mirrors the serial drivers).
const INTER_ROUND_GAP: SimDuration = SimDuration::from_secs(2);

/// Maximum answers one seat may produce per round (ESP interface).
const MAX_GUESSES_PER_SEAT: usize = 15;

/// Maximum hints a Verbosity narrator sends per round.
const MAX_HINTS: usize = 6;

/// Verbosity guesses allowed per hint received.
const GUESSES_PER_HINT: usize = 2;

// Exchange-key tags (bits 120+). `Play`/`Done` use the raw session id
// (tag 0); timestamped player messages get a tag so the keyspaces never
// collide within one (window, destination) inbox.
const TAG_ARRIVED: u128 = 1 << 120;
const TAG_RETURN: u128 = 2 << 120;
const TAG_PAIRED: u128 = 3 << 120;
const TAG_TIMEOUT: u128 = 4 << 120;

/// Key for a timestamped per-player message: unique because a player
/// sends at most one arrival (and receives at most one return) per
/// window, and independent of the shard layout.
fn player_key(tag: u128, at: SimTime, player: PlayerId) -> u128 {
    tag | (u128::from(at.ticks()) << 64) | u128::from(player.raw())
}

/// One hub-planned round, shipped to the playing shard.
#[derive(Debug, Clone)]
pub struct PlannedRound {
    /// Task to play.
    pub task: TaskId,
    /// Taboo list frozen at plan time.
    pub taboo: TabooList,
    /// Replay recording for solo sessions (`None` live or unseeded).
    pub recording: Option<RecordedRound>,
}

/// Everything a shard needs to play one session without the platform.
#[derive(Debug)]
pub struct SessionJob {
    /// Allocated session id (also the exchange key and RNG index).
    pub sid: SessionId,
    /// Simulated start time.
    pub start: SimTime,
    /// Seated players (`[p, p]` for solo sessions).
    pub seats: [PlayerId; 2],
    /// `true` for a replay/give-up-rescue solo session.
    pub solo: bool,
    /// Owned profiles travelling with the job (2 live, 1 solo).
    pub profiles: Vec<PlayerProfile>,
    /// Hub-planned rounds, in play order.
    pub rounds: Vec<PlannedRound>,
}

/// Platform effects of one played round, applied by the hub in order.
#[derive(Debug)]
pub struct PlayedRound {
    /// The round's task.
    pub task: TaskId,
    /// Agreements to ingest, in submission order.
    pub agreements: Vec<(Label, PlayerId, PlayerId)>,
    /// Left-seat trace recorded for future replay bots.
    pub recording: Option<RecordedRound>,
}

/// A fully played session: the transcript plus the hub-applied effects.
#[derive(Debug)]
pub struct PlayedSession {
    /// The session transcript (recorded by the hub).
    pub transcript: SessionTranscript,
    /// Per-round platform effects, in play order.
    pub rounds: Vec<PlayedRound>,
}

/// Cross-shard campaign traffic.
#[derive(Debug)]
pub enum CampaignMsg {
    /// A player starts or resumes a sitting (home shard → the shard
    /// owning the player's skill bucket, with profile).
    Arrived {
        /// The arriving player's profile (ownership moves with it).
        profile: Box<PlayerProfile>,
    },
    /// A bucket pool matched two players (bucket shard → hub).
    Paired {
        /// The player who was waiting in the pool.
        waiter: Box<PlayerProfile>,
        /// The player whose arrival completed the pair.
        arriver: Box<PlayerProfile>,
        /// How long the waiter waited.
        waited: SimDuration,
    },
    /// A waiter crossed the bot-fallback deadline (bucket shard → hub).
    TimedOut {
        /// The timed-out player's profile.
        profile: Box<PlayerProfile>,
    },
    /// A planned session to execute (hub → shard `sid % K`).
    Play(Box<SessionJob>),
    /// A finished session's outcome (playing shard → hub).
    Done {
        /// Whether this was a solo (replay-rescue) session.
        solo: bool,
        /// Transcript and effects.
        outcome: Box<PlayedSession>,
    },
    /// A profile returns to its home shard after playing or giving up.
    Return {
        /// The returning player's profile.
        profile: Box<PlayerProfile>,
        /// Play time to charge against the sitting; `None` for a
        /// give-up (the sitting continues at the next return visit).
        played: Option<SimDuration>,
    },
}

/// A concrete game exposed over the sharded API: the hub-side planner
/// and the pure shard-side player.
pub trait ShardGame: Send + Sync + std::fmt::Debug {
    /// Registers the game's tasks on a fresh platform.
    fn register(&self, platform: &mut Platform);

    /// Plans a live session for `seats` (hub side; may mutate platform
    /// scheduling state).
    fn plan_live(
        &self,
        platform: &mut Platform,
        seats: [PlayerId; 2],
        rng: &mut SimRng,
    ) -> Vec<PlannedRound>;

    /// Plans a solo fallback session for a timed-out waiter, or `None`
    /// when the game has no solo mode (the player gives up instead).
    fn plan_solo(
        &self,
        platform: &mut Platform,
        player: PlayerId,
        rng: &mut SimRng,
    ) -> Option<Vec<PlannedRound>>;

    /// Plays a planned session purely: no platform, all randomness from
    /// `rng` (the session's own indexed stream, identical wherever the
    /// session lands). Profiles live inside `job`.
    fn play(
        &self,
        job: &mut SessionJob,
        cfg: SessionConfig,
        rule: ScoreRule,
        rng: &mut SimRng,
    ) -> PlayedSession;

    /// `(correct, total)` of the platform's verified outputs against
    /// this game's world truth.
    fn precision(&self, platform: &Platform) -> (usize, usize);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Sharded campaign configuration.
#[derive(Debug, Clone)]
pub struct ShardedCampaignConfig {
    /// Platform/verification parameters.
    pub platform: PlatformConfig,
    /// Population size.
    pub players: usize,
    /// Behaviour mix.
    pub mix: ArchetypeMix,
    /// Engagement (sitting length / churn) model.
    pub engagement: EngagementModel,
    /// Mean gap between a player's sittings.
    pub mean_return_gap: SimDuration,
    /// Simulated horizon: no new sittings or sessions start after this.
    pub horizon: SimTime,
    /// Spread of first arrivals.
    pub arrival_spread: SimDuration,
    /// Shard count `K` (players are keyed `id % K`).
    pub shards: usize,
    /// Worker threads for the shard phase.
    pub threads: usize,
    /// Lock-step window length (also the matchmaker sweep cadence).
    pub window: SimDuration,
    /// Skill tiers the wait pool is partitioned into. A **semantic**
    /// parameter — it narrows who can pair with whom — so it must never
    /// be derived from the shard count: the same population must
    /// produce the same pairings at any layout.
    pub match_buckets: u32,
}

impl ShardedCampaignConfig {
    /// A small, fast configuration for tests.
    #[must_use]
    pub fn small() -> Self {
        ShardedCampaignConfig {
            platform: PlatformConfig::default(),
            players: 40,
            mix: ArchetypeMix::realistic(),
            engagement: EngagementModel::esp_calibrated(),
            mean_return_gap: SimDuration::from_mins(60),
            horizon: SimTime::from_secs(4 * 3600),
            arrival_spread: SimDuration::from_mins(30),
            shards: 2,
            threads: 1,
            window: SimDuration::from_secs(5),
            match_buckets: 2,
        }
    }
}

/// What a sharded campaign run produced. Engine statistics (window and
/// step counts) are deliberately excluded: step counts depend on `K`,
/// and everything in this report must be `K`/`thread`-invariant.
#[derive(Debug, Clone)]
pub struct ShardedCampaignReport {
    /// Which game ran.
    pub game: &'static str,
    /// The paper's three metrics over the campaign.
    pub metrics: GwapMetrics,
    /// Verified outputs: `(correct, total)` against world truth.
    pub precision: (usize, usize),
    /// Live + replay pairing statistics.
    pub matchmaker: hc_core::matchmaker::MatchmakerStats,
    /// Live two-player sessions completed.
    pub live_sessions: u64,
    /// Solo (replay-rescue) sessions completed.
    pub solo_sessions: u64,
    /// Mean matchmaking wait (seconds).
    pub mean_wait_secs: f64,
}

impl ShardedCampaignReport {
    /// Precision as a fraction (1.0 when nothing verified).
    #[must_use]
    pub fn precision_rate(&self) -> f64 {
        if self.precision.1 == 0 {
            1.0
        } else {
            self.precision.0 as f64 / self.precision.1 as f64
        }
    }
}

/// Per-player sitting plan; the sitting lengths live in the shard's
/// shared [`SliceArena`].
#[derive(Debug)]
struct SittingPlan {
    span: Span,
    next: u32,
    remaining: SimDuration,
    /// Gap draws so far — indexes the player's stateless gap RNG.
    gap_draws: u64,
}

/// One skill tier's matchmaking state, hosted on shard `bucket % K`.
///
/// Shard-reachable: no telemetry, no un-indexed RNG (rule R1). The
/// per-arrival stream is `indexed_stream("shard.match", (bucket << 40)
/// | draws)`, so the draw sequence is a pure function of the bucket's
/// arrival subsequence — identical wherever the bucket is hosted.
#[derive(Debug)]
struct MatchBucket {
    bucket: u32,
    pool: BucketPool,
    /// Profiles of queued waiters, keyed by player id.
    parked: DetMap<u64, PlayerProfile>,
    /// Arrivals handled so far — indexes the bucket's match RNG.
    draws: u64,
}

/// One shard's state: the players it is home to plus the skill-tier
/// match pools it owns (`bucket % K == shard`, ascending).
#[derive(Debug)]
pub struct GameShard {
    idle: PlayerStore<PlayerProfile>,
    plans: PlayerStore<SittingPlan>,
    sittings: SliceArena<SimDuration>,
    calendar: WheelQueue<PlayerId>,
    buckets: Vec<MatchBucket>,
    /// Reused timeout/abandon sweep output; never reallocated in
    /// steady state.
    sweep_scratch: Vec<PlayerId>,
}

/// The sharded deployment: implements [`ShardWorkload`] with shard-side
/// play and hub-side planning/application.
#[derive(Debug)]
pub struct ShardedCampaign<D: ShardGame> {
    driver: D,
    config: ShardedCampaignConfig,
    factory: RngFactory,
    session_cfg: SessionConfig,
    rule: ScoreRule,
    layout: BucketLayout,
    // Hub state (stepped serially on the calling thread).
    platform: Platform,
    session_ids: hc_core::id::IdAllocator<SessionId>,
    plan_rng: SimRng,
    in_flight: u64,
    live_sessions: u64,
    solo_sessions: u64,
    solo_play: ContributionLedger,
    // Bucket-pool statistics, merged post-run in ascending bucket order
    // so the floating-point reduction is layout-invariant.
    match_stats: hc_core::matchmaker::MatchmakerStats,
    wait_stats: OnlineStats,
    shards: Option<Vec<GameShard>>,
}

impl<D: ShardGame> ShardedCampaign<D> {
    /// Builds a campaign: world tasks registered, players dealt to their
    /// home shards with per-player plan/arrival RNG streams.
    ///
    /// # Panics
    ///
    /// Panics when the platform config is invalid or `shards == 0`.
    #[must_use]
    pub fn new(driver: D, config: ShardedCampaignConfig, seed: u64) -> Self {
        assert!(config.shards > 0, "at least one shard is required");
        let factory = RngFactory::new(seed);
        let mut platform = Platform::new(config.platform).expect("valid platform config"); // hc-analyze: allow(P1): documented # Panics contract for invalid experiment configs
        driver.register(&mut platform);
        let mut pop_rng = factory.stream("population");
        let population = PopulationBuilder::new(config.players)
            .mix(config.mix.clone())
            .build(&mut pop_rng);
        for _ in 0..config.players {
            platform.register_player();
        }
        let spread = Exponential::new(1.0 / config.arrival_spread.as_secs_f64().max(1e-6))
            .expect("positive spread"); // hc-analyze: allow(P1): rate argument clamped to at least 1e-6
        let k = config.shards;
        let layout = BucketLayout::new(config.match_buckets);
        let mm_cfg = platform.config().matchmaker;
        // Pre-size every per-player structure from the plan cardinality:
        // a shard is home to ~players/K calendars and hosts pools that
        // can hold at worst one tier's whole population.
        let per_shard = config.players / k + 1;
        let per_bucket = config.players / layout.buckets() as usize + 1;
        let mut shards: Vec<GameShard> = (0..k)
            .map(|s| GameShard {
                idle: PlayerStore::strided(k as u64, s as u64),
                plans: PlayerStore::strided(k as u64, s as u64),
                sittings: SliceArena::new(),
                calendar: WheelQueue::with_capacity(per_shard),
                buckets: (0..layout.buckets() as usize)
                    .filter(|b| b % k == s)
                    .map(|b| MatchBucket {
                        bucket: b as u32,
                        pool: BucketPool::with_capacity(mm_cfg, per_bucket),
                        parked: DetMap::with_capacity(per_bucket),
                        draws: 0,
                    })
                    .collect(),
                sweep_scratch: Vec::new(),
            })
            .collect();
        for profile in population.players() {
            let p = profile.id;
            let shard = &mut shards[(p.raw() % k as u64) as usize];
            let lifetime = config
                .engagement
                .sample_lifetime(&mut factory.indexed_stream("player.plan", p.raw()));
            let span = shard.sittings.alloc(lifetime.session_lengths);
            shard.plans.insert(
                p.raw(),
                SittingPlan {
                    span,
                    next: 0,
                    remaining: SimDuration::ZERO,
                    gap_draws: 0,
                },
            );
            let first = SimTime::from_secs_f64(
                spread.sample(&mut factory.indexed_stream("player.arrival", p.raw())),
            );
            if first <= config.horizon {
                shard.calendar.push(first, p);
            }
            shard.idle.insert(p.raw(), profile.clone());
        }
        let session_cfg = platform.config().session;
        let rule = platform.score_rule();
        let plan_rng = factory.stream("shard.plan");
        ShardedCampaign {
            driver,
            config,
            factory,
            session_cfg,
            rule,
            layout,
            platform,
            session_ids: hc_core::id::IdAllocator::new(),
            plan_rng,
            in_flight: 0,
            live_sessions: 0,
            solo_sessions: 0,
            solo_play: ContributionLedger::new(),
            match_stats: hc_core::matchmaker::MatchmakerStats::default(),
            wait_stats: OnlineStats::new(),
            shards: Some(shards),
        }
    }

    /// Runs the campaign to quiescence and reports.
    ///
    /// # Errors
    ///
    /// Propagates engine failures ([`ShardError`]) — a panicking shard,
    /// a dead worker, or a window-cap overrun.
    pub fn run(&mut self) -> std::result::Result<ShardedCampaignReport, ShardError> {
        let mut shards = self.shards.take().ok_or_else(|| ShardError::Config {
            message: "run() may only be called once".to_string(),
        })?;
        let cfg = ShardConfig::new(self.config.threads, self.config.window);
        // Scope span: the engine's run/window spans and every session
        // span nest under the campaign. Closed at the sim-time
        // high-water mark so the last window stays inside it.
        let campaign = hc_obs::enter("games", "shard.campaign", 0);
        hc_sim::shard::run(&cfg, self, &mut shards)?;
        // Reduce per-bucket matchmaking statistics in ascending bucket
        // order — a fixed reduction order keeps the floating-point sums
        // byte-identical at any shard layout.
        let mut tiers: Vec<&MatchBucket> = shards.iter().flat_map(|s| s.buckets.iter()).collect();
        tiers.sort_by_key(|mb| mb.bucket);
        for mb in tiers {
            self.match_stats.merge(&mb.pool.stats());
            self.wait_stats.merge(mb.pool.wait_stats());
        }
        campaign.close(&[
            ("live_sessions", self.live_sessions.into()),
            ("solo_sessions", self.solo_sessions.into()),
        ]);
        Ok(self.report())
    }

    /// The platform, for post-run inspection.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    fn report(&self) -> ShardedCampaignReport {
        // Campaign ALP = platform ledger (live sessions) merged with
        // solo-session play time, mirroring `EspCampaign::report`.
        let mut ledger = ContributionLedger::new();
        ledger.merge(&self.solo_play);
        let platform_metrics = self.platform.metrics();
        let hours = platform_metrics.total_human_hours + ledger.total_human_hours();
        let players = platform_metrics.player_count.max(ledger.player_count());
        let throughput = if hours > 0.0 {
            platform_metrics.total_outputs as f64 / hours
        } else {
            0.0
        };
        let alp = if players > 0 {
            hours / players as f64
        } else {
            0.0
        };
        ShardedCampaignReport {
            game: self.driver.name(),
            metrics: GwapMetrics {
                throughput_per_human_hour: throughput,
                alp_hours: alp,
                expected_contribution: throughput * alp,
                total_outputs: platform_metrics.total_outputs,
                total_human_hours: hours,
                player_count: players,
            },
            precision: self.driver.precision(&self.platform),
            matchmaker: self.match_stats,
            live_sessions: self.live_sessions,
            solo_sessions: self.solo_sessions,
            mean_wait_secs: self.wait_stats.mean(),
        }
    }

    fn home(&self, player: PlayerId) -> usize {
        (player.raw() % self.config.shards as u64) as usize
    }

    /// Shard-side: a profile lands home after a session (or give-up);
    /// update the sitting plan and schedule the next arrival.
    fn receive_return(
        &self,
        state: &mut GameShard,
        at: SimTime,
        profile: PlayerProfile,
        played: Option<SimDuration>,
    ) {
        let p = profile.id;
        let plan = state.plans.get_mut(p.raw()).expect("planned player"); // hc-analyze: allow(P1): every player gets a plan at construction
        let next_arrival = match played {
            Some(d) => {
                plan.remaining = plan
                    .remaining
                    .saturating_sub(d.max(SimDuration::from_secs(1)));
                if !plan.remaining.is_zero() {
                    Some(at)
                } else if (plan.next as usize) < plan.span.len() {
                    Some(at + self.gap_after(plan, p))
                } else {
                    None // churned for good
                }
            }
            // Give-up: the sitting continues at the next return visit.
            None => Some(at + self.gap_after(plan, p)),
        };
        state.idle.insert(p.raw(), profile);
        if let Some(t) = next_arrival {
            if t <= self.config.horizon {
                state.calendar.push(t, p);
            }
        }
    }

    /// Draws a return gap from the player's stateless counter-indexed
    /// stream — identical no matter which shard layout runs the draw.
    fn gap_after(&self, plan: &mut SittingPlan, p: PlayerId) -> SimDuration {
        let mut rng = self
            .factory
            .indexed_stream("player.gap", (plan.gap_draws << 40) | p.raw());
        plan.gap_draws += 1;
        let gap = Exponential::new(1.0 / self.config.mean_return_gap.as_secs_f64().max(1e-6))
            .expect("positive gap") // hc-analyze: allow(P1): rate argument clamped to at least 1e-6
            .sample(&mut rng);
        SimDuration::from_secs_f64(gap)
    }

    /// Hub-side: a bucket pool paired two players; plan and dispatch
    /// the session. The hub also owns the pairing telemetry — bucket
    /// pools are shard-reachable and must stay silent, so the events
    /// the serial matchmaker would emit are re-emitted here.
    fn on_paired(
        &mut self,
        at: SimTime,
        waiter: PlayerProfile,
        arriver: PlayerProfile,
        waited: SimDuration,
        mail: &mut Mailbox<CampaignMsg>,
    ) {
        self.platform.set_time(at);
        let seats = [waiter.id, arriver.id];
        if hc_obs::active() {
            hc_obs::counter("core.pairs_live", at.ticks(), 1);
            hc_obs::observe("core.pair_wait_secs", at.ticks(), waited.as_secs_f64());
            hc_obs::event(
                "core",
                "pair",
                at.ticks(),
                &[
                    ("player", u64::from(arriver.id).into()),
                    ("partner", u64::from(waiter.id).into()),
                    ("waited_us", waited.ticks().into()),
                ],
            );
        }
        let sid = self.session_ids.next();
        let rounds = self
            .driver
            .plan_live(&mut self.platform, seats, &mut self.plan_rng);
        self.dispatch(
            mail,
            SessionJob {
                sid,
                start: at,
                seats,
                solo: false,
                profiles: vec![waiter, arriver],
                rounds,
            },
        );
    }

    /// Hub-side: sends a planned session to the shard keyed by its id.
    fn dispatch(&mut self, mail: &mut Mailbox<CampaignMsg>, job: SessionJob) {
        self.in_flight += 1;
        let dest = (job.sid.raw() % self.config.shards as u64) as usize;
        let key = u128::from(job.sid.raw());
        mail.send(
            Addr::Shard(dest),
            job.start,
            key,
            CampaignMsg::Play(Box::new(job)),
        );
    }

    /// Hub-side: applies a finished session's effects in play order.
    fn apply_done(&mut self, solo: bool, outcome: PlayedSession) {
        self.in_flight -= 1;
        let transcript = &outcome.transcript;
        self.platform.set_time(transcript.ended);
        for round in &outcome.rounds {
            for (label, a, b) in &round.agreements {
                let _ = self
                    .platform
                    .ingest_agreement(round.task, label.clone(), *a, *b);
            }
            if let Some(rec) = &round.recording {
                self.platform.replay_mut().record(rec.clone());
            }
        }
        if solo {
            let player = transcript.players[0];
            self.platform.tasks_clear_seen(player);
            self.solo_play.record_play(player, transcript.duration());
            self.solo_sessions += 1;
        } else {
            self.platform.record_session(transcript);
            self.live_sessions += 1;
        }
        if hc_obs::active() {
            hc_obs::span(
                "games",
                "shard.session",
                transcript.started.ticks(),
                transcript.ended.ticks(),
                &[
                    ("rounds", transcript.rounds().into()),
                    ("matched", transcript.matched_count().into()),
                    ("solo", u64::from(solo).into()),
                ],
            );
        }
    }

    /// Hub-side: rescue one timed-out waiter (solo session or give-up).
    fn on_timed_out(
        &mut self,
        at: SimTime,
        profile: PlayerProfile,
        mail: &mut Mailbox<CampaignMsg>,
    ) {
        self.platform.set_time(at);
        let p = profile.id;
        match self
            .driver
            .plan_solo(&mut self.platform, p, &mut self.plan_rng)
        {
            Some(rounds) => {
                if hc_obs::active() {
                    hc_obs::counter("core.pairs_replay", at.ticks(), 1);
                    hc_obs::event(
                        "core",
                        "replay_fallback",
                        at.ticks(),
                        &[("player", u64::from(p).into())],
                    );
                }
                let sid = self.session_ids.next();
                self.dispatch(
                    mail,
                    SessionJob {
                        sid,
                        start: at,
                        seats: [p, p],
                        solo: true,
                        profiles: vec![profile],
                        rounds,
                    },
                );
            }
            None => {
                // No solo mode: give up and return at a later sitting.
                mail.send(
                    Addr::Shard(self.home(p)),
                    at,
                    player_key(TAG_RETURN, at, p),
                    CampaignMsg::Return {
                        profile: Box::new(profile),
                        played: None,
                    },
                );
            }
        }
    }
}

impl<D: ShardGame> ShardWorkload for ShardedCampaign<D> {
    type Shard = GameShard;
    type Msg = CampaignMsg;

    fn shard_step(
        &self,
        _shard: usize,
        state: &mut GameShard,
        win: &WindowInfo,
        inbox: Vec<(SimTime, CampaignMsg)>,
        mail: &mut Mailbox<CampaignMsg>,
    ) -> Option<SimTime> {
        let k = self.config.shards;
        for (at, msg) in inbox {
            match msg {
                CampaignMsg::Play(job) => {
                    let mut job = *job;
                    let mut rng = self.factory.indexed_stream("shard.session", job.sid.raw());
                    let outcome = self
                        .driver
                        .play(&mut job, self.session_cfg, self.rule, &mut rng);
                    let end = outcome.transcript.ended;
                    let played = outcome.transcript.duration();
                    mail.send(
                        Addr::Hub,
                        end,
                        u128::from(job.sid.raw()),
                        CampaignMsg::Done {
                            solo: job.solo,
                            outcome: Box::new(outcome),
                        },
                    );
                    for profile in job.profiles {
                        let home = self.home(profile.id);
                        let key = player_key(TAG_RETURN, end, profile.id);
                        mail.send(
                            Addr::Shard(home),
                            end,
                            key,
                            CampaignMsg::Return {
                                profile: Box::new(profile),
                                played: Some(played),
                            },
                        );
                    }
                }
                CampaignMsg::Return { profile, played } => {
                    self.receive_return(state, at, *profile, played);
                }
                CampaignMsg::Arrived { profile } => {
                    // This shard owns the arriver's skill bucket: pair
                    // against the tier pool or park the profile.
                    let profile = *profile;
                    let b = self.layout.bucket_of(profile.skill);
                    let mb = &mut state.buckets[b as usize / k]; // hc-analyze: allow(P1): bucket b is hosted at index b/K on shard b%K by construction
                    debug_assert_eq!(mb.bucket, b, "arrival routed to the wrong bucket host");
                    let mut rng = self
                        .factory
                        .indexed_stream("shard.match", (u64::from(b) << 40) | mb.draws);
                    mb.draws += 1;
                    match mb.pool.on_arrival(at, profile.id, &mut rng) {
                        MatchDecision::Paired { partner, waited } => {
                            let waiter = mb.parked.remove(&partner.raw()).expect("parked waiter"); // hc-analyze: allow(P1): queued players always park their profile
                            mail.send(
                                Addr::Hub,
                                at,
                                player_key(TAG_PAIRED, at, profile.id),
                                CampaignMsg::Paired {
                                    waiter: Box::new(waiter),
                                    arriver: Box::new(profile),
                                    waited,
                                },
                            );
                        }
                        MatchDecision::Queued => {
                            mb.parked.insert(profile.id.raw(), profile);
                        }
                    }
                }
                CampaignMsg::Paired { .. }
                | CampaignMsg::TimedOut { .. }
                | CampaignMsg::Done { .. } => {
                    debug_assert!(false, "hub-bound message delivered to a shard");
                }
            }
        }
        // Emit this window's arrivals (including any scheduled by the
        // returns above) to their bucket-owning shards.
        while let Some((t, p)) = state.calendar.pop_before(win.last_tick()) {
            let plan = state.plans.get_mut(p.raw()).expect("planned player"); // hc-analyze: allow(P1): every player gets a plan at construction
            if plan.remaining.is_zero() {
                if plan.next as usize >= plan.span.len() {
                    continue; // churned
                }
                let len = state.sittings.get(plan.span)[plan.next as usize];
                plan.next += 1;
                plan.remaining = len;
            }
            let Some(profile) = state.idle.take(p.raw()) else {
                debug_assert!(false, "arrival for a player who is not home");
                continue;
            };
            let dest = (self.layout.bucket_of(profile.skill) as usize) % k;
            mail.send(
                Addr::Shard(dest),
                t,
                player_key(TAG_ARRIVED, t, p),
                CampaignMsg::Arrived {
                    profile: Box::new(profile),
                },
            );
        }
        // Sweep the owned tier pools. Within the horizon, expired
        // waiters spill to the hub for replay rescue; past it nobody
        // new arrives, so any stragglers abandon. Sweeps in windows
        // before a pool's deadline are no-ops, which is what makes
        // timeout timing independent of co-scheduled shard work.
        let sweep_at = win.last_tick();
        if sweep_at <= self.config.horizon {
            for mb in &mut state.buckets {
                state.sweep_scratch.clear();
                if mb
                    .pool
                    .take_timed_out_into(sweep_at, &mut state.sweep_scratch)
                    == 0
                {
                    continue;
                }
                for &p in &state.sweep_scratch {
                    let profile = mb.parked.remove(&p.raw()).expect("parked waiter"); // hc-analyze: allow(P1): queued players always park their profile
                    mail.send(
                        Addr::Hub,
                        sweep_at,
                        player_key(TAG_TIMEOUT, sweep_at, p),
                        CampaignMsg::TimedOut {
                            profile: Box::new(profile),
                        },
                    );
                }
            }
        } else {
            for mb in &mut state.buckets {
                state.sweep_scratch.clear();
                mb.pool.abandon_all_into(&mut state.sweep_scratch);
                for &p in &state.sweep_scratch {
                    mb.parked.remove(&p.raw());
                }
            }
        }
        // Wake at the next calendar arrival or the earliest tier-pool
        // deadline, whichever comes first: the deadline wake is what
        // guarantees every pool's timeout window is actually stepped.
        let mut wake = state.calendar.peek_time();
        for mb in &state.buckets {
            if let Some(d) = mb.pool.next_deadline() {
                wake = Some(wake.map_or(d, |w| w.min(d)));
            }
        }
        wake
    }

    fn hub_step(
        &mut self,
        win: &WindowInfo,
        inbox: Vec<(SimTime, CampaignMsg)>,
        mail: &mut Mailbox<CampaignMsg>,
    ) -> HubDecision {
        // Canonical key order: all Dones (sid order) land first, then
        // Paireds ((time, arriver) order), then TimedOuts ((time,
        // player) order) — outcomes apply before new sessions are
        // planned, and pairing consumes the plan stream before replay
        // fallback, identically in every layout.
        let processed = inbox.len() as u64;
        for (at, msg) in inbox {
            match msg {
                CampaignMsg::Done { solo, outcome } => self.apply_done(solo, *outcome),
                CampaignMsg::Paired {
                    waiter,
                    arriver,
                    waited,
                } => self.on_paired(at, *waiter, *arriver, waited, mail),
                CampaignMsg::TimedOut { profile } => self.on_timed_out(at, *profile, mail),
                CampaignMsg::Play(_) | CampaignMsg::Return { .. } | CampaignMsg::Arrived { .. } => {
                    debug_assert!(false, "shard-bound message delivered to the hub");
                }
            }
        }
        if processed > 0 && hc_obs::active() {
            // Deterministic hub work proxy: one simulated microsecond
            // per message processed. Sim-time trace tooling attributes
            // serial-hub load from this span; it is layout-invariant
            // because the hub inbox is.
            hc_obs::span(
                "games",
                "hub",
                win.start.ticks(),
                win.start.ticks() + processed,
                &[("messages", processed.into())],
            );
        }
        // The hub never forces a wake: sessions in flight keep pending
        // messages inside the engine, and every matchmaking deadline
        // lives on the shards now.
        HubDecision::running(None)
    }
}

// ---------------------------------------------------------------------------
// ESP over the sharded API
// ---------------------------------------------------------------------------

/// The ESP Game as a [`ShardGame`]: live output-agreement sessions plus
/// replay-bot solo rescue, planned on the hub and played purely.
#[derive(Debug)]
pub struct EspShardGame {
    /// The image world (shared, read-only during the run).
    pub world: crate::esp::EspWorld,
}

impl EspShardGame {
    /// Generates the game's world.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        EspShardGame {
            world: crate::esp::EspWorld::generate(config, rng),
        }
    }
}

impl ShardGame for EspShardGame {
    fn register(&self, platform: &mut Platform) {
        self.world.register_tasks(platform);
    }

    fn plan_live(
        &self,
        platform: &mut Platform,
        seats: [PlayerId; 2],
        rng: &mut SimRng,
    ) -> Vec<PlannedRound> {
        plan_rounds(platform, &seats, rng, false)
    }

    fn plan_solo(
        &self,
        platform: &mut Platform,
        player: PlayerId,
        rng: &mut SimRng,
    ) -> Option<Vec<PlannedRound>> {
        Some(plan_rounds(platform, &[player], rng, true))
    }

    fn play(
        &self,
        job: &mut SessionJob,
        cfg: SessionConfig,
        rule: ScoreRule,
        rng: &mut SimRng,
    ) -> PlayedSession {
        if job.solo {
            play_esp_solo_planned(&self.world, job, cfg, rule, rng)
        } else {
            play_esp_live_planned(&self.world, job, cfg, rule, rng)
        }
    }

    fn precision(&self, platform: &Platform) -> (usize, usize) {
        self.world.verified_precision(platform)
    }

    fn name(&self) -> &'static str {
        "esp"
    }
}

/// Plans up to `max_rounds` rounds for `seats`, marking tasks served.
/// Over-planning is deliberate: the shard stops early when the session
/// budget runs out, and the extra served marks are deterministic.
fn plan_rounds(
    platform: &mut Platform,
    seats: &[PlayerId],
    rng: &mut SimRng,
    with_recordings: bool,
) -> Vec<PlannedRound> {
    let max_rounds = platform.config().session.max_rounds as usize;
    let mut rounds = Vec::with_capacity(max_rounds);
    for _ in 0..max_rounds {
        let Some(task) = platform.next_task_for(seats, rng) else {
            break;
        };
        platform.record_served(task, seats);
        let recording = if with_recordings {
            platform.replay().sample(task, rng).cloned()
        } else {
            None
        };
        rounds.push(PlannedRound {
            task,
            taboo: platform.taboo_for(task),
            recording,
        });
    }
    rounds
}

/// Pure planned version of [`crate::esp::play_esp_session`]: same round
/// state machine, but tasks/taboos come from the plan and platform
/// effects are collected instead of applied.
fn play_esp_live_planned(
    world: &crate::esp::EspWorld,
    job: &mut SessionJob,
    cfg: SessionConfig,
    rule: ScoreRule,
    rng: &mut SimRng,
) -> PlayedSession {
    let params = SessionParams::pair(job.seats[0], job.seats[1], job.sid, job.start);
    let [left, right] = params.seats;
    let mut session = Session::new(job.sid, [left, right], job.start, cfg);
    let mut now = job.start;
    let mut streaks = [0u32; 2];
    // The hot loop: rounds are consumed by value so every taboo list
    // moves straight into its round (no per-round clone), the output is
    // pre-sized from the plan cardinality, and the recording trace is a
    // reused scratch buffer.
    let rounds = std::mem::take(&mut job.rounds);
    let mut played = Vec::with_capacity(rounds.len());
    let mut left_trace: Vec<(SimDuration, Label)> = Vec::new();
    let (pa, rest) = job.profiles.split_at_mut(1);

    for planned in rounds {
        if !session.can_play_more(now) {
            break;
        }
        let PlannedRound { task, taboo, .. } = planned;
        let Some(truth) = world.truth_for_task(task) else {
            break;
        };
        let mut round = OutputAgreementRound::with_guess_capacity(
            task,
            taboo,
            cfg.round_time_limit,
            MAX_GUESSES_PER_SEAT,
        );
        let deadline = now + cfg.round_time_limit;
        let mut profiles = [&mut pa[0], &mut rest[0]];
        let mut cursors = [now, now];
        let mut guesses_left = [MAX_GUESSES_PER_SEAT; 2];
        left_trace.clear();
        let mut matched_label: Option<Label> = None;
        let mut end = deadline;

        loop {
            let seat_idx = if cursors[0] <= cursors[1] { 0 } else { 1 };
            // hc-analyze: allow(P1): seat_idx is 0 or 1 by construction
            if guesses_left[seat_idx] == 0 && guesses_left[1 - seat_idx] == 0 {
                break;
            }
            if guesses_left[seat_idx] == 0 {
                cursors[seat_idx] = SimTime::MAX;
                continue;
            }
            let profile = &mut profiles[seat_idx];
            let answer =
                profile
                    .behavior
                    .next_answer(truth, world.vocabulary(), round.taboo(), rng);
            let latency = profile.response.sample(
                match &answer {
                    Answer::Text(l) => Some(l),
                    _ => None,
                },
                rng,
            );
            cursors[seat_idx] += latency;
            guesses_left[seat_idx] -= 1;
            let at = cursors[seat_idx];
            if at > deadline {
                end = deadline;
                break;
            }
            let seat = if seat_idx == 0 {
                Seat::Left
            } else {
                Seat::Right
            };
            if seat == Seat::Left {
                if let Answer::Text(l) = &answer {
                    left_trace.push((at.saturating_since(now), l.clone()));
                }
            }
            match round.submit(seat, answer, at) {
                SubmitOutcome::Matched(label) => {
                    matched_label = label;
                    end = at;
                    break;
                }
                SubmitOutcome::BothPassed => {
                    end = at;
                    break;
                }
                SubmitOutcome::RoundOver => {
                    end = deadline;
                    break;
                }
                _ => {}
            }
        }

        let result = round.finish(end);
        let matched = result.is_match();
        let mut agreements = Vec::new();
        if let Some(label) = matched_label.or(result.agreed_label) {
            agreements.push((label, left, right));
        }
        let recording = (!left_trace.is_empty())
            .then(|| RecordedRound::new(task, left, std::mem::take(&mut left_trace)));
        let duration = end.saturating_since(now);
        let points = [
            rule.round_score(matched, duration.as_secs_f64(), streaks[0]),
            rule.round_score(matched, duration.as_secs_f64(), streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::OutputAgreement,
            task,
            matched,
            candidate_outputs: u32::from(matched),
            duration,
            points,
        });
        played.push(PlayedRound {
            task,
            agreements,
            recording,
        });
        now = end + INTER_ROUND_GAP;
    }

    PlayedSession {
        transcript: session.finish(now),
        rounds: played,
    }
}

/// Pure planned version of [`crate::esp::play_esp_replay_session`].
fn play_esp_solo_planned(
    world: &crate::esp::EspWorld,
    job: &mut SessionJob,
    cfg: SessionConfig,
    rule: ScoreRule,
    rng: &mut SimRng,
) -> PlayedSession {
    let player = job.seats[0];
    let mut session = Session::new(job.sid, [player, player], job.start, cfg);
    let mut now = job.start;
    let mut streak = 0u32;
    // Consumed by value: the taboo list moves into the round and the
    // seeded recording's labels move into the bot event feed — the
    // only per-round label clones left are the human's own trace.
    let rounds = std::mem::take(&mut job.rounds);
    let mut played = Vec::with_capacity(rounds.len());
    let mut trace: Vec<(SimDuration, Label)> = Vec::new();
    let profile = &mut job.profiles[0];

    for planned in rounds {
        if !session.can_play_more(now) {
            break;
        }
        let PlannedRound {
            task,
            taboo,
            recording: seeded,
        } = planned;
        let Some(truth) = world.truth_for_task(task) else {
            break;
        };
        let recorded_player = seeded.as_ref().map(|r| r.recorded_player);
        let mut round = OutputAgreementRound::with_guess_capacity(
            task,
            taboo,
            cfg.round_time_limit,
            MAX_GUESSES_PER_SEAT,
        );
        let deadline = now + cfg.round_time_limit;
        let mut bot_events: Vec<(SimTime, Label)> = seeded
            .map(|r| r.events.into_iter().map(|(d, l)| (now + d, l)).collect())
            .unwrap_or_default();
        bot_events.reverse(); // pop() from the back = chronological order

        let mut cursor = now;
        let mut guesses_left = MAX_GUESSES_PER_SEAT;
        trace.clear();
        let mut matched_label: Option<Label> = None;
        let mut end = deadline;

        loop {
            let next_bot = bot_events.last().map(|(t, _)| *t).unwrap_or(SimTime::MAX);
            let human_turn = cursor <= next_bot && guesses_left > 0;
            if !human_turn && next_bot == SimTime::MAX {
                break;
            }
            let (seat, at, answer) = if human_turn {
                let answer =
                    profile
                        .behavior
                        .next_answer(truth, world.vocabulary(), round.taboo(), rng);
                let latency = profile.response.sample(
                    match &answer {
                        Answer::Text(l) => Some(l),
                        _ => None,
                    },
                    rng,
                );
                cursor += latency;
                guesses_left -= 1;
                (Seat::Left, cursor, answer)
            } else {
                let (t, l) = bot_events.pop().expect("checked non-empty"); // hc-analyze: allow(P1): branch taken only when bot_events is non-empty
                (Seat::Right, t, Answer::Text(l))
            };
            if at > deadline {
                end = deadline;
                break;
            }
            if seat == Seat::Left {
                if let Answer::Text(l) = &answer {
                    trace.push((at.saturating_since(now), l.clone()));
                }
            }
            match round.submit(seat, answer, at) {
                SubmitOutcome::Matched(label) => {
                    matched_label = label;
                    end = at;
                    break;
                }
                SubmitOutcome::BothPassed => {
                    end = at;
                    break;
                }
                SubmitOutcome::RoundOver => {
                    end = deadline;
                    break;
                }
                _ => {}
            }
        }

        let result = round.finish(end);
        let matched = result.is_match();
        let mut agreements = Vec::new();
        if let (Some(label), Some(rec_player)) =
            (matched_label.or(result.agreed_label), recorded_player)
        {
            agreements.push((label, player, rec_player));
        }
        let recording = (!trace.is_empty())
            .then(|| RecordedRound::new(task, player, std::mem::take(&mut trace)));
        let duration = end.saturating_since(now);
        let points = rule.round_score(matched, duration.as_secs_f64(), streak);
        streak = if matched { streak + 1 } else { 0 };
        session.record_round(RoundRecord {
            template: TemplateKind::OutputAgreement,
            task,
            matched,
            candidate_outputs: u32::from(matched),
            duration,
            points: [points, 0],
        });
        played.push(PlayedRound {
            task,
            agreements,
            recording,
        });
        now = end + INTER_ROUND_GAP;
    }

    PlayedSession {
        transcript: session.finish(now),
        rounds: played,
    }
}

// ---------------------------------------------------------------------------
// Verbosity over the sharded API
// ---------------------------------------------------------------------------

/// Verbosity as a [`ShardGame`]: inversion-problem sessions with roles
/// alternating by session-id parity; no solo mode (timed-out waiters
/// give up and return at a later sitting).
#[derive(Debug)]
pub struct VerbosityShardGame {
    /// The secrets world (shared, read-only during the run).
    pub world: crate::verbosity::VerbosityWorld,
}

impl VerbosityShardGame {
    /// Generates the game's world.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        VerbosityShardGame {
            world: crate::verbosity::VerbosityWorld::generate(config, rng),
        }
    }
}

impl ShardGame for VerbosityShardGame {
    fn register(&self, platform: &mut Platform) {
        self.world.register_tasks(platform);
    }

    fn plan_live(
        &self,
        platform: &mut Platform,
        seats: [PlayerId; 2],
        rng: &mut SimRng,
    ) -> Vec<PlannedRound> {
        plan_rounds(platform, &seats, rng, false)
    }

    fn plan_solo(
        &self,
        _platform: &mut Platform,
        _player: PlayerId,
        _rng: &mut SimRng,
    ) -> Option<Vec<PlannedRound>> {
        None // Verbosity has no replay-bot story
    }

    fn play(
        &self,
        job: &mut SessionJob,
        cfg: SessionConfig,
        rule: ScoreRule,
        rng: &mut SimRng,
    ) -> PlayedSession {
        play_verbosity_planned(&self.world, job, cfg, rule, rng)
    }

    fn precision(&self, platform: &Platform) -> (usize, usize) {
        let verified = platform.verified_labels();
        let correct = verified
            .iter()
            .filter(|v| self.world.is_true_fact(v.task, &v.label))
            .count();
        (correct, verified.len())
    }

    fn name(&self) -> &'static str {
        "verbosity"
    }
}

/// Pure planned version of
/// [`crate::verbosity::play_verbosity_session`]; roles alternate by
/// session-id parity (the serial driver flips a global bool, which a
/// sharded run cannot do order-independently).
fn play_verbosity_planned(
    world: &crate::verbosity::VerbosityWorld,
    job: &mut SessionJob,
    cfg: SessionConfig,
    rule: ScoreRule,
    rng: &mut SimRng,
) -> PlayedSession {
    let flip = job.sid.raw().is_multiple_of(2);
    let (n_idx, g_idx) = if flip { (0, 1) } else { (1, 0) };
    let (narrator, guesser) = (job.seats[n_idx], job.seats[g_idx]);
    let mut session = Session::new(job.sid, [narrator, guesser], job.start, cfg);
    let mut now = job.start;
    let mut streaks = [0u32; 2];
    let mut played = Vec::with_capacity(job.rounds.len());
    let empty_taboo = TabooList::new();

    for planned in &job.rounds {
        if !session.can_play_more(now) {
            break;
        }
        let task = planned.task;
        let (Some(secret), Some(facts)) = (
            world.secret_for_task(task).cloned(),
            world.facts_for_task(task),
        ) else {
            break;
        };
        let mut round = InversionRound::new(task, secret, cfg.round_time_limit);
        let deadline = now + cfg.round_time_limit;
        let mut cursor = now;
        let mut hints_sent = 0usize;
        let mut end = deadline;
        let mut matched = false;

        'round: while hints_sent < MAX_HINTS {
            let (front, back) = job.profiles.split_at_mut(1);
            let (pn, pg) = if n_idx == 0 {
                (&mut front[0], &mut back[0])
            } else {
                (&mut back[0], &mut front[0])
            };
            let hint = pn
                .behavior
                .next_answer(facts, world.vocabulary(), &empty_taboo, rng);
            let latency = pn.response.sample(
                match &hint {
                    Answer::Text(l) => Some(l),
                    _ => None,
                },
                rng,
            );
            cursor += latency;
            if cursor > deadline {
                break 'round;
            }
            match round.submit(Seat::Left, hint, cursor) {
                SubmitOutcome::BothPassed => {
                    end = cursor;
                    break 'round;
                }
                SubmitOutcome::RoundOver => {
                    break 'round;
                }
                _ => {}
            }
            hints_sent += 1;

            let Some(candidates) = world.guess_candidates(task, hints_sent, 8) else {
                break 'round;
            };
            for _ in 0..GUESSES_PER_HINT {
                let guess = pg
                    .behavior
                    .guess(&candidates, world.vocabulary(), pg.skill, rng);
                let latency = pg.response.sample(
                    match &guess {
                        Answer::Text(l) => Some(l),
                        _ => None,
                    },
                    rng,
                );
                cursor += latency;
                if cursor > deadline {
                    break 'round;
                }
                match round.submit(Seat::Right, guess, cursor) {
                    SubmitOutcome::Matched(_) => {
                        matched = true;
                        end = cursor;
                        break 'round;
                    }
                    SubmitOutcome::BothPassed => {
                        end = cursor;
                        break 'round;
                    }
                    SubmitOutcome::RoundOver => {
                        break 'round;
                    }
                    _ => {}
                }
            }
        }

        let result = round.finish(end.min(deadline));
        let facts_out = result.validated_facts();
        let n_facts = facts_out.len() as u32;
        let agreements = facts_out
            .into_iter()
            .map(|(_, clue)| (clue, narrator, guesser))
            .collect();
        let duration = result.duration;
        let points = [
            rule.round_score(matched, duration.as_secs_f64(), streaks[0]),
            rule.round_score(matched, duration.as_secs_f64(), streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::InversionProblem,
            task,
            matched,
            candidate_outputs: n_facts,
            duration,
            points,
        });
        played.push(PlayedRound {
            task,
            agreements,
            recording: None,
        });
        now = end.min(deadline) + INTER_ROUND_GAP;
    }

    PlayedSession {
        transcript: session.finish(now),
        rounds: played,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esp_campaign(
        players: usize,
        shards: usize,
        threads: usize,
        seed: u64,
    ) -> ShardedCampaign<EspShardGame> {
        let factory = RngFactory::new(seed);
        let mut world_rng = factory.stream("world");
        let driver = EspShardGame::generate(&WorldConfig::small(), &mut world_rng);
        let mut config = ShardedCampaignConfig::small();
        config.players = players;
        config.horizon = SimTime::from_secs(2 * 3600);
        config.shards = shards;
        config.threads = threads;
        ShardedCampaign::new(driver, config, seed)
    }

    fn fingerprint(report: &ShardedCampaignReport, platform: &Platform) -> String {
        // Everything downstream serialization would see, including the
        // exact verified-label order and float bits.
        format!(
            "{report:?}|verified={:?}|rejected={}",
            platform.verified_labels(),
            platform.rejected_agreements()
        )
    }

    #[test]
    fn esp_campaign_runs_and_reports() {
        let mut campaign = esp_campaign(40, 2, 1, 11);
        let report = campaign.run().expect("runs");
        assert!(
            report.live_sessions + report.solo_sessions > 0,
            "no sessions ran"
        );
        assert!(report.metrics.total_human_hours > 0.0);
        assert!(
            report.precision_rate() > 0.8,
            "precision {}",
            report.precision_rate()
        );
    }

    #[test]
    fn esp_results_are_shard_and_thread_invariant() {
        let baseline = {
            let mut c = esp_campaign(40, 1, 1, 13);
            let r = c.run().expect("runs");
            fingerprint(&r, c.platform())
        };
        for shards in [2, 4] {
            for threads in [1, 4] {
                let mut c = esp_campaign(40, shards, threads, 13);
                let r = c.run().expect("runs");
                assert_eq!(
                    fingerprint(&r, c.platform()),
                    baseline,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    /// ISSUE acceptance: a 100k-player run is byte-identical at every
    /// `shards x threads` layout. Minutes-long in release mode, so it
    /// is ignored by default; run it with
    /// `cargo test -p hc-games --release -- --ignored`.
    #[test]
    #[ignore = "minutes-long acceptance check; run with --ignored in release mode"]
    fn esp_100k_players_are_byte_identical_across_layouts() {
        let run = |shards: usize, threads: usize| {
            let factory = RngFactory::new(41);
            let mut world_rng = factory.stream("world");
            let mut world_cfg = WorldConfig::small();
            world_cfg.stimuli = 10_000;
            let driver = EspShardGame::generate(&world_cfg, &mut world_rng);
            let mut config = ShardedCampaignConfig::small();
            config.players = 100_000;
            config.horizon = SimTime::from_secs(2 * 3600);
            config.arrival_spread = SimDuration::from_secs(45 * 60);
            config.window = SimDuration::from_secs(10);
            config.shards = shards;
            config.threads = threads;
            let mut c = ShardedCampaign::new(driver, config, 41);
            let r = c.run().expect("runs");
            fingerprint(&r, c.platform())
        };
        let baseline = run(1, 1);
        for shards in [2, 4] {
            for threads in [1, 4] {
                assert_eq!(
                    run(shards, threads),
                    baseline,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn verbosity_campaign_collects_facts_with_giveups() {
        let factory = RngFactory::new(21);
        let mut world_rng = factory.stream("world");
        let driver = VerbosityShardGame::generate(&WorldConfig::small(), &mut world_rng);
        let mut config = ShardedCampaignConfig::small();
        config.players = 30;
        config.horizon = SimTime::from_secs(2 * 3600);
        config.shards = 3;
        let mut campaign = ShardedCampaign::new(driver, config, 21);
        let report = campaign.run().expect("runs");
        assert_eq!(report.game, "verbosity");
        assert_eq!(report.solo_sessions, 0, "verbosity has no solo mode");
        assert!(report.live_sessions > 0);
        assert!(report.precision.1 > 0, "no facts verified");
        // Honest narrators only state true facts; the realistic mix
        // still verifies mostly-true ones.
        assert!(report.precision_rate() > 0.5);
    }

    #[test]
    fn verbosity_results_are_shard_invariant() {
        let run = |shards: usize, threads: usize| {
            let factory = RngFactory::new(23);
            let mut world_rng = factory.stream("world");
            let driver = VerbosityShardGame::generate(&WorldConfig::small(), &mut world_rng);
            let mut config = ShardedCampaignConfig::small();
            config.players = 24;
            config.horizon = SimTime::from_secs(3600);
            config.shards = shards;
            config.threads = threads;
            let mut c = ShardedCampaign::new(driver, config, 23);
            let r = c.run().expect("runs");
            fingerprint(&r, c.platform())
        };
        let baseline = run(1, 1);
        assert_eq!(run(2, 1), baseline);
        assert_eq!(run(4, 4), baseline);
    }

    #[test]
    fn run_twice_is_an_error() {
        let mut campaign = esp_campaign(8, 2, 1, 5);
        campaign.run().expect("first run");
        assert!(matches!(campaign.run(), Err(ShardError::Config { .. })));
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let fp = |seed| {
            let mut c = esp_campaign(24, 2, 2, seed);
            let r = c.run().expect("runs");
            fingerprint(&r, c.platform())
        };
        assert_eq!(fp(99), fp(99));
        assert_ne!(fp(99), fp(100), "different seeds must differ");
    }
}
