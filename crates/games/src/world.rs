//! Synthetic stimulus worlds — the ground truth the games play over.
//!
//! Real deployments show players images, audio clips and scanned pages; a
//! reproducible simulation needs stimuli whose *true* descriptions are
//! known so label precision can be scored exactly. [`WorldConfig`]
//! controls the shape; each game crate module derives its own world type
//! from the shared machinery here:
//!
//! * every stimulus gets a handful of true concepts drawn from a shared
//!   Zipf [`Vocabulary`] (popular concepts appear in many stimuli, like
//!   "sky" does in photos);
//! * concept weights within a stimulus are geometric, so there is a clear
//!   modal label plus a tail — matching the agreement dynamics the ESP
//!   Game reports (most pairs match on an "obvious" label first).

use hc_core::Label;
use hc_crowd::{LabelDistribution, Vocabulary};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape parameters shared by all game worlds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of stimuli (images/clips/secrets).
    pub stimuli: usize,
    /// Global vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent of concept popularity.
    pub zipf_exponent: f64,
    /// Minimum true concepts per stimulus.
    pub concepts_min: usize,
    /// Maximum true concepts per stimulus.
    pub concepts_max: usize,
    /// Geometric decay of concept weights within a stimulus (in `(0, 1)`;
    /// smaller = more dominant modal label).
    pub weight_decay: f64,
}

impl WorldConfig {
    /// A small world for unit tests and doc examples.
    #[must_use]
    pub fn small() -> Self {
        WorldConfig {
            stimuli: 50,
            vocabulary: 300,
            zipf_exponent: 1.05,
            concepts_min: 3,
            concepts_max: 6,
            weight_decay: 0.55,
        }
    }

    /// The default experiment-scale world.
    #[must_use]
    pub fn standard() -> Self {
        WorldConfig {
            stimuli: 2_000,
            vocabulary: 5_000,
            zipf_exponent: 1.05,
            concepts_min: 3,
            concepts_max: 8,
            weight_decay: 0.55,
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns an error string describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.stimuli == 0 {
            return Err("stimuli must be > 0".into());
        }
        if self.vocabulary < self.concepts_max.max(1) {
            return Err("vocabulary must cover concepts_max".into());
        }
        if self.concepts_min == 0 || self.concepts_min > self.concepts_max {
            return Err("need 0 < concepts_min <= concepts_max".into());
        }
        if !(0.0..1.0).contains(&self.weight_decay) || self.weight_decay <= 0.0 {
            return Err("weight_decay must be in (0, 1)".into());
        }
        Ok(())
    }
}

/// Draws one stimulus's ground-truth label distribution: `k` distinct
/// Zipf-popular concepts with geometrically decaying weights.
pub fn sample_stimulus_truth<R: Rng + ?Sized>(
    config: &WorldConfig,
    vocab: &Vocabulary,
    rng: &mut R,
) -> LabelDistribution {
    let k = if config.concepts_max > config.concepts_min {
        rng.gen_range(config.concepts_min..=config.concepts_max)
    } else {
        config.concepts_min
    };
    let mut chosen: Vec<Label> = Vec::with_capacity(k);
    // Rejection-sample distinct concepts; fall back to uniform draws if the
    // Zipf head keeps colliding.
    let mut attempts = 0;
    while chosen.len() < k {
        let l = if attempts < 20 * k {
            vocab.sample(rng)
        } else {
            vocab.sample_uniform(rng)
        };
        attempts += 1;
        if !chosen.contains(&l) {
            chosen.push(l);
        }
    }
    let pairs = chosen
        .into_iter()
        .enumerate()
        .map(|(i, l)| (l, config.weight_decay.powi(i as i32)))
        .collect();
    LabelDistribution::new(pairs).expect("constructed weights are valid") // hc-analyze: allow(P1): decayed weights are positive and finite
}

/// The generic world: one truth distribution per stimulus, plus the shared
/// vocabulary. Game-specific worlds wrap this.
#[derive(Debug, Clone)]
pub struct BaseWorld {
    /// The shared vocabulary.
    pub vocabulary: Vocabulary,
    /// Per-stimulus ground truth, indexed by stimulus id.
    pub truths: Vec<LabelDistribution>,
}

impl BaseWorld {
    /// Generates a world from a validated config.
    ///
    /// # Panics
    ///
    /// Panics when the config is invalid (experiment setup error).
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        config.validate().expect("world config must be valid"); // hc-analyze: allow(P1): documented # Panics contract for invalid configs
        let vocabulary = Vocabulary::new(config.vocabulary, config.zipf_exponent);
        let truths = (0..config.stimuli)
            .map(|_| sample_stimulus_truth(config, &vocabulary, rng))
            .collect();
        BaseWorld { vocabulary, truths }
    }

    /// Number of stimuli.
    #[must_use]
    pub fn len(&self) -> usize {
        self.truths.len()
    }

    /// `true` when the world has no stimuli.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.truths.is_empty()
    }

    /// Ground truth of one stimulus.
    #[must_use]
    pub fn truth(&self, stimulus: usize) -> Option<&LabelDistribution> {
        self.truths.get(stimulus)
    }

    /// Whether `label` is a true description of `stimulus` — the precision
    /// oracle every quality experiment scores against.
    #[must_use]
    pub fn is_correct(&self, stimulus: usize, label: &Label) -> bool {
        self.truth(stimulus).is_some_and(|t| t.contains(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn config_validation() {
        assert!(WorldConfig::small().validate().is_ok());
        assert!(WorldConfig::standard().validate().is_ok());
        let mut bad = WorldConfig::small();
        bad.stimuli = 0;
        assert!(bad.validate().is_err());
        let mut bad = WorldConfig::small();
        bad.concepts_min = 0;
        assert!(bad.validate().is_err());
        let mut bad = WorldConfig::small();
        bad.concepts_min = 9;
        assert!(bad.validate().is_err());
        let mut bad = WorldConfig::small();
        bad.weight_decay = 1.0;
        assert!(bad.validate().is_err());
        let mut bad = WorldConfig::small();
        bad.vocabulary = 2;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn stimulus_truths_have_requested_shape() {
        let cfg = WorldConfig::small();
        let world = BaseWorld::generate(&cfg, &mut rng());
        assert_eq!(world.len(), 50);
        for truth in &world.truths {
            assert!((3..=6).contains(&truth.len()));
            // Labels are distinct.
            let mut labels: Vec<&Label> = truth.labels().iter().collect();
            labels.sort();
            labels.dedup();
            assert_eq!(labels.len(), truth.len());
        }
    }

    #[test]
    fn modal_label_dominates() {
        let cfg = WorldConfig::small();
        let world = BaseWorld::generate(&cfg, &mut rng());
        for truth in &world.truths {
            let top = truth.top().clone();
            let top_p = truth.pmf_of(&top);
            for l in truth.labels() {
                assert!(truth.pmf_of(l) <= top_p + 1e-12);
            }
            // Geometric decay 0.55 over ≥3 concepts ⇒ modal ≥ ~40%.
            assert!(top_p > 0.35, "modal p {top_p}");
        }
    }

    #[test]
    fn correctness_oracle() {
        let cfg = WorldConfig::small();
        let world = BaseWorld::generate(&cfg, &mut rng());
        let truth = world.truth(0).unwrap();
        let known = truth.labels()[0].clone();
        assert!(world.is_correct(0, &known));
        assert!(!world.is_correct(0, &Label::new("zqzq")));
        assert!(!world.is_correct(999, &known));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = WorldConfig::small();
        let a = BaseWorld::generate(&cfg, &mut rng());
        let b = BaseWorld::generate(&cfg, &mut rng());
        for (x, y) in a.truths.iter().zip(&b.truths) {
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    fn degenerate_concept_range() {
        let mut cfg = WorldConfig::small();
        cfg.concepts_min = 4;
        cfg.concepts_max = 4;
        let world = BaseWorld::generate(&cfg, &mut rng());
        assert!(world.truths.iter().all(|t| t.len() == 4));
    }
}
