//! Generic event-driven campaigns — any game, full deployment dynamics.
//!
//! [`EspCampaign`](crate::esp::EspCampaign) hard-wires the flagship game;
//! this module generalizes the same machinery (Poisson sittings, random
//! matching, engagement-driven returns) over a [`SessionDriver`] trait so
//! TagATune, Verbosity, Peekaboom, Squigl and Matchin can run the same
//! deployment analyses (e.g. the F5 concurrency story) without
//! duplicating the event loop. Games without a replay-bot story simply
//! drop timed-out players back into the queue at their next sitting.

use crate::params::SessionParams;
use crate::world::WorldConfig;
use hc_collect::DetMap;
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, EngagementModel, Population, PopulationBuilder};
use hc_sim::dist::Exponential;
use hc_sim::{EventQueue, RngFactory, SimRng};

/// Drives one session of a concrete game between two live players.
pub trait SessionDriver {
    /// Plays one session, returning the transcript (already recorded into
    /// the platform by the game's session function).
    fn play(
        &mut self,
        platform: &mut Platform,
        population: &mut Population,
        params: SessionParams,
        rng: &mut SimRng,
    ) -> SessionTranscript;

    /// Registers the game's tasks on a fresh platform.
    fn register(&mut self, platform: &mut Platform);

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Campaign configuration shared by every game.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Platform/verification parameters.
    pub platform: PlatformConfig,
    /// Population size.
    pub players: usize,
    /// Behaviour mix.
    pub mix: ArchetypeMix,
    /// Engagement (sitting length / churn) model.
    pub engagement: EngagementModel,
    /// Mean gap between a player's sittings.
    pub mean_return_gap: SimDuration,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Spread of first arrivals.
    pub arrival_spread: SimDuration,
}

impl CampaignConfig {
    /// A small test-sized configuration.
    #[must_use]
    pub fn small() -> Self {
        CampaignConfig {
            platform: PlatformConfig {
                gold_injection_rate: 0.0,
                ..PlatformConfig::default()
            },
            players: 40,
            mix: ArchetypeMix::realistic(),
            engagement: EngagementModel::esp_calibrated(),
            mean_return_gap: SimDuration::from_mins(60),
            horizon: SimTime::from_secs(4 * 3600),
            arrival_spread: SimDuration::from_mins(30),
        }
    }
}

/// Report of a generic campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Which game ran.
    pub game: &'static str,
    /// GWAP metrics from the platform ledger.
    pub metrics: GwapMetrics,
    /// Sessions completed.
    pub sessions: u64,
    /// Verified outputs.
    pub verified: usize,
    /// Live-pairing statistics.
    pub matchmaker: hc_core::matchmaker::MatchmakerStats,
    /// Mean pairing wait in seconds.
    pub mean_wait_secs: f64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrival(PlayerId),
    /// Check whether a queued player is still waiting; if so they give up
    /// and come back at a later sitting (no replay bots in the generic
    /// runner).
    GiveUp(PlayerId),
}

#[derive(Debug)]
struct Plan {
    sittings: Vec<SimDuration>,
    next: usize,
    remaining: SimDuration,
}

/// The generic campaign runner.
#[derive(Debug)]
pub struct Campaign<D: SessionDriver> {
    driver: D,
    config: CampaignConfig,
    platform: Platform,
    population: Population,
    // Per-player session plans: keyed lookups only (never iterated).
    plans: DetMap<PlayerId, Plan>,
    session_ids: hc_core::id::IdAllocator<SessionId>,
    rng: SimRng,
    sessions: u64,
}

impl<D: SessionDriver> Campaign<D> {
    /// Builds a campaign for `driver` from a config and seed.
    ///
    /// # Panics
    ///
    /// Panics when the platform config is invalid.
    pub fn new(mut driver: D, config: CampaignConfig, seed: u64) -> Self {
        let factory = RngFactory::new(seed);
        let mut platform = Platform::new(config.platform).expect("valid platform config"); // hc-analyze: allow(P1): documented # Panics contract for invalid experiment configs
        driver.register(&mut platform);
        let mut pop_rng = factory.stream("population");
        let population = PopulationBuilder::new(config.players)
            .mix(config.mix.clone())
            .build(&mut pop_rng);
        for _ in 0..config.players {
            platform.register_player();
        }
        let mut plan_rng = factory.stream("plans");
        let plans = population
            .players()
            .iter()
            .map(|p| {
                let lifetime = config.engagement.sample_lifetime(&mut plan_rng);
                (
                    p.id,
                    Plan {
                        sittings: lifetime.session_lengths,
                        next: 0,
                        remaining: SimDuration::ZERO,
                    },
                )
            })
            .collect();
        Campaign {
            driver,
            config,
            platform,
            population,
            plans,
            session_ids: hc_core::id::IdAllocator::new(),
            rng: factory.stream("campaign"),
            sessions: 0,
        }
    }

    /// Runs to the horizon and reports.
    pub fn run(&mut self) -> CampaignReport {
        // Every player gets an opening arrival, so the queue's working
        // set is at least the population; size it up front.
        let mut queue: EventQueue<Ev> = EventQueue::with_capacity(self.config.players.max(16));
        let spread = Exponential::new(1.0 / self.config.arrival_spread.as_secs_f64().max(1e-6))
            .expect("positive spread"); // hc-analyze: allow(P1): rate argument clamped to at least 1e-6
        let ids: Vec<PlayerId> = self.population.players().iter().map(|p| p.id).collect();
        for p in &ids {
            queue.push(
                SimTime::from_secs_f64(spread.sample(&mut self.rng)),
                Ev::Arrival(*p),
            );
        }
        while let Some((now, ev)) = queue.pop() {
            if now > self.config.horizon {
                break;
            }
            self.platform.set_time(now);
            match ev {
                Ev::Arrival(p) => self.handle_arrival(&mut queue, now, p),
                Ev::GiveUp(p) => {
                    if self.platform.matchmaker_mut().abandon(p) {
                        // Still waiting: give up and return next sitting.
                        let gap = Exponential::new(
                            1.0 / self.config.mean_return_gap.as_secs_f64().max(1e-6),
                        )
                        .expect("positive gap") // hc-analyze: allow(P1): rate argument clamped to at least 1e-6
                        .sample(&mut self.rng);
                        queue.push(now + SimDuration::from_secs_f64(gap), Ev::Arrival(p));
                    }
                }
            }
        }
        CampaignReport {
            game: self.driver.name(),
            metrics: self.platform.metrics(),
            sessions: self.sessions,
            verified: self.platform.verified_labels().len(),
            matchmaker: self.platform.matchmaker().stats(),
            mean_wait_secs: self.platform.matchmaker().wait_stats().mean(),
        }
    }

    fn handle_arrival(&mut self, queue: &mut EventQueue<Ev>, now: SimTime, player: PlayerId) {
        {
            let plan = self.plans.get_mut(&player).expect("planned player"); // hc-analyze: allow(P1): every registered player gets a plan at construction
            if plan.remaining.is_zero() {
                let Some(len) = plan.sittings.get(plan.next).copied() else {
                    return; // churned for good
                };
                plan.next += 1;
                plan.remaining = len;
            }
        }
        match self
            .platform
            .matchmaker_mut()
            .on_arrival(now, player, &mut self.rng)
        {
            MatchDecision::Paired { partner, .. } => {
                let sid = self.session_ids.next();
                let t = self.driver.play(
                    &mut self.platform,
                    &mut self.population,
                    SessionParams::pair(partner, player, sid, now),
                    &mut self.rng,
                );
                self.sessions += 1;
                let end = t.ended;
                let dur = t.duration();
                for p in [partner, player] {
                    self.schedule_next(queue, end, p, dur);
                }
            }
            MatchDecision::Queued => {
                // The player waits; if nobody pairs with them within a
                // patience window they give up (handled by GiveUp).
                let patience = self.config.platform.matchmaker.bot_fallback_wait * 6;
                queue.push(now + patience, Ev::GiveUp(player));
            }
        }
    }

    fn schedule_next(
        &mut self,
        queue: &mut EventQueue<Ev>,
        end: SimTime,
        player: PlayerId,
        played: SimDuration,
    ) {
        let plan = self.plans.get_mut(&player).expect("planned player"); // hc-analyze: allow(P1): every registered player gets a plan at construction
        plan.remaining = plan
            .remaining
            .saturating_sub(played.max(SimDuration::from_secs(1)));
        if !plan.remaining.is_zero() {
            queue.push(end, Ev::Arrival(player));
        } else if plan.next < plan.sittings.len() {
            let gap = Exponential::new(1.0 / self.config.mean_return_gap.as_secs_f64().max(1e-6))
                .expect("positive gap") // hc-analyze: allow(P1): rate argument clamped to at least 1e-6
                .sample(&mut self.rng);
            queue.push(end + SimDuration::from_secs_f64(gap), Ev::Arrival(player));
        }
    }

    /// Post-run access to the platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

/// A ready-made driver for TagATune.
#[derive(Debug)]
pub struct TagATuneDriver {
    /// The clip world.
    pub world: crate::tagatune::TagATuneWorld,
    /// Probability a round shows both seats the same clip.
    pub p_same: f64,
}

impl TagATuneDriver {
    /// Generates a driver with a fresh world.
    pub fn generate<R: rand::Rng + ?Sized>(config: &WorldConfig, p_same: f64, rng: &mut R) -> Self {
        TagATuneDriver {
            world: crate::tagatune::TagATuneWorld::generate(config, rng),
            p_same,
        }
    }
}

impl SessionDriver for TagATuneDriver {
    fn play(
        &mut self,
        platform: &mut Platform,
        population: &mut Population,
        params: SessionParams,
        rng: &mut SimRng,
    ) -> SessionTranscript {
        crate::tagatune::play_tagatune_session(
            platform,
            &self.world,
            population,
            params.left(),
            params.right(),
            params.session_id,
            params.start,
            self.p_same,
            rng,
        )
    }

    fn register(&mut self, platform: &mut Platform) {
        self.world.register_tasks(platform);
    }

    fn name(&self) -> &'static str {
        "tagatune"
    }
}

/// A ready-made driver for Verbosity (roles alternate by session parity).
#[derive(Debug)]
pub struct VerbosityDriver {
    /// The secrets world.
    pub world: crate::verbosity::VerbosityWorld,
    flip: bool,
}

impl VerbosityDriver {
    /// Generates a driver with a fresh world.
    pub fn generate<R: rand::Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        VerbosityDriver {
            world: crate::verbosity::VerbosityWorld::generate(config, rng),
            flip: false,
        }
    }
}

impl SessionDriver for VerbosityDriver {
    fn play(
        &mut self,
        platform: &mut Platform,
        population: &mut Population,
        params: SessionParams,
        rng: &mut SimRng,
    ) -> SessionTranscript {
        self.flip = !self.flip;
        let (narrator, guesser) = if self.flip {
            (params.left(), params.right())
        } else {
            (params.right(), params.left())
        };
        crate::verbosity::play_verbosity_session(
            platform,
            &self.world,
            population,
            narrator,
            guesser,
            params.session_id,
            params.start,
            rng,
        )
    }

    fn register(&mut self, platform: &mut Platform) {
        self.world.register_tasks(platform);
    }

    fn name(&self) -> &'static str {
        "verbosity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_campaign<D: SessionDriver>(driver: D, seed: u64) -> CampaignReport {
        let mut config = CampaignConfig::small();
        config.players = 24;
        config.horizon = SimTime::from_secs(2 * 3600);
        Campaign::new(driver, config, seed).run()
    }

    #[test]
    fn tagatune_campaign_produces_verified_tags() {
        let factory = RngFactory::new(3);
        let mut rng = factory.stream("world");
        let driver = TagATuneDriver::generate(&WorldConfig::small(), 0.5, &mut rng);
        let report = run_campaign(driver, 3);
        assert_eq!(report.game, "tagatune");
        assert!(report.sessions > 0, "no sessions ran");
        assert!(report.verified > 0, "no tags verified");
        assert!(report.metrics.total_human_hours > 0.0);
    }

    #[test]
    fn verbosity_campaign_collects_facts() {
        let factory = RngFactory::new(4);
        let mut rng = factory.stream("world");
        let driver = VerbosityDriver::generate(&WorldConfig::small(), &mut rng);
        let report = run_campaign(driver, 4);
        assert_eq!(report.game, "verbosity");
        assert!(report.sessions > 0);
        assert!(report.verified > 0, "no facts verified");
    }

    #[test]
    fn generic_campaigns_are_deterministic() {
        let mk = || {
            let factory = RngFactory::new(5);
            let mut rng = factory.stream("world");
            let driver = TagATuneDriver::generate(&WorldConfig::small(), 0.5, &mut rng);
            let r = run_campaign(driver, 5);
            (r.sessions, r.verified, r.metrics.total_outputs)
        };
        assert_eq!(mk(), mk());
    }
}
