//! # hc-games — the concrete Games With A Purpose
//!
//! The target paper surveys five deployed games, one (or two) per
//! template; this crate implements all of them on top of the `hc-core`
//! templates, driven by `hc-crowd` players over synthetic stimulus worlds:
//!
//! | Game | Template | Output |
//! |---|---|---|
//! | [`esp`] (ESP Game) | output-agreement | image labels |
//! | [`tagatune`] (TagATune) | input-agreement | audio-clip tags |
//! | [`verbosity`] (Verbosity) | inversion-problem | commonsense facts |
//! | [`peekaboom`] (Peekaboom) | inversion-problem | object locations |
//! | [`squigl`] (Squigl) | output-agreement | object segmentations |
//! | [`matchin`] (Matchin) | two-player preference | image ranking |
//!
//! [`world`] holds the synthetic ground truth each game plays over; every
//! game module exposes a `play_*_session` function (drive one session
//! between two seated players, feeding the [`Platform`](hc_core::Platform)
//! pipeline) and `esp` additionally exposes the full event-driven
//! [`campaign`](esp::EspCampaign) with arrivals, matchmaking and
//! replay-bot fallback — the machinery experiments T1 and F3–F6 run on.
//!
//! ## Example: one ESP session end to end
//!
//! ```
//! use hc_core::prelude::*;
//! use hc_crowd::{ArchetypeMix, PopulationBuilder};
//! use hc_games::esp::{play_esp_session, EspWorld};
//! use hc_games::params::SessionParams;
//! use hc_games::world::WorldConfig;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let world = EspWorld::generate(&WorldConfig::small(), &mut rng);
//! let mut platform = Platform::new(PlatformConfig::default()).unwrap();
//! world.register_tasks(&mut platform);
//!
//! let mut pop = PopulationBuilder::new(2)
//!     .mix(ArchetypeMix::all_honest())
//!     .build(&mut rng);
//! let (a, b) = (PlayerId::new(0), PlayerId::new(1));
//! let transcript = play_esp_session(
//!     &mut platform, &world, &mut pop,
//!     SessionParams::pair(a, b, SessionId::new(0), SimTime::ZERO),
//!     &mut rng,
//! );
//! assert!(transcript.rounds() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod esp;
pub mod matchin;
pub mod params;
pub mod peekaboom;
pub mod shard;
pub mod squigl;
pub mod tagatune;
pub mod verbosity;
pub mod world;

pub use campaign::{
    Campaign, CampaignConfig, CampaignReport, SessionDriver, TagATuneDriver, VerbosityDriver,
};
pub use esp::{EspCampaign, EspCampaignConfig, EspCampaignReport, EspWorld};
pub use matchin::{play_matchin_session, BradleyTerryRanking, MatchinWorld};
pub use params::SessionParams;
pub use peekaboom::{play_peekaboom_session, PeekaboomWorld};
pub use shard::{
    EspShardGame, ShardGame, ShardedCampaign, ShardedCampaignConfig, ShardedCampaignReport,
    VerbosityShardGame,
};
pub use squigl::{play_squigl_session, SquiglWorld};
pub use tagatune::{play_tagatune_session, TagATuneWorld};
pub use verbosity::{fact_label, parse_fact, play_verbosity_session, Relation, VerbosityWorld};
pub use world::WorldConfig;
