//! Matchin — pairwise preference elicitation and ranking.
//!
//! Both players see the same two images and each clicks the one they find
//! better; they score when they click the same image. Aggregated over many
//! pairs, the choices yield a global "which images do people like"
//! ranking — the deployed game's output. We model each image with a
//! latent appeal score; honest players choose by a Bradley–Terry draw
//! around the latent difference (sharpened by skill), and the collected
//! pairwise outcomes are re-fit with a Bradley–Terry MM estimator whose
//! recovered ranking is scored against the latent truth by Kendall tau
//! (experiment T1's Matchin row).

use crate::world::WorldConfig;
use hc_core::prelude::*;
use hc_crowd::Population;
use rand::Rng;

/// Pause between rounds.
const INTER_ROUND_GAP: SimDuration = SimDuration::from_secs(1);

/// The Matchin world: latent appeal per image.
#[derive(Debug, Clone)]
pub struct MatchinWorld {
    appeal: Vec<f64>,
}

impl MatchinWorld {
    /// Generates `config.stimuli` images with standard-normal latent
    /// appeal.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        let appeal = (0..config.stimuli)
            .map(|_| hc_sim::dist::standard_normal(rng))
            .collect();
        MatchinWorld { appeal }
    }

    /// Number of images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.appeal.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.appeal.is_empty()
    }

    /// Latent appeal of an image.
    #[must_use]
    pub fn appeal(&self, image: usize) -> Option<f64> {
        self.appeal.get(image).copied()
    }

    /// Probability an attentive player prefers `a` over `b`
    /// (Bradley–Terry on the latent difference, sharpened by skill).
    #[must_use]
    pub fn prefer_probability(&self, a: usize, b: usize, skill: f64) -> f64 {
        let da = self.appeal.get(a).copied().unwrap_or(0.0);
        let db = self.appeal.get(b).copied().unwrap_or(0.0);
        let sharpness = 1.0 + 2.0 * skill.clamp(0.0, 1.0);
        1.0 / (1.0 + (-(da - db) * sharpness).exp())
    }
}

/// Accumulated pairwise outcomes and the Bradley–Terry fit.
#[derive(Debug, Clone)]
pub struct BradleyTerryRanking {
    n: usize,
    /// wins[i][j] = times i was preferred over j (dense; worlds are small).
    wins: Vec<Vec<f64>>,
}

impl BradleyTerryRanking {
    /// Creates an empty tally over `n` images.
    #[must_use]
    pub fn new(n: usize) -> Self {
        BradleyTerryRanking {
            n,
            wins: vec![vec![0.0; n]; n],
        }
    }

    /// Records that `winner` was preferred over `loser`.
    pub fn record(&mut self, winner: usize, loser: usize) {
        if winner < self.n && loser < self.n && winner != loser {
            self.wins[winner][loser] += 1.0;
        }
    }

    /// Total comparisons recorded.
    #[must_use]
    pub fn comparisons(&self) -> f64 {
        self.wins.iter().flatten().sum()
    }

    /// Fits Bradley–Terry strengths by the classic MM algorithm
    /// (Hunter 2004) with light smoothing; returns one strength per image.
    #[must_use]
    pub fn fit(&self, iterations: usize) -> Vec<f64> {
        let n = self.n;
        if n == 0 {
            return Vec::new();
        }
        let mut p = vec![1.0f64; n];
        // Smoothed win/match counts keep the MM update well-defined for
        // images with few comparisons.
        let eps = 0.1;
        for _ in 0..iterations.max(1) {
            let mut next = vec![0.0f64; n];
            for i in 0..n {
                let w_i: f64 = (0..n).map(|j| self.wins[i][j]).sum::<f64>() + eps;
                let mut denom = 0.0;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let n_ij = self.wins[i][j] + self.wins[j][i] + 2.0 * eps / (n as f64 - 1.0);
                    denom += n_ij / (p[i] + p[j]);
                }
                next[i] = if denom > 0.0 { w_i / denom } else { p[i] };
            }
            // Normalize (geometric mean to 1).
            let log_mean: f64 = next.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / n as f64;
            let scale = log_mean.exp();
            for x in &mut next {
                *x /= scale;
            }
            p = next;
        }
        p
    }

    /// Kendall-tau rank correlation between fitted strengths and a truth
    /// vector (1 = identical order, −1 = reversed).
    #[must_use]
    pub fn kendall_tau(fitted: &[f64], truth: &[f64]) -> f64 {
        assert_eq!(fitted.len(), truth.len(), "rank vectors must align");
        let n = fitted.len();
        if n < 2 {
            return 1.0;
        }
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let df = fitted[i] - fitted[j];
                let dt = truth[i] - truth[j];
                let s = df * dt;
                if s > 0.0 {
                    concordant += 1;
                } else if s < 0.0 {
                    discordant += 1;
                }
            }
        }
        let total = (n * (n - 1) / 2) as f64;
        (concordant - discordant) as f64 / total
    }
}

/// Drives one Matchin session, feeding outcomes into `ranking`.
#[allow(clippy::too_many_arguments)]
pub fn play_matchin_session<R: Rng + ?Sized>(
    platform: &mut Platform,
    world: &MatchinWorld,
    population: &mut Population,
    left: PlayerId,
    right: PlayerId,
    session_id: SessionId,
    start: SimTime,
    ranking: &mut BradleyTerryRanking,
    rng: &mut R,
) -> SessionTranscript {
    let cfg = platform.config().session;
    let mut session = Session::new(session_id, [left, right], start, cfg);
    let mut now = start;
    let mut streaks = [0u32; 2];

    while session.can_play_more(now) && world.len() >= 2 {
        // Draw a random image pair.
        let a = rng.gen_range(0..world.len());
        let mut b = rng.gen_range(0..world.len());
        if b == a {
            b = (b + 1) % world.len();
        }
        let (pa, pb) = population
            .get_pair_mut(left, right)
            .expect("players exist and are distinct"); // hc-analyze: allow(P1): callers pass two distinct registered ids
        let mut choices = [0usize; 2];
        let mut duration = SimDuration::ZERO;
        for (idx, profile) in [pa, pb].into_iter().enumerate() {
            let p_prefer_a = match profile.behavior {
                hc_crowd::Behavior::Random
                | hc_crowd::Behavior::Colluder { .. }
                | hc_crowd::Behavior::Spammer { .. } => 0.5,
                _ => world.prefer_probability(a, b, profile.skill),
            };
            choices[idx] = if rng.gen::<f64>() < p_prefer_a { a } else { b };
            duration += profile.response.sample(None, rng);
        }
        let matched = choices[0] == choices[1];
        if matched {
            let winner = choices[0];
            let loser = if winner == a { b } else { a };
            ranking.record(winner, loser);
        }
        let end = now + duration;
        let rule = platform.score_rule();
        let points = [
            rule.round_score(matched, duration.as_secs_f64(), streaks[0]),
            rule.round_score(matched, duration.as_secs_f64(), streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::OutputAgreement,
            task: TaskId::new(a as u64),
            matched,
            candidate_outputs: u32::from(matched),
            duration,
            points,
        });
        now = end + INTER_ROUND_GAP;
    }

    let transcript = session.finish(now);
    platform.record_session(&transcript);
    transcript
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_crowd::{ArchetypeMix, PopulationBuilder};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(909)
    }

    #[test]
    fn preference_probability_tracks_appeal() {
        let mut r = rng();
        let world = MatchinWorld::generate(&WorldConfig::small(), &mut r);
        // Find images with clearly different appeal.
        let (mut hi, mut lo) = (0, 0);
        for i in 0..world.len() {
            if world.appeal(i).unwrap() > world.appeal(hi).unwrap() {
                hi = i;
            }
            if world.appeal(i).unwrap() < world.appeal(lo).unwrap() {
                lo = i;
            }
        }
        assert!(world.prefer_probability(hi, lo, 0.9) > 0.9);
        assert!(world.prefer_probability(lo, hi, 0.9) < 0.1);
        // Skill sharpens the choice.
        assert!(world.prefer_probability(hi, lo, 0.9) > world.prefer_probability(hi, lo, 0.0));
        // Equal images are a coin flip.
        assert!((world.prefer_probability(3, 3, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sessions_accumulate_comparisons() {
        let mut r = rng();
        let world = MatchinWorld::generate(&WorldConfig::small(), &mut r);
        let mut platform = Platform::new(PlatformConfig::default()).unwrap();
        let mut pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .build(&mut r);
        platform.register_player();
        platform.register_player();
        let mut ranking = BradleyTerryRanking::new(world.len());
        let t = play_matchin_session(
            &mut platform,
            &world,
            &mut pop,
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
            &mut ranking,
            &mut r,
        );
        assert!(t.rounds() > 0);
        assert!(ranking.comparisons() > 0.0);
        assert!(t.match_rate() > 0.4, "agreement rate {}", t.match_rate());
    }

    #[test]
    fn bt_fit_recovers_latent_order() {
        let mut r = rng();
        let mut cfg = WorldConfig::small();
        cfg.stimuli = 12;
        let world = MatchinWorld::generate(&cfg, &mut r);
        let mut ranking = BradleyTerryRanking::new(world.len());
        // Simulate many high-skill pairwise outcomes directly.
        for _ in 0..4000 {
            let a = r.gen_range(0..world.len());
            let mut b = r.gen_range(0..world.len());
            if a == b {
                b = (b + 1) % world.len();
            }
            if r.gen::<f64>() < world.prefer_probability(a, b, 0.95) {
                ranking.record(a, b);
            } else {
                ranking.record(b, a);
            }
        }
        let fitted = ranking.fit(60);
        let truth: Vec<f64> = (0..world.len()).map(|i| world.appeal(i).unwrap()).collect();
        let tau = BradleyTerryRanking::kendall_tau(&fitted, &truth);
        assert!(tau > 0.7, "Kendall tau {tau}");
    }

    #[test]
    fn kendall_tau_extremes() {
        assert_eq!(
            BradleyTerryRanking::kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]),
            1.0
        );
        assert_eq!(
            BradleyTerryRanking::kendall_tau(&[3.0, 2.0, 1.0], &[10.0, 20.0, 30.0]),
            -1.0
        );
        assert_eq!(BradleyTerryRanking::kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn kendall_tau_mismatched_lengths_panic() {
        let _ = BradleyTerryRanking::kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn record_rejects_out_of_range_and_self_pairs() {
        let mut b = BradleyTerryRanking::new(3);
        b.record(0, 0);
        b.record(5, 1);
        b.record(1, 5);
        assert_eq!(b.comparisons(), 0.0);
        b.record(2, 1);
        assert_eq!(b.comparisons(), 1.0);
    }

    #[test]
    fn empty_ranking_fit() {
        let b = BradleyTerryRanking::new(0);
        assert!(b.fit(10).is_empty());
    }
}
