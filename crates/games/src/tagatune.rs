//! TagATune — input-agreement audio tagging.
//!
//! Two players each hear a clip that is either the same or different; they
//! exchange free-text descriptions and then vote *same*/*different*.
//! Correct votes validate the descriptions as tags. The mechanism's
//! signature property — the one experiment F8 sweeps — is that verdict
//! accuracy (and thus tag yield) depends on how *confusable* the two
//! clips are: clips with overlapping true-tag supports generate wrong
//! "same" votes.

use crate::world::{BaseWorld, WorldConfig};
use hc_core::prelude::*;
use hc_crowd::Population;
use rand::Rng;

/// Maximum descriptions per seat per round.
const MAX_DESCRIPTIONS: usize = 3;

/// Pause between rounds.
const INTER_ROUND_GAP: SimDuration = SimDuration::from_secs(2);

/// The TagATune clip world.
#[derive(Debug, Clone)]
pub struct TagATuneWorld {
    base: BaseWorld,
}

impl TagATuneWorld {
    /// Generates a world of audio clips.
    pub fn generate<R: Rng + ?Sized>(config: &WorldConfig, rng: &mut R) -> Self {
        TagATuneWorld {
            base: BaseWorld::generate(config, rng),
        }
    }

    /// Number of clips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Registers every clip as a platform task (must run before gold
    /// tasks so ids mirror clip indices).
    pub fn register_tasks(&self, platform: &mut Platform) -> Vec<TaskId> {
        (0..self.base.len())
            .map(|i| platform.add_task(Stimulus::AudioClip(i as u64)))
            .collect()
    }

    /// Ground truth tags of a clip task.
    #[must_use]
    pub fn truth_for_task(&self, task: TaskId) -> Option<&hc_crowd::LabelDistribution> {
        self.base.truth(task.raw() as usize)
    }

    /// Whether `label` truly describes the clip behind `task`.
    #[must_use]
    pub fn is_correct(&self, task: TaskId, label: &Label) -> bool {
        self.base.is_correct(task.raw() as usize, label)
    }

    /// The shared vocabulary.
    #[must_use]
    pub fn vocabulary(&self) -> &hc_crowd::Vocabulary {
        &self.base.vocabulary
    }

    /// Calibrated same-probability an attentive listener would assign,
    /// given their own clip truth and the partner's descriptions: the
    /// fraction of partner labels that are true of *their own* clip,
    /// squashed away from certainty.
    #[must_use]
    pub fn same_evidence(own: &hc_crowd::LabelDistribution, partner_descriptions: &[Label]) -> f64 {
        if partner_descriptions.is_empty() {
            return 0.5; // no information
        }
        let matches = partner_descriptions
            .iter()
            .filter(|l| own.contains(l))
            .count();
        let frac = matches as f64 / partner_descriptions.len() as f64;
        0.08 + 0.84 * frac
    }
}

/// Drives one TagATune session; on each round the pair gets the same clip
/// with probability `p_same_round` (0.5 in the deployed game).
#[allow(clippy::too_many_arguments)]
pub fn play_tagatune_session<R: Rng + ?Sized>(
    platform: &mut Platform,
    world: &TagATuneWorld,
    population: &mut Population,
    left: PlayerId,
    right: PlayerId,
    session_id: SessionId,
    start: SimTime,
    p_same_round: f64,
    rng: &mut R,
) -> SessionTranscript {
    let cfg = platform.config().session;
    let mut session = Session::new(session_id, [left, right], start, cfg);
    let mut now = start;
    let mut streaks = [0u32; 2];

    while session.can_play_more(now) {
        let Some(left_task) = platform.next_task_for(&[left, right], rng) else {
            break;
        };
        let same = rng.gen::<f64>() < p_same_round.clamp(0.0, 1.0);
        let right_task = if same {
            left_task
        } else {
            // Draw a distinct random clip for the right seat.
            let mut other = TaskId::new(rng.gen_range(0..world.len() as u64));
            if other == left_task {
                other = TaskId::new((other.raw() + 1) % world.len() as u64);
            }
            other
        };
        platform.record_served(left_task, &[left, right]);
        let (Some(truth_l), Some(truth_r)) = (
            world.truth_for_task(left_task),
            world.truth_for_task(right_task),
        ) else {
            break;
        };

        let mut round = InputAgreementRound::new(left_task, right_task, cfg.round_time_limit);
        let deadline = now + cfg.round_time_limit;
        let (pa, pb) = population
            .get_pair_mut(left, right)
            .expect("players exist and are distinct"); // hc-analyze: allow(P1): callers pass two distinct registered ids
        let mut profiles = [pa, pb];
        let truths = [truth_l, truth_r];
        let mut cursor = now;
        let empty_taboo = TabooList::new();

        // Description phase: seats alternate up to MAX_DESCRIPTIONS each.
        'desc: for turn in 0..(2 * MAX_DESCRIPTIONS) {
            let seat_idx = turn % 2;
            let profile = &mut profiles[seat_idx];
            let answer = profile.behavior.next_answer(
                truths[seat_idx],
                &world.base.vocabulary,
                &empty_taboo,
                rng,
            );
            let latency = profile.response.sample(
                match &answer {
                    Answer::Text(l) => Some(l),
                    _ => None,
                },
                rng,
            );
            cursor += latency;
            if cursor > deadline {
                break 'desc;
            }
            let seat = if seat_idx == 0 {
                Seat::Left
            } else {
                Seat::Right
            };
            if round.submit(seat, answer, cursor).is_terminal() {
                break 'desc;
            }
        }

        // Verdict phase.
        for seat_idx in 0..2 {
            let seat = if seat_idx == 0 {
                Seat::Left
            } else {
                Seat::Right
            };
            let evidence =
                TagATuneWorld::same_evidence(truths[seat_idx], round.partner_descriptions(seat));
            let profile = &mut profiles[seat_idx];
            let verdict = profile.behavior.verdict(evidence, profile.skill, rng);
            let latency = profile.response.sample(None, rng);
            cursor += latency;
            if cursor > deadline {
                break;
            }
            round.submit(seat, verdict, cursor);
        }

        let end = cursor.min(deadline);
        let result = round.finish(end);
        let matched = result.succeeded;
        let tags = result.validated_tags();
        let n_tags = tags.len() as u32;
        for (task, tag) in tags {
            // Validated tags flow through the same verification pipeline.
            let _ = platform.ingest_agreement(task, tag, left, right);
        }
        let duration = end.saturating_since(now);
        let rule = platform.score_rule();
        let points = [
            rule.round_score(matched, duration.as_secs_f64(), streaks[0]),
            rule.round_score(matched, duration.as_secs_f64(), streaks[1]),
        ];
        for s in &mut streaks {
            *s = if matched { *s + 1 } else { 0 };
        }
        session.record_round(RoundRecord {
            template: TemplateKind::InputAgreement,
            task: left_task,
            matched,
            candidate_outputs: n_tags,
            duration,
            points,
        });
        now = end + INTER_ROUND_GAP;
    }

    let transcript = session.finish(now);
    platform.record_session(&transcript);
    if hc_obs::active() {
        hc_obs::span(
            "games",
            "tagatune.session",
            start.ticks(),
            transcript.ended.ticks(),
            &[
                ("rounds", transcript.rounds().into()),
                ("matched", transcript.matched_count().into()),
            ],
        );
    }
    transcript
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_crowd::{ArchetypeMix, PopulationBuilder};
    use rand::SeedableRng;

    fn setup() -> (Platform, TagATuneWorld, Population, rand::rngs::StdRng) {
        let mut r = rand::rngs::StdRng::seed_from_u64(606);
        let world = TagATuneWorld::generate(&WorldConfig::small(), &mut r);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .unwrap();
        world.register_tasks(&mut platform);
        let pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .skill_range(0.9, 0.99)
            .build(&mut r);
        platform.register_player();
        platform.register_player();
        (platform, world, pop, r)
    }

    #[test]
    fn honest_skilled_pairs_mostly_vote_correctly() {
        let (mut platform, world, mut pop, mut r) = setup();
        let mut matched = 0;
        let mut rounds = 0;
        for s in 0..8 {
            let t = play_tagatune_session(
                &mut platform,
                &world,
                &mut pop,
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(s),
                SimTime::from_secs(s * 1000),
                0.5,
                &mut r,
            );
            matched += t.matched_count();
            rounds += t.rounds();
        }
        assert!(rounds > 0);
        let rate = matched as f64 / rounds as f64;
        assert!(rate > 0.6, "verdict success rate {rate}");
    }

    #[test]
    fn validated_tags_are_true_of_their_clips() {
        let (mut platform, world, mut pop, mut r) = setup();
        for s in 0..5 {
            play_tagatune_session(
                &mut platform,
                &world,
                &mut pop,
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(s),
                SimTime::from_secs(s * 1000),
                0.5,
                &mut r,
            );
        }
        let verified = platform.verified_labels();
        assert!(!verified.is_empty(), "no tags were validated");
        let correct = verified
            .iter()
            .filter(|v| world.is_correct(v.task, &v.label))
            .count();
        // Honest players only describe truthfully; every validated tag is
        // correct.
        assert_eq!(correct, verified.len());
    }

    #[test]
    fn same_evidence_tracks_overlap() {
        let own =
            hc_crowd::LabelDistribution::uniform(vec![Label::new("piano"), Label::new("slow")])
                .unwrap();
        let e_none = TagATuneWorld::same_evidence(&own, &[]);
        assert!((e_none - 0.5).abs() < 1e-12);
        let e_hit = TagATuneWorld::same_evidence(&own, &[Label::new("piano")]);
        assert!(e_hit > 0.9);
        let e_miss = TagATuneWorld::same_evidence(&own, &[Label::new("drums")]);
        assert!(e_miss < 0.1);
        let e_half =
            TagATuneWorld::same_evidence(&own, &[Label::new("piano"), Label::new("drums")]);
        assert!((e_half - 0.5).abs() < 0.01);
    }

    #[test]
    fn different_rounds_use_distinct_tasks() {
        let (mut platform, world, mut pop, mut r) = setup();
        // p_same_round = 0: every round is a "different" round.
        let t = play_tagatune_session(
            &mut platform,
            &world,
            &mut pop,
            PlayerId::new(0),
            PlayerId::new(1),
            SessionId::new(0),
            SimTime::ZERO,
            0.0,
            &mut r,
        );
        assert!(t.rounds() > 0);
    }

    #[test]
    fn world_accessors() {
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        let world = TagATuneWorld::generate(&WorldConfig::small(), &mut r);
        assert_eq!(world.len(), 50);
        assert!(!world.is_empty());
        assert!(world.truth_for_task(TaskId::new(0)).is_some());
        assert!(world.truth_for_task(TaskId::new(999)).is_none());
        assert!(!world.vocabulary().is_empty());
    }
}
