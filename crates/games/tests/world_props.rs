//! Property tests over the game worlds: the synthetic ground truth every
//! experiment scores against must itself be well-formed for all shapes.

use hc_core::{Label, TaskId};
use hc_games::verbosity::{fact_label, parse_fact, Relation};
use hc_games::{
    world::{BaseWorld, WorldConfig},
    EspWorld, MatchinWorld, PeekaboomWorld, SquiglWorld, TagATuneWorld, VerbosityWorld,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn config(stimuli: usize, vocab: usize, cmin: usize, cmax: usize) -> WorldConfig {
    WorldConfig {
        stimuli,
        vocabulary: vocab,
        zipf_exponent: 1.0,
        concepts_min: cmin,
        concepts_max: cmax,
        weight_decay: 0.55,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn base_world_truths_are_normalized_distributions(
        stimuli in 1usize..40,
        vocab in 20usize..200,
        seed in 0u64..100,
    ) {
        let cfg = config(stimuli, vocab, 2, 5.min(vocab));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let world = BaseWorld::generate(&cfg, &mut rng);
        prop_assert_eq!(world.len(), stimuli);
        for truth in &world.truths {
            let total: f64 = truth.labels().iter().map(|l| truth.pmf_of(l)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!((2..=5).contains(&truth.len()));
            // The oracle accepts exactly the support.
            for l in truth.labels() {
                prop_assert!(truth.contains(l));
            }
            prop_assert!(!truth.contains(&Label::new("zz-not-a-word")));
        }
    }

    #[test]
    fn esp_world_task_mapping_is_total(seed in 0u64..50) {
        let cfg = config(25, 100, 2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let world = EspWorld::generate(&cfg, &mut rng);
        for i in 0..world.len() {
            let task = TaskId::new(i as u64);
            let truth = world.truth_for_task(task).expect("in-range task");
            prop_assert!(world.is_correct(task, truth.top()));
        }
        prop_assert!(world.truth_for_task(TaskId::new(world.len() as u64)).is_none());
    }

    #[test]
    fn verbosity_candidates_sharpen_monotonically(
        seed in 0u64..50,
        h1 in 1usize..8,
        h2 in 1usize..8,
    ) {
        let cfg = config(10, 100, 2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let world = VerbosityWorld::generate(&cfg, &mut rng);
        let task = TaskId::new(0);
        let secret = world.secret_for_task(task).unwrap().clone();
        let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        let p_lo = world.guess_candidates(task, lo, 5).unwrap().pmf_of(&secret);
        let p_hi = world.guess_candidates(task, hi, 5).unwrap().pmf_of(&secret);
        prop_assert!(p_lo <= p_hi + 1e-12);
    }

    #[test]
    fn verbosity_fact_labels_always_parse(obj in "[a-z]{1,10}( [a-z]{1,6})?") {
        for relation in Relation::ALL {
            let label = Label::new(&obj);
            prop_assume!(!label.is_empty());
            let fact = fact_label(relation, &label);
            let (r, o) = parse_fact(&fact).expect("round trip");
            prop_assert_eq!(r, relation);
            prop_assert_eq!(o, label);
        }
    }

    #[test]
    fn spatial_world_objects_fit_their_canvases(seed in 0u64..50) {
        let cfg = config(30, 100, 2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let peek = PeekaboomWorld::generate(&cfg, &mut rng);
        for i in 0..peek.len() {
            let o = peek.object_for_task(TaskId::new(i as u64)).unwrap();
            prop_assert!(o.bbox.x + o.bbox.w <= hc_games::peekaboom::CANVAS_W);
            prop_assert!(o.bbox.y + o.bbox.h <= hc_games::peekaboom::CANVAS_H);
            prop_assert!(o.bbox.area() > 0);
        }
        let squigl = SquiglWorld::generate(&cfg, &mut rng);
        for i in 0..squigl.len() {
            let o = squigl.object_for_task(TaskId::new(i as u64)).unwrap();
            prop_assert!(o.bbox.x + o.bbox.w <= hc_games::squigl::CANVAS_W);
            prop_assert!(o.bbox.y + o.bbox.h <= hc_games::squigl::CANVAS_H);
        }
    }

    #[test]
    fn matchin_preferences_are_complementary(
        seed in 0u64..50,
        a in 0usize..20,
        b in 0usize..20,
        skill in 0.0f64..1.0,
    ) {
        let cfg = config(20, 100, 2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let world = MatchinWorld::generate(&cfg, &mut rng);
        let p_ab = world.prefer_probability(a, b, skill);
        let p_ba = world.prefer_probability(b, a, skill);
        prop_assert!((p_ab + p_ba - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p_ab));
    }

    #[test]
    fn tagatune_same_evidence_is_bounded(
        seed in 0u64..50,
        i in 0usize..20,
        j in 0usize..20,
    ) {
        let cfg = config(20, 100, 2, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let world = TagATuneWorld::generate(&cfg, &mut rng);
        let own = world.truth_for_task(TaskId::new(i as u64)).unwrap();
        let partner = world.truth_for_task(TaskId::new(j as u64)).unwrap();
        let e = TagATuneWorld::same_evidence(own, partner.labels());
        prop_assert!((0.0..=1.0).contains(&e));
        // Evidence from one's own clip truths is maximal.
        let self_e = TagATuneWorld::same_evidence(own, own.labels());
        prop_assert!(self_e >= e - 1e-12);
    }
}
