//! The three GWAP templates.
//!
//! The paper distills every deployed game with a purpose into three
//! **templates** — reusable round structures with proven correctness
//! properties:
//!
//! | Template | Canonical game | Round shape | Verified output |
//! |---|---|---|---|
//! | [output-agreement](output_agreement) | ESP Game | both seats see the *same* input, score on matching outputs | the matched label |
//! | [input-agreement](input_agreement) | TagATune | seats see same-or-different inputs, describe them, and vote | descriptions from correct rounds |
//! | [inversion-problem](inversion) | Verbosity, Peekaboom | one seat describes a secret, the other must reproduce it | the hints that enabled a correct guess |
//!
//! Each template is an explicit state machine: `submit` feeds one seat's
//! [`Answer`](crate::Answer) with a timestamp, returns a [`SubmitOutcome`],
//! and `finish` yields the template-specific result. Timeouts are enforced
//! by timestamps — a DES-friendly design with no wall clocks anywhere.

pub mod input_agreement;
pub mod inversion;
pub mod output_agreement;

use serde::{Deserialize, Serialize};

/// Which of the two positions in a round a submission comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Seat {
    /// The first seat (describer in inversion games).
    Left,
    /// The second seat (guesser in inversion games).
    Right,
}

impl Seat {
    /// The opposite seat.
    #[must_use]
    pub const fn other(self) -> Seat {
        match self {
            Seat::Left => Seat::Right,
            Seat::Right => Seat::Left,
        }
    }

    /// Both seats, left first.
    #[must_use]
    pub const fn both() -> [Seat; 2] {
        [Seat::Left, Seat::Right]
    }

    /// Index 0 for left, 1 for right — for seat-indexed arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Seat::Left => 0,
            Seat::Right => 1,
        }
    }
}

/// What happened to one submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SubmitOutcome {
    /// Recorded; the round continues.
    Accepted,
    /// The submission completed the round with an agreement — the payload
    /// is the agreed label where applicable.
    Matched(Option<crate::answer::Label>),
    /// Rejected: the label is on the task's taboo list.
    TabooViolation,
    /// Rejected: this answer kind does not fit the template.
    WrongKind,
    /// Rejected: the round had already ended (timeout, match, or passes).
    RoundOver,
    /// Both seats have now passed; the round ends without output.
    BothPassed,
}

impl SubmitOutcome {
    /// `true` for outcomes that terminate the round.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, SubmitOutcome::Matched(_) | SubmitOutcome::BothPassed)
    }
}

/// Which template a round/record belongs to — used by transcripts and
/// metrics, which are template-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateKind {
    /// ESP-style output agreement.
    OutputAgreement,
    /// TagATune-style input agreement.
    InputAgreement,
    /// Verbosity/Peekaboom-style inversion problem.
    InversionProblem,
}

impl std::fmt::Display for TemplateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TemplateKind::OutputAgreement => "output-agreement",
            TemplateKind::InputAgreement => "input-agreement",
            TemplateKind::InversionProblem => "inversion-problem",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seat_other_is_involutive() {
        assert_eq!(Seat::Left.other(), Seat::Right);
        assert_eq!(Seat::Right.other(), Seat::Left);
        assert_eq!(Seat::Left.other().other(), Seat::Left);
        assert_eq!(Seat::both(), [Seat::Left, Seat::Right]);
        assert_eq!(Seat::Left.index(), 0);
        assert_eq!(Seat::Right.index(), 1);
    }

    #[test]
    fn terminal_outcomes() {
        assert!(SubmitOutcome::Matched(None).is_terminal());
        assert!(SubmitOutcome::BothPassed.is_terminal());
        assert!(!SubmitOutcome::Accepted.is_terminal());
        assert!(!SubmitOutcome::TabooViolation.is_terminal());
        assert!(!SubmitOutcome::RoundOver.is_terminal());
        assert!(!SubmitOutcome::WrongKind.is_terminal());
    }

    #[test]
    fn template_kind_display() {
        assert_eq!(
            TemplateKind::OutputAgreement.to_string(),
            "output-agreement"
        );
        assert_eq!(TemplateKind::InputAgreement.to_string(), "input-agreement");
        assert_eq!(
            TemplateKind::InversionProblem.to_string(),
            "inversion-problem"
        );
    }
}
