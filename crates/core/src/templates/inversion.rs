//! The inversion-problem template (Verbosity, Peekaboom).
//!
//! One seat — the **describer** — holds a secret input; the other — the
//! **guesser** — must reproduce it from the describer's hints. A correct
//! guess proves the hints carried enough information about the secret, so
//! each hint becomes a validated `(secret, hint)` fact. In Verbosity the
//! hints are templated commonsense clues ("it contains ___"); in Peekaboom
//! the "hints" are revealed image regions and the validated output is the
//! region covering the object.
//!
//! Roles alternate between rounds in the deployed games; the
//! [`Session`](crate::session::Session) engine handles alternation.

use crate::answer::{Answer, Label, Region};
use crate::id::TaskId;
use crate::templates::{Seat, SubmitOutcome};
use hc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which role a seat plays in an inversion round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Holds the secret and sends hints.
    Describer,
    /// Sees only hints and submits guesses.
    Guesser,
}

/// A hint sent by the describer: either a free-text clue or a revealed
/// region (Peekaboom).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Hint {
    /// A textual clue (Verbosity sentence-template fill).
    Clue(Label),
    /// A revealed rectangular region of the stimulus (Peekaboom).
    Reveal(Region),
}

/// Terminal summary of an inversion round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InversionResult {
    /// The task the secret belongs to.
    pub task: TaskId,
    /// The secret the guesser had to reproduce.
    pub secret: Label,
    /// Whether the guesser succeeded.
    pub guessed: bool,
    /// Hints sent before the correct guess (all hints if never guessed).
    pub hints: Vec<Hint>,
    /// Distinct guesses attempted (normalized, in order).
    pub guesses: Vec<Label>,
    /// `true` if the round ended by timeout.
    pub timed_out: bool,
    /// `true` if the round ended because both seats passed.
    pub both_passed: bool,
    /// Wall time consumed.
    pub duration: SimDuration,
}

impl InversionResult {
    /// Facts validated by this round: `(secret, clue)` pairs from textual
    /// hints, empty unless the guess succeeded.
    #[must_use]
    pub fn validated_facts(&self) -> Vec<(Label, Label)> {
        if !self.guessed {
            return Vec::new();
        }
        self.hints
            .iter()
            .filter_map(|h| match h {
                Hint::Clue(c) => Some((self.secret.clone(), c.clone())),
                Hint::Reveal(_) => None,
            })
            .collect()
    }

    /// The union bounding region of all reveals, if the round succeeded and
    /// any region hints were sent (Peekaboom's verified object location).
    #[must_use]
    pub fn revealed_region(&self) -> Option<Region> {
        if !self.guessed {
            return None;
        }
        let mut regions = self.hints.iter().filter_map(|h| match h {
            Hint::Reveal(r) => Some(*r),
            Hint::Clue(_) => None,
        });
        let first = regions.next()?;
        Some(regions.fold(first, |acc, r| {
            let x1 = acc.x.min(r.x);
            let y1 = acc.y.min(r.y);
            let x2 = (acc.x + acc.w).max(r.x + r.w);
            let y2 = (acc.y + acc.h).max(r.y + r.h);
            Region::new(x1, y1, x2 - x1, y2 - y1)
        }))
    }
}

/// A live inversion round. The left seat is always the describer; callers
/// that alternate roles swap which *player* sits left.
///
/// # Examples
///
/// ```
/// use hc_core::prelude::*;
///
/// let mut round = InversionRound::new(
///     TaskId::new(3),
///     Label::new("milk"),
///     SimDuration::from_secs(120),
/// );
/// let t = SimTime::ZERO;
/// round.submit(Seat::Left, Answer::text("it is white"), t);
/// round.submit(Seat::Right, Answer::text("snow"), t); // wrong guess
/// let out = round.submit(Seat::Right, Answer::text("milk"), t);
/// assert!(matches!(out, SubmitOutcome::Matched(Some(_))));
/// let res = round.finish(t);
/// assert_eq!(res.validated_facts().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct InversionRound {
    task: TaskId,
    secret: Label,
    deadline: SimTime,
    started: SimTime,
    started_set: bool,
    time_limit: SimDuration,
    hints: Vec<Hint>,
    guesses: Vec<Label>,
    guessed: bool,
    passed: [bool; 2],
    over: bool,
    ended_at: SimTime,
}

impl InversionRound {
    /// Starts a round: the describer (left seat) must get the guesser to
    /// say `secret`. The clock starts at the first submission.
    #[must_use]
    pub fn new(task: TaskId, secret: Label, time_limit: SimDuration) -> Self {
        InversionRound {
            task,
            secret,
            deadline: SimTime::MAX,
            started: SimTime::ZERO,
            started_set: false,
            time_limit,
            hints: Vec::new(),
            guesses: Vec::new(),
            guessed: false,
            passed: [false, false],
            over: false,
            ended_at: SimTime::ZERO,
        }
    }

    /// The role of a seat in this round.
    #[must_use]
    pub fn role_of(&self, seat: Seat) -> Role {
        match seat {
            Seat::Left => Role::Describer,
            Seat::Right => Role::Guesser,
        }
    }

    /// Hints sent so far (what the guesser sees).
    #[must_use]
    pub fn hints(&self) -> &[Hint] {
        &self.hints
    }

    /// `true` once the round has terminated.
    #[must_use]
    pub fn is_over(&self) -> bool {
        self.over
    }

    /// Feeds one submission.
    ///
    /// * Describer text/region answers become hints — but a textual hint
    ///   that *contains the secret itself* is rejected as
    ///   [`SubmitOutcome::TabooViolation`] (the deployed games block the
    ///   describer from just telling the answer).
    /// * Guesser text answers are guesses; matching the secret terminates
    ///   the round.
    /// * Both seats passing abandons the round.
    pub fn submit(&mut self, seat: Seat, answer: Answer, at: SimTime) -> SubmitOutcome {
        if self.over {
            return SubmitOutcome::RoundOver;
        }
        if !self.started_set {
            self.started = at;
            self.started_set = true;
            self.deadline = at + self.time_limit;
        }
        if at > self.deadline {
            self.over = true;
            self.ended_at = self.deadline;
            return SubmitOutcome::RoundOver;
        }
        match (self.role_of(seat), answer) {
            (_, Answer::Pass) => {
                self.passed[seat.index()] = true;
                if self.passed[0] && self.passed[1] {
                    self.over = true;
                    self.ended_at = at;
                    SubmitOutcome::BothPassed
                } else {
                    SubmitOutcome::Accepted
                }
            }
            (Role::Describer, Answer::Text(clue)) => {
                if clue.is_empty() {
                    return SubmitOutcome::Accepted;
                }
                // Block hints that leak the secret verbatim.
                if clue == self.secret
                    || clue.as_str().split(' ').any(|w| w == self.secret.as_str())
                {
                    return SubmitOutcome::TabooViolation;
                }
                self.passed[seat.index()] = false;
                self.hints.push(Hint::Clue(clue));
                SubmitOutcome::Accepted
            }
            (Role::Describer, Answer::Region(r)) => {
                self.passed[seat.index()] = false;
                self.hints.push(Hint::Reveal(r));
                SubmitOutcome::Accepted
            }
            (Role::Guesser, Answer::Text(guess)) => {
                if guess.is_empty() {
                    return SubmitOutcome::Accepted;
                }
                self.passed[seat.index()] = false;
                if !self.guesses.contains(&guess) {
                    self.guesses.push(guess.clone());
                }
                if guess == self.secret {
                    self.guessed = true;
                    self.over = true;
                    self.ended_at = at;
                    SubmitOutcome::Matched(Some(guess))
                } else {
                    SubmitOutcome::Accepted
                }
            }
            _ => SubmitOutcome::WrongKind,
        }
    }

    /// Closes the round at `now` and returns its result.
    pub fn finish(&mut self, now: SimTime) -> InversionResult {
        if !self.over {
            self.over = true;
            self.ended_at = now.min(self.deadline);
        }
        let start = if self.started_set {
            self.started
        } else {
            self.ended_at
        };
        let both_passed = self.passed[0] && self.passed[1];
        InversionResult {
            task: self.task,
            secret: self.secret.clone(),
            guessed: self.guessed,
            hints: self.hints.clone(),
            guesses: self.guesses.clone(),
            timed_out: !self.guessed && !both_passed,
            both_passed,
            duration: self.ended_at.saturating_since(start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn round(secret: &str) -> InversionRound {
        InversionRound::new(
            TaskId::new(1),
            Label::new(secret),
            SimDuration::from_secs(120),
        )
    }

    #[test]
    fn correct_guess_validates_facts() {
        let mut r = round("milk");
        r.submit(Seat::Left, Answer::text("it is white"), t(0));
        r.submit(Seat::Left, Answer::text("you drink it"), t(5));
        r.submit(Seat::Right, Answer::text("water"), t(8));
        let out = r.submit(Seat::Right, Answer::text("Milk"), t(10));
        assert_eq!(out, SubmitOutcome::Matched(Some(Label::new("milk"))));
        let res = r.finish(t(10));
        assert!(res.guessed);
        assert_eq!(res.validated_facts().len(), 2);
        assert_eq!(
            res.validated_facts()[0],
            (Label::new("milk"), Label::new("it is white"))
        );
        assert_eq!(res.guesses.len(), 2);
        assert_eq!(res.duration, SimDuration::from_secs(10));
    }

    #[test]
    fn describer_cannot_leak_the_secret() {
        let mut r = round("milk");
        assert_eq!(
            r.submit(Seat::Left, Answer::text("milk"), t(0)),
            SubmitOutcome::TabooViolation
        );
        assert_eq!(
            r.submit(Seat::Left, Answer::text("it is milk obviously"), t(0)),
            SubmitOutcome::TabooViolation
        );
        // A non-leaking hint is fine.
        assert_eq!(
            r.submit(Seat::Left, Answer::text("cows make it"), t(0)),
            SubmitOutcome::Accepted
        );
    }

    #[test]
    fn failed_round_validates_nothing() {
        let mut r = round("milk");
        r.submit(Seat::Left, Answer::text("white"), t(0));
        r.submit(Seat::Right, Answer::text("snow"), t(1));
        let res = r.finish(t(130)); // past deadline
        assert!(!res.guessed);
        assert!(res.timed_out);
        assert!(res.validated_facts().is_empty());
        assert!(res.revealed_region().is_none());
    }

    #[test]
    fn region_hints_union_into_object_location() {
        let mut r = round("car");
        r.submit(
            Seat::Left,
            Answer::Region(Region::new(10, 10, 20, 20)),
            t(0),
        );
        r.submit(Seat::Left, Answer::Region(Region::new(25, 5, 10, 10)), t(1));
        r.submit(Seat::Right, Answer::text("car"), t(2));
        let res = r.finish(t(2));
        assert_eq!(res.revealed_region(), Some(Region::new(10, 5, 25, 25)));
        assert!(
            res.validated_facts().is_empty(),
            "regions are not text facts"
        );
    }

    #[test]
    fn guesser_cannot_send_regions() {
        let mut r = round("car");
        assert_eq!(
            r.submit(Seat::Right, Answer::Region(Region::new(0, 0, 1, 1)), t(0)),
            SubmitOutcome::WrongKind
        );
    }

    #[test]
    fn both_pass_abandons() {
        let mut r = round("zebra");
        r.submit(Seat::Left, Answer::Pass, t(0));
        assert_eq!(
            r.submit(Seat::Right, Answer::Pass, t(1)),
            SubmitOutcome::BothPassed
        );
        let res = r.finish(t(1));
        assert!(res.both_passed);
        assert!(!res.timed_out);
    }

    #[test]
    fn activity_revokes_pass() {
        let mut r = round("zebra");
        r.submit(Seat::Left, Answer::Pass, t(0));
        r.submit(Seat::Left, Answer::text("striped animal"), t(1));
        assert_eq!(
            r.submit(Seat::Right, Answer::Pass, t(2)),
            SubmitOutcome::Accepted
        );
        assert!(!r.is_over());
    }

    #[test]
    fn timeout_and_post_match_rejection() {
        let mut r = round("sun");
        r.submit(Seat::Left, Answer::text("bright"), t(0));
        assert_eq!(
            r.submit(Seat::Right, Answer::text("sun"), t(121)),
            SubmitOutcome::RoundOver
        );
        let mut r2 = round("sun");
        r2.submit(Seat::Right, Answer::text("sun"), t(0));
        assert_eq!(
            r2.submit(Seat::Left, Answer::text("late hint"), t(1)),
            SubmitOutcome::RoundOver
        );
    }

    #[test]
    fn duplicate_guesses_are_deduped() {
        let mut r = round("apple");
        r.submit(Seat::Right, Answer::text("pear"), t(0));
        r.submit(Seat::Right, Answer::text("PEAR"), t(1));
        let res = r.finish(t(2));
        assert_eq!(res.guesses, vec![Label::new("pear")]);
    }

    #[test]
    fn roles_are_fixed_by_seat() {
        let r = round("x");
        assert_eq!(r.role_of(Seat::Left), Role::Describer);
        assert_eq!(r.role_of(Seat::Right), Role::Guesser);
    }

    #[test]
    fn hints_visible_to_guesser() {
        let mut r = round("sky");
        r.submit(Seat::Left, Answer::text("it is blue"), t(0));
        assert_eq!(r.hints().len(), 1);
    }
}
