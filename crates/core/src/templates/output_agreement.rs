//! The output-agreement template (ESP Game).
//!
//! Two randomly-paired partners see the **same** input and independently
//! type outputs; the round completes the moment any output of one seat
//! matches any output of the other (after normalization). Because partners
//! cannot communicate, an agreed output is very likely a *correct*
//! description of the input — agreement **is** the verification.
//!
//! Two refinements from the deployed ESP Game are included:
//!
//! * **Taboo words** — labels already verified for this task are rejected,
//!   forcing each new pair to produce novel labels and deepening coverage.
//! * **Passing** — both seats passing ends the round without output, so a
//!   hopeless input doesn't burn the clock.

use crate::answer::{Answer, Label};
use crate::id::TaskId;
use crate::templates::{Seat, SubmitOutcome};
use crate::verify::TabooList;
use hc_collect::DetSet;
use hc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The terminal summary of an output-agreement round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputAgreementResult {
    /// The task the round played.
    pub task: TaskId,
    /// The agreed label, if the seats matched.
    pub agreed_label: Option<Label>,
    /// All distinct labels guessed by each seat (normalized), including the
    /// agreed one — useful for off-path analysis.
    pub guesses: [Vec<Label>; 2],
    /// Number of guesses rejected for taboo violations.
    pub taboo_rejections: u32,
    /// `true` if the round ended because both seats passed.
    pub both_passed: bool,
    /// `true` if the round ended by timeout.
    pub timed_out: bool,
    /// Wall time the round consumed.
    pub duration: SimDuration,
}

impl OutputAgreementResult {
    /// `true` when the round produced a verified output.
    #[must_use]
    pub fn is_match(&self) -> bool {
        self.agreed_label.is_some()
    }
}

/// A live output-agreement round.
///
/// # Examples
///
/// ```
/// use hc_core::prelude::*;
///
/// let mut round = OutputAgreementRound::new(
///     TaskId::new(7),
///     TabooList::from_labels([Label::new("dog")]),
///     SimDuration::from_secs(150),
/// );
/// let t = SimTime::ZERO;
/// // "dog" is taboo for this task.
/// assert_eq!(round.submit(Seat::Left, Answer::text("dog"), t), SubmitOutcome::TabooViolation);
/// round.submit(Seat::Left, Answer::text("puppy"), t);
/// let out = round.submit(Seat::Right, Answer::text("puppies"), t);
/// assert!(matches!(out, SubmitOutcome::Matched(Some(_))));
/// ```
#[derive(Debug, Clone)]
pub struct OutputAgreementRound {
    task: TaskId,
    taboo: TabooList,
    deadline: SimTime,
    started: SimTime,
    started_set: bool,
    guesses: [Vec<Label>; 2],
    // Per-round guess membership: insert + cross-seat `contains` on every
    // guess, never iterated.
    guess_sets: [DetSet<Label>; 2],
    passed: [bool; 2],
    taboo_rejections: u32,
    agreed: Option<Label>,
    over: bool,
    time_limit: SimDuration,
    ended_at: SimTime,
}

impl OutputAgreementRound {
    /// Starts a round on `task` with the given taboo list and time limit.
    /// The clock starts at the first submission.
    #[must_use]
    pub fn new(task: TaskId, taboo: TabooList, time_limit: SimDuration) -> Self {
        Self::with_guess_capacity(task, taboo, time_limit, 0)
    }

    /// Like [`Self::new`], but pre-sizes the per-seat guess vectors and
    /// membership sets for `per_seat` expected guesses, so a round played
    /// inside a hot loop never reallocates mid-round.
    #[must_use]
    pub fn with_guess_capacity(
        task: TaskId,
        taboo: TabooList,
        time_limit: SimDuration,
        per_seat: usize,
    ) -> Self {
        OutputAgreementRound {
            task,
            taboo,
            deadline: SimTime::MAX,
            started: SimTime::ZERO,
            started_set: false,
            guesses: [Vec::with_capacity(per_seat), Vec::with_capacity(per_seat)],
            guess_sets: [
                DetSet::with_capacity(per_seat),
                DetSet::with_capacity(per_seat),
            ],
            passed: [false, false],
            taboo_rejections: 0,
            agreed: None,
            over: false,
            time_limit,
            ended_at: SimTime::ZERO,
        }
    }

    /// The task this round serves.
    #[must_use]
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The taboo list in force for this round.
    #[must_use]
    pub fn taboo(&self) -> &TabooList {
        &self.taboo
    }

    /// `true` once the round has terminated (match, both-pass, or timeout
    /// observed by a late submission or [`Self::finish`]).
    #[must_use]
    pub fn is_over(&self) -> bool {
        self.over
    }

    /// Feeds one submission. Text answers are matched against the partner's
    /// guesses; [`Answer::Pass`] registers a pass; other kinds are rejected.
    pub fn submit(&mut self, seat: Seat, answer: Answer, at: SimTime) -> SubmitOutcome {
        if self.over {
            return SubmitOutcome::RoundOver;
        }
        if !self.started_set {
            self.started = at;
            self.started_set = true;
            self.deadline = at + self.time_limit;
        }
        if at > self.deadline {
            self.over = true;
            self.ended_at = self.deadline;
            return SubmitOutcome::RoundOver;
        }
        match answer {
            Answer::Pass => {
                self.passed[seat.index()] = true;
                if self.passed[0] && self.passed[1] {
                    self.over = true;
                    self.ended_at = at;
                    SubmitOutcome::BothPassed
                } else {
                    SubmitOutcome::Accepted
                }
            }
            Answer::Text(label) => {
                if label.is_empty() {
                    return SubmitOutcome::Accepted; // normalized to nothing; ignore
                }
                if self.taboo.contains(&label) {
                    self.taboo_rejections += 1;
                    return SubmitOutcome::TabooViolation;
                }
                // A new guess un-passes the seat (players may pass then
                // reconsider, as in the deployed game).
                self.passed[seat.index()] = false;
                let idx = seat.index();
                if self.guess_sets[idx].insert(label.clone()) {
                    self.guesses[idx].push(label.clone());
                }
                let partner = seat.other().index();
                if self.guess_sets[partner].contains(&label) {
                    self.agreed = Some(label.clone());
                    self.over = true;
                    self.ended_at = at;
                    SubmitOutcome::Matched(Some(label))
                } else {
                    SubmitOutcome::Accepted
                }
            }
            _ => SubmitOutcome::WrongKind,
        }
    }

    /// Closes the round at `now` (applying the timeout if it already
    /// passed) and returns its result. Idempotent on the recorded end time:
    /// finishing an already-terminated round keeps its original end.
    pub fn finish(&mut self, now: SimTime) -> OutputAgreementResult {
        if !self.over {
            self.over = true;
            self.ended_at = now.min(self.deadline);
        }
        let start = if self.started_set {
            self.started
        } else {
            self.ended_at
        };
        let timed_out = self.agreed.is_none() && !(self.passed[0] && self.passed[1]);
        OutputAgreementResult {
            task: self.task,
            agreed_label: self.agreed.clone(),
            guesses: self.guesses.clone(),
            taboo_rejections: self.taboo_rejections,
            both_passed: self.passed[0] && self.passed[1],
            timed_out,
            duration: self.ended_at.saturating_since(start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round() -> OutputAgreementRound {
        OutputAgreementRound::new(
            TaskId::new(1),
            TabooList::default(),
            SimDuration::from_secs(150),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn match_requires_cross_seat_agreement() {
        let mut r = round();
        assert_eq!(
            r.submit(Seat::Left, Answer::text("sky"), t(0)),
            SubmitOutcome::Accepted
        );
        // Same seat repeating does not match.
        assert_eq!(
            r.submit(Seat::Left, Answer::text("sky"), t(1)),
            SubmitOutcome::Accepted
        );
        let out = r.submit(Seat::Right, Answer::text("SKY"), t(2));
        assert_eq!(out, SubmitOutcome::Matched(Some(Label::new("sky"))));
        assert!(r.is_over());
        let res = r.finish(t(2));
        assert!(res.is_match());
        assert_eq!(res.duration, SimDuration::from_secs(2));
        assert!(!res.timed_out);
        assert!(!res.both_passed);
    }

    #[test]
    fn normalization_drives_matching() {
        let mut r = round();
        r.submit(Seat::Left, Answer::text("Puppies!"), t(0));
        let out = r.submit(Seat::Right, Answer::text("puppy"), t(1));
        assert_eq!(out, SubmitOutcome::Matched(Some(Label::new("puppy"))));
    }

    #[test]
    fn taboo_labels_are_rejected_and_counted() {
        let taboo = TabooList::from_labels([Label::new("dog"), Label::new("cat")]);
        let mut r = OutputAgreementRound::new(TaskId::new(1), taboo, SimDuration::from_secs(150));
        assert_eq!(
            r.submit(Seat::Left, Answer::text("Dogs"), t(0)),
            SubmitOutcome::TabooViolation
        );
        assert_eq!(
            r.submit(Seat::Right, Answer::text("cat"), t(0)),
            SubmitOutcome::TabooViolation
        );
        r.submit(Seat::Left, Answer::text("leash"), t(1));
        r.submit(Seat::Right, Answer::text("leash"), t(1));
        let res = r.finish(t(2));
        assert_eq!(res.taboo_rejections, 2);
        assert_eq!(res.agreed_label, Some(Label::new("leash")));
    }

    #[test]
    fn both_passing_ends_round_without_output() {
        let mut r = round();
        assert_eq!(
            r.submit(Seat::Left, Answer::Pass, t(0)),
            SubmitOutcome::Accepted
        );
        assert_eq!(
            r.submit(Seat::Right, Answer::Pass, t(1)),
            SubmitOutcome::BothPassed
        );
        let res = r.finish(t(1));
        assert!(res.both_passed);
        assert!(!res.is_match());
        assert!(!res.timed_out);
    }

    #[test]
    fn guessing_after_pass_revokes_the_pass() {
        let mut r = round();
        r.submit(Seat::Left, Answer::Pass, t(0));
        r.submit(Seat::Left, Answer::text("tree"), t(1)); // reconsiders
        assert_eq!(
            r.submit(Seat::Right, Answer::Pass, t(2)),
            SubmitOutcome::Accepted
        );
        assert!(!r.is_over(), "left seat's pass was revoked by guessing");
    }

    #[test]
    fn timeout_rejects_late_submissions() {
        let mut r = round();
        r.submit(Seat::Left, Answer::text("a"), t(0)); // starts clock, deadline t=150
        assert_eq!(
            r.submit(Seat::Right, Answer::text("a"), t(151)),
            SubmitOutcome::RoundOver
        );
        let res = r.finish(t(200));
        assert!(res.timed_out);
        assert!(!res.is_match());
        assert_eq!(
            res.duration,
            SimDuration::from_secs(150),
            "capped at deadline"
        );
    }

    #[test]
    fn submissions_after_match_are_rejected() {
        let mut r = round();
        r.submit(Seat::Left, Answer::text("x"), t(0));
        r.submit(Seat::Right, Answer::text("x"), t(0));
        assert_eq!(
            r.submit(Seat::Left, Answer::text("y"), t(1)),
            SubmitOutcome::RoundOver
        );
    }

    #[test]
    fn wrong_answer_kinds_are_rejected() {
        let mut r = round();
        assert_eq!(
            r.submit(Seat::Left, Answer::verdict(true), t(0)),
            SubmitOutcome::WrongKind
        );
        assert_eq!(
            r.submit(Seat::Left, Answer::Choice(0), t(0)),
            SubmitOutcome::WrongKind
        );
    }

    #[test]
    fn empty_normalized_labels_are_ignored() {
        let mut r = round();
        assert_eq!(
            r.submit(Seat::Left, Answer::text("!!!"), t(0)),
            SubmitOutcome::Accepted
        );
        let res = r.finish(t(1));
        assert!(res.guesses[0].is_empty());
    }

    #[test]
    fn guesses_are_recorded_distinct_in_order() {
        let mut r = round();
        r.submit(Seat::Left, Answer::text("one"), t(0));
        r.submit(Seat::Left, Answer::text("two"), t(1));
        r.submit(Seat::Left, Answer::text("ONE"), t(2)); // duplicate
        let res = r.finish(t(3));
        assert_eq!(res.guesses[0], vec![Label::new("one"), Label::new("two")]);
    }

    #[test]
    fn finish_without_any_submission() {
        let mut r = round();
        let res = r.finish(t(5));
        assert!(!res.is_match());
        assert_eq!(res.duration, SimDuration::ZERO);
    }
}
