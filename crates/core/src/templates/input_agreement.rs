//! The input-agreement template (TagATune).
//!
//! Each seat receives an input that is either the **same** as or
//! **different** from the partner's. Players exchange free-text
//! descriptions of their own input, then each votes *same* or *different*.
//! Both seats vote correctly ⇒ the round succeeds and every exchanged
//! description is taken as a validated tag **for the input of the seat that
//! produced it** — if the players could tell same from different through
//! the descriptions alone, the descriptions must carry real information
//! about the inputs.

use crate::answer::{Answer, Label, Verdict};
use crate::id::TaskId;
use crate::templates::{Seat, SubmitOutcome};
use hc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Terminal summary of an input-agreement round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputAgreementResult {
    /// The task shown to the left seat.
    pub left_task: TaskId,
    /// The task shown to the right seat (equal to `left_task` on "same"
    /// rounds).
    pub right_task: TaskId,
    /// Ground truth: were the two inputs the same?
    pub inputs_same: bool,
    /// The verdicts cast, if both seats voted.
    pub verdicts: [Option<Verdict>; 2],
    /// Whether both seats voted and both were correct.
    pub succeeded: bool,
    /// Descriptions exchanged by each seat (normalized, deduplicated, in
    /// order). Validated as tags only when `succeeded`.
    pub descriptions: [Vec<Label>; 2],
    /// `true` if the round ended by timeout before both votes were cast.
    pub timed_out: bool,
    /// Wall time consumed.
    pub duration: SimDuration,
}

impl InputAgreementResult {
    /// Tags validated by this round: `(task, label)` pairs, empty unless
    /// the round succeeded.
    #[must_use]
    pub fn validated_tags(&self) -> Vec<(TaskId, Label)> {
        if !self.succeeded {
            return Vec::new();
        }
        let mut out = Vec::new();
        for l in &self.descriptions[0] {
            out.push((self.left_task, l.clone()));
        }
        for l in &self.descriptions[1] {
            out.push((self.right_task, l.clone()));
        }
        out
    }
}

/// A live input-agreement round.
///
/// # Examples
///
/// ```
/// use hc_core::prelude::*;
///
/// let mut round = InputAgreementRound::new(
///     TaskId::new(1), TaskId::new(1), // same clip on both sides
///     SimDuration::from_secs(180),
/// );
/// let t = SimTime::ZERO;
/// round.submit(Seat::Left, Answer::text("piano"), t);
/// round.submit(Seat::Right, Answer::text("slow piano"), t);
/// round.submit(Seat::Left, Answer::verdict(true), t);
/// let out = round.submit(Seat::Right, Answer::verdict(true), t);
/// assert!(matches!(out, SubmitOutcome::Matched(None)));
/// let res = round.finish(t);
/// assert!(res.succeeded);
/// assert_eq!(res.validated_tags().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct InputAgreementRound {
    left_task: TaskId,
    right_task: TaskId,
    deadline: SimTime,
    started: SimTime,
    started_set: bool,
    time_limit: SimDuration,
    descriptions: [Vec<Label>; 2],
    verdicts: [Option<Verdict>; 2],
    over: bool,
    ended_at: SimTime,
}

impl InputAgreementRound {
    /// Starts a round where the left seat sees `left_task` and the right
    /// seat `right_task` (pass the same id for a "same" round). The clock
    /// starts at the first submission.
    #[must_use]
    pub fn new(left_task: TaskId, right_task: TaskId, time_limit: SimDuration) -> Self {
        InputAgreementRound {
            left_task,
            right_task,
            deadline: SimTime::MAX,
            started: SimTime::ZERO,
            started_set: false,
            time_limit,
            descriptions: [Vec::new(), Vec::new()],
            verdicts: [None, None],
            over: false,
            ended_at: SimTime::ZERO,
        }
    }

    /// Ground truth: do both seats see the same input?
    #[must_use]
    pub fn inputs_same(&self) -> bool {
        self.left_task == self.right_task
    }

    /// Descriptions the partner of `seat` has sent so far — what a player
    /// gets to see when deciding their verdict.
    #[must_use]
    pub fn partner_descriptions(&self, seat: Seat) -> &[Label] {
        &self.descriptions[seat.other().index()]
    }

    /// `true` once the round has terminated.
    #[must_use]
    pub fn is_over(&self) -> bool {
        self.over
    }

    /// Feeds one submission: text answers accumulate as descriptions;
    /// verdict answers vote. The round terminates when both seats have
    /// voted (outcome [`SubmitOutcome::Matched`] with no label — success is
    /// reported by [`InputAgreementResult::succeeded`]).
    pub fn submit(&mut self, seat: Seat, answer: Answer, at: SimTime) -> SubmitOutcome {
        if self.over {
            return SubmitOutcome::RoundOver;
        }
        if !self.started_set {
            self.started = at;
            self.started_set = true;
            self.deadline = at + self.time_limit;
        }
        if at > self.deadline {
            self.over = true;
            self.ended_at = self.deadline;
            return SubmitOutcome::RoundOver;
        }
        match answer {
            Answer::Text(label) => {
                if !label.is_empty() && !self.descriptions[seat.index()].contains(&label) {
                    self.descriptions[seat.index()].push(label);
                }
                SubmitOutcome::Accepted
            }
            Answer::Verdict(v) => {
                self.verdicts[seat.index()] = Some(v);
                if self.verdicts[0].is_some() && self.verdicts[1].is_some() {
                    self.over = true;
                    self.ended_at = at;
                    SubmitOutcome::Matched(None)
                } else {
                    SubmitOutcome::Accepted
                }
            }
            Answer::Pass => SubmitOutcome::Accepted, // passing is implicit: just stop describing
            _ => SubmitOutcome::WrongKind,
        }
    }

    /// Closes the round at `now` and returns its result.
    pub fn finish(&mut self, now: SimTime) -> InputAgreementResult {
        if !self.over {
            self.over = true;
            self.ended_at = now.min(self.deadline);
        }
        let start = if self.started_set {
            self.started
        } else {
            self.ended_at
        };
        let both_voted = self.verdicts[0].is_some() && self.verdicts[1].is_some();
        let truth = self.inputs_same();
        let succeeded = both_voted
            && self
                .verdicts
                .iter()
                .all(|v| v.map(|v| v.is_same() == truth).unwrap_or(false));
        InputAgreementResult {
            left_task: self.left_task,
            right_task: self.right_task,
            inputs_same: truth,
            verdicts: self.verdicts,
            succeeded,
            descriptions: self.descriptions.clone(),
            timed_out: !both_voted,
            duration: self.ended_at.saturating_since(start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn same_round() -> InputAgreementRound {
        InputAgreementRound::new(TaskId::new(1), TaskId::new(1), SimDuration::from_secs(180))
    }

    fn diff_round() -> InputAgreementRound {
        InputAgreementRound::new(TaskId::new(1), TaskId::new(2), SimDuration::from_secs(180))
    }

    #[test]
    fn correct_same_votes_succeed_and_validate_tags() {
        let mut r = same_round();
        r.submit(Seat::Left, Answer::text("guitar"), t(0));
        r.submit(Seat::Right, Answer::text("acoustic guitar"), t(1));
        r.submit(Seat::Left, Answer::verdict(true), t(2));
        assert!(!r.is_over());
        let out = r.submit(Seat::Right, Answer::verdict(true), t(3));
        assert_eq!(out, SubmitOutcome::Matched(None));
        let res = r.finish(t(3));
        assert!(res.succeeded);
        let tags = res.validated_tags();
        assert_eq!(tags.len(), 2);
        assert!(tags.contains(&(TaskId::new(1), Label::new("guitar"))));
        assert_eq!(res.duration, SimDuration::from_secs(3));
    }

    #[test]
    fn correct_different_votes_succeed() {
        let mut r = diff_round();
        r.submit(Seat::Left, Answer::text("piano"), t(0));
        r.submit(Seat::Right, Answer::text("drums"), t(0));
        r.submit(Seat::Left, Answer::verdict(false), t(1));
        r.submit(Seat::Right, Answer::verdict(false), t(1));
        let res = r.finish(t(1));
        assert!(res.succeeded);
        assert!(!res.inputs_same);
        // Tags attach to each seat's own task.
        let tags = res.validated_tags();
        assert!(tags.contains(&(TaskId::new(1), Label::new("piano"))));
        assert!(tags.contains(&(TaskId::new(2), Label::new("drum"))));
    }

    #[test]
    fn one_wrong_vote_fails_and_yields_no_tags() {
        let mut r = same_round();
        r.submit(Seat::Left, Answer::text("piano"), t(0));
        r.submit(Seat::Left, Answer::verdict(true), t(1));
        r.submit(Seat::Right, Answer::verdict(false), t(1));
        let res = r.finish(t(1));
        assert!(!res.succeeded);
        assert!(res.validated_tags().is_empty());
        assert!(
            !res.timed_out,
            "both voted; this is a wrong answer, not a timeout"
        );
    }

    #[test]
    fn timeout_without_votes_is_flagged() {
        let mut r = same_round();
        r.submit(Seat::Left, Answer::text("piano"), t(0));
        assert_eq!(
            r.submit(Seat::Right, Answer::verdict(true), t(500)),
            SubmitOutcome::RoundOver
        );
        let res = r.finish(t(500));
        assert!(res.timed_out);
        assert!(!res.succeeded);
    }

    #[test]
    fn partner_descriptions_are_visible() {
        let mut r = same_round();
        r.submit(Seat::Left, Answer::text("violin"), t(0));
        assert_eq!(r.partner_descriptions(Seat::Right), &[Label::new("violin")]);
        assert!(r.partner_descriptions(Seat::Left).is_empty());
    }

    #[test]
    fn descriptions_dedupe_and_ignore_empties() {
        let mut r = same_round();
        r.submit(Seat::Left, Answer::text("flute"), t(0));
        r.submit(Seat::Left, Answer::text("FLUTE"), t(1));
        r.submit(Seat::Left, Answer::text("??"), t(2));
        r.submit(Seat::Left, Answer::verdict(true), t(3));
        r.submit(Seat::Right, Answer::verdict(true), t(3));
        let res = r.finish(t(3));
        assert_eq!(res.descriptions[0], vec![Label::new("flute")]);
    }

    #[test]
    fn wrong_kinds_rejected_and_pass_tolerated() {
        let mut r = same_round();
        assert_eq!(
            r.submit(Seat::Left, Answer::Choice(0), t(0)),
            SubmitOutcome::WrongKind
        );
        assert_eq!(
            r.submit(Seat::Left, Answer::Pass, t(0)),
            SubmitOutcome::Accepted
        );
    }

    #[test]
    fn revoting_overwrites_before_completion() {
        let mut r = same_round();
        r.submit(Seat::Left, Answer::verdict(false), t(0));
        r.submit(Seat::Left, Answer::verdict(true), t(1)); // reconsider
        r.submit(Seat::Right, Answer::verdict(true), t(2));
        let res = r.finish(t(2));
        assert!(res.succeeded);
    }

    #[test]
    fn submissions_after_completion_rejected() {
        let mut r = same_round();
        r.submit(Seat::Left, Answer::verdict(true), t(0));
        r.submit(Seat::Right, Answer::verdict(true), t(0));
        assert_eq!(
            r.submit(Seat::Left, Answer::text("late"), t(1)),
            SubmitOutcome::RoundOver
        );
    }
}
