//! Platform orchestration: jobs, verification pipeline, and bookkeeping.
//!
//! [`Platform`] wires the whole verification pipeline together the way the
//! deployed systems did:
//!
//! 1. a round produces a **candidate agreement** `(task, label, pair)`;
//! 2. gold tasks update both players' test records ([`GoldBank`]);
//! 3. the answer feeds the spam detector; the pairing feeds the collusion
//!    detector ([`CheatDetector`]);
//! 4. if both players are currently *trusted*, the agreement counts toward
//!    [`AgreementTracker`] promotion (k-agreement repetition);
//! 5. a promoted label is emitted as a [`VerifiedLabel`], appended to the
//!    task's taboo list, and counted by the metrics ledger.
//!
//! The platform is deliberately synchronous and deterministic: games drive
//! it from simulated sessions, experiments read the ledgers afterwards.

use crate::answer::Label;
use crate::anticheat::CheatDetector;
use crate::error::{Error, Result};
use crate::id::{IdAllocator, JobId, PlayerId, TaskId};
use crate::jobs::{JobBook, JobGoal};
use crate::matchmaker::{Matchmaker, MatchmakerConfig};
use crate::metrics::{ContributionLedger, GwapMetrics};
use crate::replay::ReplayStore;
use crate::scoring::{ScoreRule, Scoreboard};
use crate::session::{SessionConfig, SessionTranscript};
use crate::task::{Stimulus, Task, TaskQueue};
use crate::verify::{AgreementTracker, GoldBank, TabooList};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A label that survived the full verification pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedLabel {
    /// The task the label describes.
    pub task: TaskId,
    /// The promoted label.
    pub label: Label,
    /// The pair whose agreement completed the promotion.
    pub promoted_by: (PlayerId, PlayerId),
    /// Platform time at promotion (advanced via [`Platform::set_time`];
    /// stays at zero for callers that never drive the clock).
    pub at: hc_sim::SimTime,
}

/// Platform-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Independent agreements required to promote a label (repetition).
    pub agreement_threshold: u32,
    /// Verified outputs after which a task is considered complete
    /// (0 = unbounded).
    pub task_completion_threshold: u32,
    /// Whether promoted labels become taboo for their task (the ESP
    /// mechanism; disable for the F3 ablation).
    pub taboo_words_enabled: bool,
    /// Probability of serving a gold task when one is available.
    pub gold_injection_rate: f64,
    /// Gold accuracy below which a player's agreements stop counting.
    pub gold_min_accuracy: f64,
    /// Gold exposures before the accuracy gate applies.
    pub gold_min_evidence: u32,
    /// Session shape.
    pub session: SessionConfig,
    /// Matchmaker behaviour.
    pub matchmaker: MatchmakerConfig,
    /// Recordings kept per task for replay fallback.
    pub replay_capacity_per_task: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            agreement_threshold: 1,
            task_completion_threshold: 0,
            taboo_words_enabled: true,
            gold_injection_rate: 0.1,
            gold_min_accuracy: 0.6,
            gold_min_evidence: 4,
            session: SessionConfig::default(),
            matchmaker: MatchmakerConfig::default(),
            replay_capacity_per_task: 8,
        }
    }
}

impl PlatformConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for out-of-range probabilities.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.gold_injection_rate) {
            return Err(Error::InvalidConfig("gold_injection_rate must be in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.gold_min_accuracy) {
            return Err(Error::InvalidConfig("gold_min_accuracy must be in [0,1]"));
        }
        Ok(())
    }
}

/// The assembled human-computation platform.
///
/// # Examples
///
/// ```
/// use hc_core::prelude::*;
/// use rand::SeedableRng;
///
/// let mut platform = Platform::new(PlatformConfig::default()).unwrap();
/// let task = platform.add_task(Stimulus::Image(0));
/// let (a, b) = (platform.register_player(), platform.register_player());
///
/// // A round's agreed label flows through the pipeline and verifies.
/// let promoted = platform.ingest_agreement(task, Label::new("dog"), a, b).unwrap();
/// assert!(promoted);
/// assert_eq!(platform.verified_labels().len(), 1);
/// // The promoted label is now taboo for that task.
/// assert!(platform.taboo_for(task).contains(&Label::new("dog")));
/// ```
#[derive(Debug)]
pub struct Platform {
    config: PlatformConfig,
    tasks: TaskQueue,
    gold: GoldBank,
    agreement: AgreementTracker,
    cheat: CheatDetector,
    scoreboard: Scoreboard,
    ledger: ContributionLedger,
    matchmaker: Matchmaker,
    replay: ReplayStore,
    verified: Vec<VerifiedLabel>,
    player_ids: IdAllocator<PlayerId>,
    task_ids: IdAllocator<TaskId>,
    gold_tasks: Vec<TaskId>,
    rejected_agreements: u64,
    jobs: JobBook,
    /// Simulated clock of the last ingested agreement (drives job
    /// completion timestamps; platforms are clock-free otherwise).
    last_event_time: hc_sim::SimTime,
}

impl Platform {
    /// Builds a platform from a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the config fails validation.
    pub fn new(config: PlatformConfig) -> Result<Self> {
        config.validate()?;
        Ok(Platform {
            config,
            tasks: TaskQueue::new(),
            gold: GoldBank::new(config.gold_min_accuracy, config.gold_min_evidence),
            agreement: AgreementTracker::new(config.agreement_threshold),
            cheat: CheatDetector::new(0.5, 0.5, 20),
            scoreboard: Scoreboard::new(config.session.score_rule),
            ledger: ContributionLedger::new(),
            matchmaker: Matchmaker::new(config.matchmaker),
            replay: ReplayStore::new(config.replay_capacity_per_task),
            verified: Vec::new(),
            player_ids: IdAllocator::new(),
            task_ids: IdAllocator::new(),
            gold_tasks: Vec::new(),
            rejected_agreements: 0,
            jobs: JobBook::new(),
            last_event_time: hc_sim::SimTime::ZERO,
        })
    }

    /// The active config.
    #[must_use]
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Registers a new player and returns their id.
    pub fn register_player(&mut self) -> PlayerId {
        self.player_ids.next()
    }

    /// Adds a regular task.
    pub fn add_task(&mut self, stimulus: Stimulus) -> TaskId {
        let id = self.task_ids.next();
        self.tasks.insert(Task::new(id, stimulus));
        id
    }

    /// Adds a gold task with known acceptable labels.
    pub fn add_gold_task<I: IntoIterator<Item = Label>>(
        &mut self,
        stimulus: Stimulus,
        accepted: I,
    ) -> TaskId {
        let id = self.add_task(stimulus);
        self.gold.add_gold(id, accepted);
        self.gold_tasks.push(id);
        id
    }

    /// Chooses the next task for a pair: with probability
    /// `gold_injection_rate` a random gold task (if any), otherwise the
    /// least-covered unseen task. Returns `None` when nothing is servable.
    pub fn next_task_for<R: Rng + ?Sized>(
        &mut self,
        players: &[PlayerId],
        rng: &mut R,
    ) -> Option<TaskId> {
        if !self.gold_tasks.is_empty()
            && self.config.gold_injection_rate > 0.0
            && rng.gen::<f64>() < self.config.gold_injection_rate
        {
            let gold = self.gold_tasks[rng.gen_range(0..self.gold_tasks.len())];
            return Some(gold);
        }
        self.tasks.next_for(players)
    }

    /// Records that `task` was served to `players`.
    pub fn record_served(&mut self, task: TaskId, players: &[PlayerId]) {
        self.tasks.record_served(task, players);
    }

    /// The taboo list currently attached to `task` (empty for unknown
    /// tasks).
    #[must_use]
    pub fn taboo_for(&self, task: TaskId) -> TabooList {
        self.tasks
            .get(task)
            .map(|t| TabooList::from_labels(t.taboo.iter().cloned()))
            .unwrap_or_default()
    }

    /// Feeds one agreed `(task, label)` from a pair through the pipeline.
    /// Returns `Ok(true)` when the label was *newly promoted* to verified.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTask`] if the task does not exist.
    pub fn ingest_agreement(
        &mut self,
        task: TaskId,
        label: Label,
        a: PlayerId,
        b: PlayerId,
    ) -> Result<bool> {
        if self.tasks.get(task).is_none() {
            return Err(Error::UnknownTask(task));
        }
        let tracing = hc_obs::active();
        // Under tracing, watch the gold-trust gate for quarantine
        // transitions (a trusted player becoming distrusted). Observed
        // only — the pipeline's control flow never reads these.
        let trusted_before = if tracing {
            (self.gold.is_trusted(a), self.gold.is_trusted(b))
        } else {
            (true, true)
        };
        // Gold checking: both players answered this label on a gold task.
        self.gold.check(a, task, &label);
        self.gold.check(b, task, &label);
        // Spam detector sees every agreed answer.
        self.cheat.record_answer(a, &label);
        self.cheat.record_answer(b, &label);
        if tracing {
            let now = self.last_event_time.ticks();
            hc_obs::counter("core.agreements", now, 1);
            for (player, was_trusted) in [(a, trusted_before.0), (b, trusted_before.1)] {
                if was_trusted && !self.gold.is_trusted(player) {
                    hc_obs::counter("core.quarantines", now, 1);
                    hc_obs::event(
                        "core",
                        "quarantine",
                        now,
                        &[("player", u64::from(player).into())],
                    );
                }
            }
        }
        // Gold tasks never produce verified labels — they are instruments.
        if self.gold.is_gold(task) {
            if tracing {
                hc_obs::counter("core.gold_checks", self.last_event_time.ticks(), 1);
            }
            return Ok(false);
        }
        // Trust gating.
        if !self.gold.is_trusted(a) || !self.gold.is_trusted(b) {
            self.rejected_agreements += 1;
            if tracing {
                hc_obs::counter("core.rejected_agreements", self.last_event_time.ticks(), 1);
            }
            return Ok(false);
        }
        let promoted = self.agreement.record(task, label.clone(), a, b);
        if promoted {
            if self.config.taboo_words_enabled {
                self.tasks.add_taboo(task, label.clone());
            }
            self.tasks
                .record_verified(task, self.config.task_completion_threshold);
            self.ledger.record_outputs(1);
            self.jobs.credit_output(task, self.last_event_time);
            if tracing {
                hc_obs::counter("core.promotions", self.last_event_time.ticks(), 1);
            }
            self.verified.push(VerifiedLabel {
                task,
                label,
                promoted_by: (a, b),
                at: self.last_event_time,
            });
        }
        Ok(promoted)
    }

    /// Ingests a completed session: play time to the ledger, the pairing to
    /// the collusion detector, per-round scores to the scoreboard, and the
    /// players' seen-task sets are cleared.
    pub fn record_session(&mut self, transcript: &SessionTranscript) {
        let [a, b] = transcript.players;
        let dur = transcript.duration();
        if hc_obs::active() {
            let [points_a, points_b] = transcript.total_points;
            hc_obs::span(
                "core",
                "session",
                transcript.started.ticks(),
                transcript.ended.ticks(),
                &[
                    ("session", u64::from(transcript.id).into()),
                    ("a", u64::from(a).into()),
                    ("b", u64::from(b).into()),
                    ("rounds", transcript.rounds().into()),
                    ("matched", transcript.matched_count().into()),
                    ("points", (points_a + points_b).into()),
                ],
            );
            hc_obs::counter("core.sessions", transcript.ended.ticks(), 1);
        }
        self.ledger.record_play(a, dur);
        self.ledger.record_play(b, dur);
        self.cheat.record_pairing(a, b);
        for r in &transcript.records {
            self.scoreboard
                .record_round(a, r.matched, r.duration.as_secs_f64());
            self.scoreboard
                .record_round(b, r.matched, r.duration.as_secs_f64());
        }
        self.tasks.clear_seen(a);
        self.tasks.clear_seen(b);
    }

    /// Opens a labeling job over already-registered tasks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyJob`] when `tasks` is empty and
    /// [`Error::UnknownTask`] when any task was never registered.
    pub fn open_job(&mut self, name: &str, goal: JobGoal, tasks: Vec<TaskId>) -> Result<JobId> {
        for t in &tasks {
            if self.tasks.get(*t).is_none() {
                return Err(Error::UnknownTask(*t));
            }
        }
        self.jobs.open(name, goal, tasks, self.last_event_time)
    }

    /// Read access to the job book.
    #[must_use]
    pub fn jobs(&self) -> &JobBook {
        &self.jobs
    }

    /// Cancels a job, timestamped with the platform's current time.
    /// Idempotent for jobs that are already completed or cancelled.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownJob`] when the job was never opened.
    pub fn cancel_job(&mut self, id: JobId) -> Result<()> {
        self.jobs.cancel(id, self.last_event_time)
    }

    /// Advances the platform's notion of time (used to timestamp job
    /// completion; campaigns call it as their clock moves).
    pub fn set_time(&mut self, now: hc_sim::SimTime) {
        self.last_event_time = self.last_event_time.max(now);
    }

    /// Forgets a single player's seen-task set (used by single-player
    /// replay sessions, which bypass [`Platform::record_session`]).
    pub fn tasks_clear_seen(&mut self, player: PlayerId) {
        self.tasks.clear_seen(player);
    }

    /// The verified-label stream, in promotion order.
    #[must_use]
    pub fn verified_labels(&self) -> &[VerifiedLabel] {
        &self.verified
    }

    /// Agreements dropped because a participant was distrusted.
    #[must_use]
    pub fn rejected_agreements(&self) -> u64 {
        self.rejected_agreements
    }

    /// Current GWAP metrics from the ledger.
    #[must_use]
    pub fn metrics(&self) -> GwapMetrics {
        self.ledger.metrics()
    }

    /// Access to the task store.
    #[must_use]
    pub fn tasks(&self) -> &TaskQueue {
        &self.tasks
    }

    /// Access to the matchmaker.
    pub fn matchmaker_mut(&mut self) -> &mut Matchmaker {
        &mut self.matchmaker
    }

    /// Read access to the matchmaker.
    #[must_use]
    pub fn matchmaker(&self) -> &Matchmaker {
        &self.matchmaker
    }

    /// Access to the replay store.
    pub fn replay_mut(&mut self) -> &mut ReplayStore {
        &mut self.replay
    }

    /// Read access to the replay store.
    #[must_use]
    pub fn replay(&self) -> &ReplayStore {
        &self.replay
    }

    /// Read access to the gold bank.
    #[must_use]
    pub fn gold(&self) -> &GoldBank {
        &self.gold
    }

    /// Read access to the cheat detector.
    #[must_use]
    pub fn cheat_detector(&self) -> &CheatDetector {
        &self.cheat
    }

    /// Replaces the cheat detector (to tune thresholds per experiment).
    pub fn set_cheat_detector(&mut self, detector: CheatDetector) {
        self.cheat = detector;
    }

    /// Read access to the scoreboard.
    #[must_use]
    pub fn scoreboard(&self) -> &Scoreboard {
        &self.scoreboard
    }

    /// Read access to the agreement tracker.
    #[must_use]
    pub fn agreement(&self) -> &AgreementTracker {
        &self.agreement
    }

    /// The score rule in force.
    #[must_use]
    pub fn score_rule(&self) -> ScoreRule {
        self.config.session.score_rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{RoundRecord, Session};
    use crate::templates::TemplateKind;
    use hc_sim::{SimDuration, SimTime};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    fn platform(k: u32) -> Platform {
        let config = PlatformConfig {
            agreement_threshold: k,
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        };
        Platform::new(config).unwrap()
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = PlatformConfig {
            gold_injection_rate: 1.5,
            ..PlatformConfig::default()
        };
        assert!(Platform::new(bad).is_err());
        let bad = PlatformConfig {
            gold_min_accuracy: -0.1,
            ..PlatformConfig::default()
        };
        assert!(Platform::new(bad).is_err());
    }

    #[test]
    fn taboo_flag_controls_accumulation() {
        let config = PlatformConfig {
            agreement_threshold: 1,
            taboo_words_enabled: false,
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(config).unwrap();
        let task = p.add_task(Stimulus::Image(0));
        let (a, b) = (p.register_player(), p.register_player());
        assert!(p.ingest_agreement(task, Label::new("dog"), a, b).unwrap());
        assert!(
            p.taboo_for(task).is_empty(),
            "taboo disabled must not accumulate"
        );
    }

    #[test]
    fn promotion_at_threshold_updates_taboo_and_ledger() {
        let mut p = platform(2);
        let task = p.add_task(Stimulus::Image(1));
        let ids: Vec<PlayerId> = (0..4).map(|_| p.register_player()).collect();
        assert!(!p
            .ingest_agreement(task, Label::new("dog"), ids[0], ids[1])
            .unwrap());
        assert!(p
            .ingest_agreement(task, Label::new("dog"), ids[2], ids[3])
            .unwrap());
        assert_eq!(p.verified_labels().len(), 1);
        assert!(p.taboo_for(task).contains(&Label::new("dog")));
        assert_eq!(p.metrics().total_outputs, 1);
        // Third agreement on an already-promoted label does nothing.
        assert!(!p
            .ingest_agreement(task, Label::new("dog"), ids[0], ids[2])
            .unwrap());
        assert_eq!(p.verified_labels().len(), 1);
    }

    #[test]
    fn unknown_task_errors() {
        let mut p = platform(1);
        let a = p.register_player();
        let b = p.register_player();
        assert_eq!(
            p.ingest_agreement(TaskId::new(99), Label::new("x"), a, b),
            Err(Error::UnknownTask(TaskId::new(99)))
        );
    }

    #[test]
    fn gold_tasks_gate_untrusted_players() {
        let config = PlatformConfig {
            agreement_threshold: 1,
            gold_injection_rate: 0.0,
            gold_min_accuracy: 0.9,
            gold_min_evidence: 2,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(config).unwrap();
        let gold = p.add_gold_task(Stimulus::Image(0), [Label::new("sun")]);
        let task = p.add_task(Stimulus::Image(1));
        let (a, b) = (p.register_player(), p.register_player());
        // Two wrong gold answers distrust both players.
        p.ingest_agreement(gold, Label::new("moon"), a, b).unwrap();
        p.ingest_agreement(gold, Label::new("star"), a, b).unwrap();
        assert!(!p.gold().is_trusted(a));
        // Their agreements now bounce.
        assert!(!p.ingest_agreement(task, Label::new("dog"), a, b).unwrap());
        assert_eq!(p.rejected_agreements(), 1);
        assert!(p.verified_labels().is_empty());
        // Trusted newcomers still verify.
        let (c, d) = (p.register_player(), p.register_player());
        assert!(p.ingest_agreement(task, Label::new("dog"), c, d).unwrap());
    }

    #[test]
    fn gold_tasks_never_emit_verified_labels() {
        let mut p = platform(1);
        let gold = p.add_gold_task(Stimulus::Image(0), [Label::new("sun")]);
        let (a, b) = (p.register_player(), p.register_player());
        assert!(!p.ingest_agreement(gold, Label::new("sun"), a, b).unwrap());
        assert!(p.verified_labels().is_empty());
    }

    #[test]
    fn gold_injection_rate_controls_serving() {
        let config = PlatformConfig {
            gold_injection_rate: 1.0,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(config).unwrap();
        let gold = p.add_gold_task(Stimulus::Image(0), [Label::new("sun")]);
        let _task = p.add_task(Stimulus::Image(1));
        let a = p.register_player();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(p.next_task_for(&[a], &mut r), Some(gold));
        }
    }

    #[test]
    fn zero_gold_rate_serves_regular_tasks() {
        let mut p = platform(1);
        let _gold_absent = p.add_task(Stimulus::Image(1));
        let a = p.register_player();
        let mut r = rng();
        assert!(p.next_task_for(&[a], &mut r).is_some());
    }

    #[test]
    fn record_session_feeds_ledger_scoreboard_and_detector() {
        let mut p = platform(1);
        let (a, b) = (p.register_player(), p.register_player());
        let mut s = Session::new(
            crate::id::SessionId::new(1),
            [a, b],
            SimTime::ZERO,
            SessionConfig::default(),
        );
        s.record_round(RoundRecord {
            template: TemplateKind::OutputAgreement,
            task: TaskId::new(0),
            matched: true,
            candidate_outputs: 1,
            duration: SimDuration::from_secs(10),
            points: [130, 130],
        });
        let t = s.finish(SimTime::from_secs(60));
        p.record_session(&t);
        assert_eq!(p.metrics().player_count, 2);
        assert!((p.metrics().total_human_hours - 2.0 / 60.0).abs() < 1e-9);
        assert_eq!(p.scoreboard().score(a).unwrap().matches, 1);
        assert_eq!(p.cheat_detector().games_of(a), 1);
    }

    #[test]
    fn completion_threshold_retires_tasks() {
        let config = PlatformConfig {
            agreement_threshold: 1,
            task_completion_threshold: 1,
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(config).unwrap();
        let task = p.add_task(Stimulus::Image(0));
        let (a, b) = (p.register_player(), p.register_player());
        p.ingest_agreement(task, Label::new("dog"), a, b).unwrap();
        assert_eq!(p.tasks().completed_count(), 1);
        let mut r = rng();
        assert_eq!(p.next_task_for(&[a], &mut r), None);
    }

    #[test]
    fn jobs_track_promotions() {
        use crate::jobs::{JobGoal, JobState};
        let mut p = platform(1);
        let t1 = p.add_task(Stimulus::Image(1));
        let t2 = p.add_task(Stimulus::Image(2));
        let job = p
            .open_job("campaign", JobGoal::OutputsPerTask(1), vec![t1, t2])
            .unwrap();
        let (a, b) = (p.register_player(), p.register_player());
        p.set_time(SimTime::from_secs(10));
        p.ingest_agreement(t1, Label::new("dog"), a, b).unwrap();
        assert_eq!(p.jobs().get(job).unwrap().state, JobState::Active);
        assert!((p.jobs().get(job).unwrap().progress() - 0.5).abs() < 1e-12);
        p.set_time(SimTime::from_secs(20));
        p.ingest_agreement(t2, Label::new("cat"), a, b).unwrap();
        let j = p.jobs().get(job).unwrap();
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.closed_at, Some(SimTime::from_secs(20)));
        // Unknown tasks rejected at open time.
        assert!(p
            .open_job("bad", JobGoal::TotalOutputs(1), vec![TaskId::new(999)])
            .is_err());
    }

    #[test]
    fn accessors_exist() {
        let mut p = platform(1);
        assert_eq!(p.config().agreement_threshold, 1);
        assert_eq!(p.score_rule().match_points, 100);
        assert_eq!(p.agreement().threshold(), 1);
        assert_eq!(p.matchmaker().queue_len(), 0);
        assert_eq!(p.replay().covered_tasks(), 0);
        let _ = p.matchmaker_mut();
        let _ = p.replay_mut();
        p.set_cheat_detector(CheatDetector::new(0.4, 1.0, 5));
    }
}
