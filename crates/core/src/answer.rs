//! Answers and labels — what players produce.
//!
//! The paper's games elicit different output kinds: free-text labels (ESP,
//! Verbosity), same/different verdicts (TagATune), screen regions
//! (Peekaboom), and binary preferences (Matchin). [`Answer`] is the sum of
//! those; [`Label`] is a *normalized* free-text label, the currency of the
//! verification layer.

use crate::text::normalize_label;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

/// A normalized free-text label.
///
/// Construction always normalizes (see [`crate::text::normalize_label`]),
/// so two `Label`s compare equal exactly when the platform considers the
/// underlying strings to agree.
///
/// # Examples
///
/// ```
/// use hc_core::Label;
/// assert_eq!(Label::new("  Dogs! "), Label::new("dog"));
/// assert_eq!(Label::new("Hot Dog").as_str(), "hot dog");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(String);

impl Label {
    /// Builds a label, normalizing `raw`.
    #[must_use]
    pub fn new(raw: &str) -> Self {
        Label(normalize_label(raw))
    }

    /// The normalized text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `true` when normalization erased everything (e.g. pure punctuation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Length in bytes of the normalized text.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Label {
    fn from(raw: &str) -> Self {
        Label::new(raw)
    }
}

impl From<String> for Label {
    fn from(raw: String) -> Self {
        Label::new(&raw)
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// An axis-aligned rectangle in abstract stimulus coordinates (Peekaboom
/// object regions). Coordinates are `u32` pixels in a virtual canvas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    /// Left edge (inclusive).
    pub x: u32,
    /// Top edge (inclusive).
    pub y: u32,
    /// Width in pixels (may be 0 for a degenerate region).
    pub w: u32,
    /// Height in pixels (may be 0 for a degenerate region).
    pub h: u32,
}

impl Region {
    /// Builds a region from its left/top corner and size.
    #[must_use]
    pub const fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Region { x, y, w, h }
    }

    /// Area in square pixels.
    #[must_use]
    pub const fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// The intersection with another region, or `None` when disjoint or
    /// degenerate.
    #[must_use]
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        if x2 > x1 && y2 > y1 {
            Some(Region::new(x1, y1, x2 - x1, y2 - y1))
        } else {
            None
        }
    }

    /// Intersection-over-union with another region, in `[0, 1]`. Two
    /// degenerate (zero-area) regions have IoU 0.
    #[must_use]
    pub fn iou(&self, other: &Region) -> f64 {
        let inter = self.intersect(other).map_or(0, |r| r.area());
        let union = self.area() + other.area() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// A same/different verdict in input-agreement games.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The player believes both seats received the same input.
    Same,
    /// The player believes the inputs differ.
    Different,
}

impl Verdict {
    /// Builds a verdict from a boolean "inputs are the same".
    #[must_use]
    pub const fn from_same(same: bool) -> Self {
        if same {
            Verdict::Same
        } else {
            Verdict::Different
        }
    }

    /// `true` if this verdict asserts sameness.
    #[must_use]
    pub const fn is_same(self) -> bool {
        matches!(self, Verdict::Same)
    }
}

/// One submission by one seat during a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Answer {
    /// A free-text label/guess/description (normalized on construction via
    /// [`Answer::text`]).
    Text(Label),
    /// A same/different verdict (input-agreement).
    Verdict(Verdict),
    /// A screen region (inversion games with spatial output).
    Region(Region),
    /// A preference among presented options, by index (Matchin).
    Choice(u32),
    /// An explicit "pass" — both seats passing skips the task.
    Pass,
}

impl Answer {
    /// Convenience constructor for a normalized text answer.
    #[must_use]
    pub fn text(raw: &str) -> Self {
        Answer::Text(Label::new(raw))
    }

    /// Convenience constructor for a verdict answer.
    #[must_use]
    pub fn verdict(same: bool) -> Self {
        Answer::Verdict(Verdict::from_same(same))
    }

    /// The label if this is a text answer.
    #[must_use]
    pub fn as_text(&self) -> Option<&Label> {
        match self {
            Answer::Text(l) => Some(l),
            _ => None,
        }
    }

    /// A short static name of the answer kind, used in errors.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Answer::Text(_) => "text",
            Answer::Verdict(_) => "verdict",
            Answer::Region(_) => "region",
            Answer::Choice(_) => "choice",
            Answer::Pass => "pass",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_normalize_on_construction() {
        assert_eq!(Label::new("CATS "), Label::new("cat"));
        assert_eq!(Label::from("Boxes"), Label::new("box"));
        assert_eq!(Label::from(String::from("A  b")), Label::new("a b"));
        assert!(Label::new("!?!").is_empty());
        assert_eq!(Label::new("dog").len(), 3);
        assert_eq!(Label::new("dog").to_string(), "dog");
    }

    #[test]
    fn label_borrows_as_str() {
        use std::collections::HashSet;
        let mut set: HashSet<Label> = HashSet::new();
        set.insert(Label::new("tree"));
        assert!(set.contains("tree"));
        assert!(!set.contains("bush"));
    }

    #[test]
    fn region_intersection_cases() {
        let a = Region::new(0, 0, 10, 10);
        let b = Region::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Region::new(5, 5, 5, 5)));
        let far = Region::new(100, 100, 5, 5);
        assert_eq!(a.intersect(&far), None);
        // Touching edges do not intersect.
        let adjacent = Region::new(10, 0, 5, 5);
        assert_eq!(a.intersect(&adjacent), None);
    }

    #[test]
    fn region_iou_values() {
        let a = Region::new(0, 0, 10, 10);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        let b = Region::new(5, 0, 10, 10);
        // Intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
        let degenerate = Region::new(0, 0, 0, 0);
        assert_eq!(degenerate.iou(&degenerate), 0.0);
        assert_eq!(a.iou(&Region::new(50, 50, 1, 1)), 0.0);
    }

    #[test]
    fn verdict_round_trips() {
        assert!(Verdict::from_same(true).is_same());
        assert!(!Verdict::from_same(false).is_same());
    }

    #[test]
    fn answer_constructors_and_kind_names() {
        assert_eq!(Answer::text("Dogs"), Answer::Text(Label::new("dog")));
        assert_eq!(Answer::verdict(true), Answer::Verdict(Verdict::Same));
        assert_eq!(Answer::text("x").kind_name(), "text");
        assert_eq!(Answer::Pass.kind_name(), "pass");
        assert_eq!(Answer::Choice(1).kind_name(), "choice");
        assert_eq!(
            Answer::Region(Region::new(0, 0, 1, 1)).kind_name(),
            "region"
        );
        assert_eq!(Answer::verdict(false).kind_name(), "verdict");
        assert!(Answer::text("cat").as_text().is_some());
        assert!(Answer::Pass.as_text().is_none());
    }
}
