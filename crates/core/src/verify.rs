//! Output verification mechanisms.
//!
//! The paper stresses that a GWAP's outputs are only useful when the design
//! makes cheating unprofitable and noise self-cancelling. This module
//! implements the three verification mechanisms common to the surveyed
//! systems:
//!
//! * [`TabooList`] — per-task off-limits labels. In the ESP Game, once a
//!   label is verified it becomes taboo, forcing new pairs to produce novel
//!   labels and (as a side effect) breaking naive collusion strategies.
//! * [`AgreementTracker`] — **repetition**: an output is only *promoted*
//!   after `k` distinct pairs have independently produced it for the same
//!   task. reCAPTCHA uses the same idea with k = 2–3 human transcriptions.
//! * [`GoldBank`] — **player testing**: tasks with known answers are
//!   injected occasionally; a player's hit rate on gold tasks estimates
//!   their reliability and gates whether their outputs count.

use crate::answer::Label;
use crate::id::{PlayerId, TaskId};
use hc_collect::{DetMap, DetSet, PlayerStore};
use serde::{Deserialize, Serialize};

/// A set of labels that may not be used for a task.
///
/// # Examples
///
/// ```
/// use hc_core::{verify::TabooList, Label};
/// let taboo = TabooList::from_labels([Label::new("dog"), Label::new("cat")]);
/// assert!(taboo.contains(&Label::new("Dogs"))); // normalization applies
/// assert!(!taboo.contains(&Label::new("bird")));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabooList {
    // Checked on every candidate label; membership-only except for the
    // explicitly order-unspecified `iter()`. Serialization sorts at the
    // boundary, so the wire format matches the old BTreeSet exactly.
    labels: DetSet<Label>,
}

impl TabooList {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        TabooList::default()
    }

    /// Builds a list from labels.
    #[must_use]
    pub fn from_labels<I: IntoIterator<Item = Label>>(labels: I) -> Self {
        TabooList {
            labels: labels.into_iter().collect(),
        }
    }

    /// Adds a label; returns `true` if it was new.
    pub fn insert(&mut self, label: Label) -> bool {
        self.labels.insert(label)
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, label: &Label) -> bool {
        self.labels.contains(label)
    }

    /// Number of taboo labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when no labels are taboo.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over taboo labels in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Label> {
        self.labels.iter()
    }
}

/// Repetition-based promotion: counts independent agreements per
/// `(task, label)` and promotes at a threshold.
///
/// "Independent" is enforced per contributing *pair signature*: the same
/// pair of players agreeing twice on the same label counts once. (The
/// deployed ESP Game used IP-level separation; player identity is the
/// simulation-faithful analogue.)
#[derive(Debug, Clone, Default)]
pub struct AgreementTracker {
    /// (task, label) -> set of contributing pair signatures. Touched on
    /// every agreement; lookup/insert only — never iterated.
    support: DetMap<(TaskId, Label), DetSet<(PlayerId, PlayerId)>>,
    threshold: u32,
    promoted: DetSet<(TaskId, Label)>,
}

impl AgreementTracker {
    /// Creates a tracker that promotes after `threshold` independent
    /// agreements (a threshold of 0 is coerced to 1).
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        AgreementTracker {
            support: DetMap::new(),
            threshold: threshold.max(1),
            promoted: DetSet::new(),
        }
    }

    /// The promotion threshold.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records an agreement between `a` and `b` on `(task, label)`.
    /// Returns `true` exactly when this record *newly promotes* the output.
    pub fn record(&mut self, task: TaskId, label: Label, a: PlayerId, b: PlayerId) -> bool {
        let pair = if a <= b { (a, b) } else { (b, a) };
        let key = (task, label);
        if self.promoted.contains(&key) {
            return false;
        }
        let set = self.support.entry(key.clone()).or_default();
        set.insert(pair);
        if set.len() as u32 >= self.threshold {
            self.promoted.insert(key);
            true
        } else {
            false
        }
    }

    /// Current independent-support count for `(task, label)`.
    #[must_use]
    pub fn support(&self, task: TaskId, label: &Label) -> u32 {
        self.support
            .get(&(task, label.clone()))
            .map_or(0, |s| s.len() as u32)
    }

    /// Whether `(task, label)` has been promoted.
    #[must_use]
    pub fn is_promoted(&self, task: TaskId, label: &Label) -> bool {
        self.promoted.contains(&(task, label.clone()))
    }

    /// Number of promoted outputs.
    #[must_use]
    pub fn promoted_count(&self) -> usize {
        self.promoted.len()
    }
}

/// Outcome of checking a player's answer against a gold task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoldOutcome {
    /// The answer matched the known-good label.
    Hit,
    /// The answer missed.
    Miss,
    /// The task is not a gold task.
    NotGold,
}

/// Per-player gold-task accuracy record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldRecord {
    /// Gold tasks answered correctly.
    pub hits: u32,
    /// Gold tasks answered incorrectly.
    pub misses: u32,
}

impl GoldRecord {
    /// Total gold tasks seen.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `None` before any gold exposure.
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| f64::from(self.hits) / f64::from(total))
    }
}

/// A bank of tasks with known answers, used to test players.
///
/// # Examples
///
/// ```
/// use hc_core::{verify::{GoldBank, GoldOutcome}, Label, PlayerId, TaskId};
///
/// let mut bank = GoldBank::new(0.7, 5);
/// bank.add_gold(TaskId::new(1), [Label::new("dog")]);
/// let p = PlayerId::new(1);
/// assert_eq!(bank.check(p, TaskId::new(1), &Label::new("Dogs")), GoldOutcome::Hit);
/// assert_eq!(bank.check(p, TaskId::new(2), &Label::new("x")), GoldOutcome::NotGold);
/// assert!(bank.is_trusted(p)); // too little evidence to distrust yet
/// ```
#[derive(Debug, Clone)]
pub struct GoldBank {
    // Both maps are lookup/insert-only (never iterated), so the swap to
    // deterministic open addressing cannot change observable behaviour.
    answers: DetMap<TaskId, DetSet<Label>>,
    records: PlayerStore<GoldRecord>,
    /// Minimum accuracy to stay trusted once enough gold has been seen.
    min_accuracy: f64,
    /// Evidence threshold: below this many gold exposures, players are
    /// trusted by default (innocent until tested).
    min_evidence: u32,
}

impl GoldBank {
    /// Creates a bank requiring `min_accuracy` over at least `min_evidence`
    /// gold exposures before distrusting a player. `min_accuracy` is
    /// clamped to `[0, 1]`.
    #[must_use]
    pub fn new(min_accuracy: f64, min_evidence: u32) -> Self {
        GoldBank {
            answers: DetMap::new(),
            records: PlayerStore::new(),
            min_accuracy: min_accuracy.clamp(0.0, 1.0),
            min_evidence: min_evidence.max(1),
        }
    }

    /// Registers a gold task with its acceptable labels.
    pub fn add_gold<I: IntoIterator<Item = Label>>(&mut self, task: TaskId, accepted: I) {
        self.answers.entry(task).or_default().extend(accepted);
    }

    /// `true` if `task` is a gold task.
    #[must_use]
    pub fn is_gold(&self, task: TaskId) -> bool {
        self.answers.contains_key(&task)
    }

    /// Number of registered gold tasks.
    #[must_use]
    pub fn gold_count(&self) -> usize {
        self.answers.len()
    }

    /// Checks `answer` for `player` against the gold answers of `task`,
    /// updating the player's record.
    pub fn check(&mut self, player: PlayerId, task: TaskId, answer: &Label) -> GoldOutcome {
        let Some(accepted) = self.answers.get(&task) else {
            return GoldOutcome::NotGold;
        };
        let record = self
            .records
            .get_or_insert_with(player.raw(), GoldRecord::default);
        if accepted.contains(answer) {
            record.hits += 1;
            GoldOutcome::Hit
        } else {
            record.misses += 1;
            GoldOutcome::Miss
        }
    }

    /// The player's gold record, if any gold tasks were seen.
    #[must_use]
    pub fn record(&self, player: PlayerId) -> Option<GoldRecord> {
        self.records.get(player.raw()).copied()
    }

    /// Whether the player's outputs should count: trusted by default until
    /// `min_evidence` gold exposures exist, then gated on `min_accuracy`.
    #[must_use]
    pub fn is_trusted(&self, player: PlayerId) -> bool {
        match self.records.get(player.raw()) {
            None => true,
            Some(r) if r.total() < self.min_evidence => true,
            Some(r) => r.accuracy().unwrap_or(1.0) >= self.min_accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taboo_list_basics() {
        let mut t = TabooList::new();
        assert!(t.is_empty());
        assert!(t.insert(Label::new("dog")));
        assert!(!t.insert(Label::new("Dogs")), "normalized duplicate");
        assert_eq!(t.len(), 1);
        assert!(t.contains(&Label::new("DOG")));
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn agreement_promotes_at_threshold() {
        let mut tr = AgreementTracker::new(2);
        let task = TaskId::new(1);
        let l = Label::new("dog");
        assert!(!tr.record(task, l.clone(), PlayerId::new(1), PlayerId::new(2)));
        assert_eq!(tr.support(task, &l), 1);
        assert!(!tr.is_promoted(task, &l));
        assert!(tr.record(task, l.clone(), PlayerId::new(3), PlayerId::new(4)));
        assert!(tr.is_promoted(task, &l));
        assert_eq!(tr.promoted_count(), 1);
    }

    #[test]
    fn same_pair_counts_once() {
        let mut tr = AgreementTracker::new(2);
        let task = TaskId::new(1);
        let l = Label::new("cat");
        let (a, b) = (PlayerId::new(1), PlayerId::new(2));
        assert!(!tr.record(task, l.clone(), a, b));
        assert!(
            !tr.record(task, l.clone(), b, a),
            "order-insensitive pair signature"
        );
        assert_eq!(tr.support(task, &l), 1);
    }

    #[test]
    fn promotion_fires_exactly_once() {
        let mut tr = AgreementTracker::new(1);
        let task = TaskId::new(1);
        let l = Label::new("sun");
        assert!(tr.record(task, l.clone(), PlayerId::new(1), PlayerId::new(2)));
        assert!(
            !tr.record(task, l.clone(), PlayerId::new(3), PlayerId::new(4)),
            "already promoted"
        );
    }

    #[test]
    fn zero_threshold_coerces_to_one() {
        let tr = AgreementTracker::new(0);
        assert_eq!(tr.threshold(), 1);
    }

    #[test]
    fn labels_and_tasks_are_independent_keys() {
        let mut tr = AgreementTracker::new(1);
        tr.record(
            TaskId::new(1),
            Label::new("dog"),
            PlayerId::new(1),
            PlayerId::new(2),
        );
        assert!(!tr.is_promoted(TaskId::new(2), &Label::new("dog")));
        assert!(!tr.is_promoted(TaskId::new(1), &Label::new("cat")));
    }

    #[test]
    fn gold_bank_tracks_accuracy_and_trust() {
        let mut bank = GoldBank::new(0.7, 3);
        bank.add_gold(TaskId::new(1), [Label::new("dog"), Label::new("puppy")]);
        assert!(bank.is_gold(TaskId::new(1)));
        assert_eq!(bank.gold_count(), 1);

        let p = PlayerId::new(5);
        assert_eq!(
            bank.check(p, TaskId::new(1), &Label::new("puppy")),
            GoldOutcome::Hit
        );
        assert_eq!(
            bank.check(p, TaskId::new(1), &Label::new("fish")),
            GoldOutcome::Miss
        );
        // Only 2 exposures (< min_evidence 3): still trusted.
        assert!(bank.is_trusted(p));
        assert_eq!(
            bank.check(p, TaskId::new(1), &Label::new("rock")),
            GoldOutcome::Miss
        );
        // 1/3 accuracy < 0.7: distrusted.
        assert!(!bank.is_trusted(p));
        let r = bank.record(p).unwrap();
        assert_eq!(r.total(), 3);
        assert!((r.accuracy().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_players_are_trusted() {
        let bank = GoldBank::new(0.9, 1);
        assert!(bank.is_trusted(PlayerId::new(404)));
        assert!(bank.record(PlayerId::new(404)).is_none());
    }

    #[test]
    fn non_gold_tasks_do_not_touch_records() {
        let mut bank = GoldBank::new(0.5, 1);
        let p = PlayerId::new(1);
        assert_eq!(
            bank.check(p, TaskId::new(9), &Label::new("x")),
            GoldOutcome::NotGold
        );
        assert!(bank.record(p).is_none());
    }

    #[test]
    fn accuracy_none_before_exposure() {
        let r = GoldRecord::default();
        assert_eq!(r.accuracy(), None);
        assert_eq!(r.total(), 0);
    }
}
