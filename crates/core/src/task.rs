//! Problem instances ("tasks") and task scheduling.
//!
//! A task is one unit of work the crowd should solve: an image to label, a
//! word to transcribe, an audio clip to tag. The platform keeps tasks in a
//! [`TaskQueue`] that implements the scheduling policy the deployed games
//! used: serve the task with the fewest verified outputs first (so coverage
//! grows evenly), and never show a player the same task twice within a
//! session.

use crate::answer::Label;
use crate::id::{PlayerId, TaskId};
use hc_collect::{DetMap, DetSet, PlayerStore};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// What a task presents to the player — an abstract stimulus reference.
///
/// The synthetic worlds in `hc-games` attach ground-truth semantics to
/// these references; the platform itself treats them opaquely.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Stimulus {
    /// An image, referenced by an index into a world's image table.
    Image(u64),
    /// An audio clip, referenced by index.
    AudioClip(u64),
    /// A single word (e.g. a scanned word for transcription).
    Word(String),
    /// A short text snippet.
    TextSnippet(String),
    /// An opaque, domain-specific reference.
    Custom(u64),
}

impl Stimulus {
    /// A short kind name for diagnostics.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Stimulus::Image(_) => "image",
            Stimulus::AudioClip(_) => "audio",
            Stimulus::Word(_) => "word",
            Stimulus::TextSnippet(_) => "text",
            Stimulus::Custom(_) => "custom",
        }
    }
}

/// Lifecycle of a task inside a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Not yet served to any round.
    Fresh,
    /// Served at least once but not yet verified to the job's threshold.
    InProgress,
    /// Enough verified outputs were collected; the task is done.
    Completed,
    /// Administratively removed (e.g. malformed stimulus).
    Retired,
}

/// One problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// What the player sees.
    pub stimulus: Stimulus,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Labels that are off-limits for this task (ESP taboo words). Grows as
    /// outputs are verified.
    pub taboo: Vec<Label>,
    /// How many rounds have served this task.
    pub times_served: u32,
    /// How many verified outputs this task has produced.
    pub verified_outputs: u32,
}

impl Task {
    /// Creates a fresh task.
    #[must_use]
    pub fn new(id: TaskId, stimulus: Stimulus) -> Self {
        Task {
            id,
            stimulus,
            state: TaskState::Fresh,
            taboo: Vec::new(),
            times_served: 0,
            verified_outputs: 0,
        }
    }
}

/// Priority entry: tasks with fewer verified outputs (then fewer serves)
/// come first. `BinaryHeap` is a max-heap, so orderings are reversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    verified: u32,
    served: u32,
    id: TaskId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .verified
            .cmp(&self.verified)
            .then(other.served.cmp(&self.served))
            .then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The platform's task store plus its serving policy.
///
/// `next_for` returns the least-covered live task that none of the given
/// players has already seen in their current session; `record_served` and
/// `record_verified` feed the coverage counters back.
///
/// # Examples
///
/// ```
/// use hc_core::{Stimulus, Task, TaskQueue, TaskId, PlayerId};
///
/// let mut q = TaskQueue::new();
/// for i in 0..3 {
///     q.insert(Task::new(TaskId::new(i), Stimulus::Image(i)));
/// }
/// let (a, b) = (PlayerId::new(1), PlayerId::new(2));
/// let first = q.next_for(&[a, b]).unwrap();
/// q.record_served(first, &[a, b]);
/// // The same pair is never served the same task twice.
/// let second = q.next_for(&[a, b]).unwrap();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskQueue {
    // Both maps are on the serving hot path (every `next_for` /
    // `record_served`). `tasks` is iterated only for order-free counts
    // and the explicitly order-unspecified `iter()`; `seen` is
    // membership-only. Scheduling order itself comes from the heap.
    tasks: DetMap<TaskId, Task>,
    /// Lazy priority heap; entries may be stale and are validated on pop.
    heap: BinaryHeap<QueueEntry>,
    seen: PlayerStore<DetSet<TaskId>>,
}

impl TaskQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        TaskQueue::default()
    }

    /// Adds a task to the store.
    pub fn insert(&mut self, task: Task) {
        self.heap.push(QueueEntry {
            verified: task.verified_outputs,
            served: task.times_served,
            id: task.id,
        });
        self.tasks.insert(task.id, task);
    }

    /// Looks up a task.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut Task> {
        self.tasks.get_mut(&id)
    }

    /// Number of stored tasks (any state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of tasks in [`TaskState::Completed`].
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| t.state == TaskState::Completed)
            .count()
    }

    /// Chooses the next task for the given players: least verified, then
    /// least served, excluding completed/retired tasks and tasks any of the
    /// players has already seen. Returns `None` when nothing qualifies.
    pub fn next_for(&mut self, players: &[PlayerId]) -> Option<TaskId> {
        let mut skipped = Vec::new();
        let mut found = None;
        while let Some(entry) = self.heap.pop() {
            let Some(task) = self.tasks.get(&entry.id) else {
                continue; // deleted
            };
            // Stale heap entry: re-push the fresh one and retry.
            if task.verified_outputs != entry.verified || task.times_served != entry.served {
                self.heap.push(QueueEntry {
                    verified: task.verified_outputs,
                    served: task.times_served,
                    id: task.id,
                });
                continue;
            }
            if matches!(task.state, TaskState::Completed | TaskState::Retired) {
                continue; // permanently out; drop entry
            }
            let seen_by_any = players.iter().any(|p| {
                self.seen
                    .get(p.raw())
                    .is_some_and(|seen| seen.contains(&task.id))
            });
            if seen_by_any {
                skipped.push(entry);
                continue;
            }
            found = Some(entry.id);
            skipped.push(entry); // keep it in the heap for future serves
            break;
        }
        for entry in skipped {
            self.heap.push(entry);
        }
        found
    }

    /// Records that `task` was served to `players` (increments the serve
    /// counter and marks it seen by each player).
    pub fn record_served(&mut self, task: TaskId, players: &[PlayerId]) {
        if let Some(t) = self.tasks.get_mut(&task) {
            t.times_served += 1;
            if t.state == TaskState::Fresh {
                t.state = TaskState::InProgress;
            }
        }
        for p in players {
            self.seen
                .get_or_insert_with(p.raw(), DetSet::new)
                .insert(task);
        }
    }

    /// Records a verified output for `task`; marks the task completed when
    /// `completion_threshold` verified outputs accumulate (0 = never
    /// auto-complete).
    pub fn record_verified(&mut self, task: TaskId, completion_threshold: u32) {
        if let Some(t) = self.tasks.get_mut(&task) {
            t.verified_outputs += 1;
            if t.state == TaskState::Fresh {
                t.state = TaskState::InProgress;
            }
            if completion_threshold > 0 && t.verified_outputs >= completion_threshold {
                t.state = TaskState::Completed;
            }
        }
    }

    /// Adds a taboo label to a task (ESP Game: verified labels become
    /// off-limits so future pairs produce *new* labels).
    pub fn add_taboo(&mut self, task: TaskId, label: Label) {
        if let Some(t) = self.tasks.get_mut(&task) {
            if !t.taboo.contains(&label) {
                t.taboo.push(label);
            }
        }
    }

    /// Forgets which tasks `player` has seen (called when their session
    /// ends, so a future session may revisit tasks).
    pub fn clear_seen(&mut self, player: PlayerId) {
        self.seen.take(player.raw());
    }

    /// Iterates over all tasks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(i: u64) -> Task {
        Task::new(TaskId::new(i), Stimulus::Image(i))
    }

    #[test]
    fn serves_least_covered_first() {
        let mut q = TaskQueue::new();
        q.insert(task(1));
        q.insert(task(2));
        // Give task 1 a verified output; task 2 should now be preferred.
        q.record_verified(TaskId::new(1), 0);
        let next = q.next_for(&[]).unwrap();
        assert_eq!(next, TaskId::new(2));
    }

    #[test]
    fn never_repeats_for_same_player() {
        let mut q = TaskQueue::new();
        q.insert(task(1));
        q.insert(task(2));
        let p = PlayerId::new(9);
        let first = q.next_for(&[p]).unwrap();
        q.record_served(first, &[p]);
        let second = q.next_for(&[p]).unwrap();
        assert_ne!(first, second);
        q.record_served(second, &[p]);
        assert_eq!(q.next_for(&[p]), None, "both tasks seen");
        // A fresh player can still be served.
        assert!(q.next_for(&[PlayerId::new(10)]).is_some());
    }

    #[test]
    fn clear_seen_allows_revisit() {
        let mut q = TaskQueue::new();
        q.insert(task(1));
        let p = PlayerId::new(1);
        let t = q.next_for(&[p]).unwrap();
        q.record_served(t, &[p]);
        assert_eq!(q.next_for(&[p]), None);
        q.clear_seen(p);
        assert_eq!(q.next_for(&[p]), Some(t));
    }

    #[test]
    fn completion_threshold_retires_tasks_from_serving() {
        let mut q = TaskQueue::new();
        q.insert(task(1));
        q.record_verified(TaskId::new(1), 2);
        assert_eq!(q.get(TaskId::new(1)).unwrap().state, TaskState::InProgress);
        q.record_verified(TaskId::new(1), 2);
        assert_eq!(q.get(TaskId::new(1)).unwrap().state, TaskState::Completed);
        assert_eq!(q.next_for(&[]), None);
        assert_eq!(q.completed_count(), 1);
    }

    #[test]
    fn serving_transitions_fresh_to_in_progress() {
        let mut q = TaskQueue::new();
        q.insert(task(1));
        assert_eq!(q.get(TaskId::new(1)).unwrap().state, TaskState::Fresh);
        q.record_served(TaskId::new(1), &[]);
        assert_eq!(q.get(TaskId::new(1)).unwrap().state, TaskState::InProgress);
        assert_eq!(q.get(TaskId::new(1)).unwrap().times_served, 1);
    }

    #[test]
    fn taboo_labels_accumulate_without_duplicates() {
        let mut q = TaskQueue::new();
        q.insert(task(1));
        q.add_taboo(TaskId::new(1), Label::new("dog"));
        q.add_taboo(TaskId::new(1), Label::new("Dogs")); // normalizes equal
        q.add_taboo(TaskId::new(1), Label::new("cat"));
        assert_eq!(q.get(TaskId::new(1)).unwrap().taboo.len(), 2);
    }

    #[test]
    fn heap_recovers_after_stale_entries() {
        let mut q = TaskQueue::new();
        q.insert(task(1));
        q.insert(task(2));
        q.insert(task(3));
        // Mutate coverage out from under the heap repeatedly.
        for _ in 0..5 {
            q.record_verified(TaskId::new(2), 0);
        }
        q.record_served(TaskId::new(3), &[]);
        let next = q.next_for(&[]).unwrap();
        assert_eq!(next, TaskId::new(1), "least verified and least served");
    }

    #[test]
    fn stimulus_kind_names() {
        assert_eq!(Stimulus::Image(0).kind_name(), "image");
        assert_eq!(Stimulus::AudioClip(0).kind_name(), "audio");
        assert_eq!(Stimulus::Word("x".into()).kind_name(), "word");
        assert_eq!(Stimulus::TextSnippet("x".into()).kind_name(), "text");
        assert_eq!(Stimulus::Custom(0).kind_name(), "custom");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = TaskQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_for(&[PlayerId::new(1)]), None);
        assert_eq!(q.completed_count(), 0);
        q.record_verified(TaskId::new(99), 1); // unknown id: no-op
        q.add_taboo(TaskId::new(99), Label::new("x"));
    }
}
