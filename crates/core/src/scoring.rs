//! Scoring, skill levels and leaderboards.
//!
//! The paper lists the retention mechanics that turn a labeling chore into
//! a game people *choose* to play: timed response, score keeping, skill
//! levels, and high-score lists. These directly drive ALP (average lifetime
//! play) and therefore expected contribution, so they are first-class
//! library objects here — experiment F6 sweeps their effect.

use crate::id::PlayerId;
use hc_collect::PlayerStore;
use serde::{Deserialize, Serialize};

/// How round events convert into points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreRule {
    /// Points for a matched/guessed round.
    pub match_points: u32,
    /// Extra points per consecutive match beyond the first (streak bonus),
    /// capped by `max_streak_bonus`.
    pub streak_bonus: u32,
    /// Cap on the total streak bonus per round.
    pub max_streak_bonus: u32,
    /// Points for completing a round at all (participation).
    pub round_points: u32,
    /// Bonus for finishing a round quickly: awarded when the round took at
    /// most `fast_threshold_secs`.
    pub fast_bonus: u32,
    /// Threshold (seconds) for the fast bonus.
    pub fast_threshold_secs: f64,
}

impl Default for ScoreRule {
    /// Values modeled on the deployed ESP Game economy.
    fn default() -> Self {
        ScoreRule {
            match_points: 100,
            streak_bonus: 20,
            max_streak_bonus: 100,
            round_points: 5,
            fast_bonus: 25,
            fast_threshold_secs: 20.0,
        }
    }
}

impl ScoreRule {
    /// Points for one round given whether it matched, the time it took and
    /// the player's current streak (consecutive matches *before* this
    /// round).
    #[must_use]
    pub fn round_score(&self, matched: bool, round_secs: f64, streak_before: u32) -> u32 {
        let mut points = self.round_points;
        if matched {
            points += self.match_points;
            let bonus = self
                .streak_bonus
                .saturating_mul(streak_before)
                .min(self.max_streak_bonus);
            points += bonus;
            if round_secs <= self.fast_threshold_secs {
                points += self.fast_bonus;
            }
        }
        points
    }
}

/// Discrete skill tiers unlocked by cumulative score. Thresholds follow the
/// ESP Game's published ladder shape (geometric-ish growth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SkillLevel {
    /// 0+ points.
    Newcomer,
    /// 5,000+ points.
    Apprentice,
    /// 25,000+ points.
    Expert,
    /// 100,000+ points.
    Master,
    /// 500,000+ points.
    Grandmaster,
}

impl SkillLevel {
    /// The level earned by a cumulative score.
    #[must_use]
    pub fn for_score(score: u64) -> SkillLevel {
        match score {
            0..=4_999 => SkillLevel::Newcomer,
            5_000..=24_999 => SkillLevel::Apprentice,
            25_000..=99_999 => SkillLevel::Expert,
            100_000..=499_999 => SkillLevel::Master,
            _ => SkillLevel::Grandmaster,
        }
    }

    /// Points still needed to reach the next level (`None` at the top).
    #[must_use]
    pub fn points_to_next(score: u64) -> Option<u64> {
        let next = match SkillLevel::for_score(score) {
            SkillLevel::Newcomer => 5_000,
            SkillLevel::Apprentice => 25_000,
            SkillLevel::Expert => 100_000,
            SkillLevel::Master => 500_000,
            SkillLevel::Grandmaster => return None,
        };
        Some(next - score)
    }
}

impl std::fmt::Display for SkillLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SkillLevel::Newcomer => "newcomer",
            SkillLevel::Apprentice => "apprentice",
            SkillLevel::Expert => "expert",
            SkillLevel::Master => "master",
            SkillLevel::Grandmaster => "grandmaster",
        };
        f.write_str(name)
    }
}

/// One player's running score state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlayerScore {
    /// Cumulative points across all sessions.
    pub total: u64,
    /// Current consecutive-match streak.
    pub streak: u32,
    /// Best streak ever.
    pub best_streak: u32,
    /// Rounds played.
    pub rounds: u64,
    /// Rounds that matched.
    pub matches: u64,
}

impl PlayerScore {
    /// Current skill level.
    #[must_use]
    pub fn level(&self) -> SkillLevel {
        SkillLevel::for_score(self.total)
    }

    /// Match rate in `[0, 1]`, or 0 before any round.
    #[must_use]
    pub fn match_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.matches as f64 / self.rounds as f64
        }
    }
}

/// The platform's score book: per-player totals, streaks and levels.
///
/// # Examples
///
/// ```
/// use hc_core::{Scoreboard, ScoreRule, PlayerId, SkillLevel};
///
/// let mut board = Scoreboard::new(ScoreRule::default());
/// let p = PlayerId::new(1);
/// let pts = board.record_round(p, true, 10.0);
/// assert!(pts >= 100);
/// assert_eq!(board.score(p).unwrap().level(), SkillLevel::Newcomer);
/// ```
#[derive(Debug, Clone)]
pub struct Scoreboard {
    rule: ScoreRule,
    // Dense per-player store; `iter()` yields id order, which is the
    // BTreeMap key order the leaderboard always saw.
    scores: PlayerStore<PlayerScore>,
}

impl Scoreboard {
    /// Creates a scoreboard with the given rule.
    #[must_use]
    pub fn new(rule: ScoreRule) -> Self {
        Scoreboard {
            rule,
            scores: PlayerStore::new(),
        }
    }

    /// The active rule.
    #[must_use]
    pub fn rule(&self) -> &ScoreRule {
        &self.rule
    }

    /// Records one round for `player`; returns the points awarded.
    pub fn record_round(&mut self, player: PlayerId, matched: bool, round_secs: f64) -> u32 {
        let entry = self
            .scores
            .get_or_insert_with(player.raw(), PlayerScore::default);
        let points = self.rule.round_score(matched, round_secs, entry.streak);
        entry.total += u64::from(points);
        entry.rounds += 1;
        if matched {
            entry.matches += 1;
            entry.streak += 1;
            entry.best_streak = entry.best_streak.max(entry.streak);
        } else {
            entry.streak = 0;
        }
        points
    }

    /// A player's score state.
    #[must_use]
    pub fn score(&self, player: PlayerId) -> Option<&PlayerScore> {
        self.scores.get(player.raw())
    }

    /// Number of players with any recorded round.
    #[must_use]
    pub fn player_count(&self) -> usize {
        self.scores.len()
    }

    /// Builds the top-`n` leaderboard.
    #[must_use]
    pub fn leaderboard(&self, n: usize) -> Leaderboard {
        let mut entries: Vec<(PlayerId, u64)> = self
            .scores
            .iter()
            .map(|(p, s)| (PlayerId::new(p), s.total))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        Leaderboard { entries }
    }
}

/// A ranked high-score list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Leaderboard {
    entries: Vec<(PlayerId, u64)>,
}

impl Leaderboard {
    /// Ranked entries, best first.
    #[must_use]
    pub fn entries(&self) -> &[(PlayerId, u64)] {
        &self.entries
    }

    /// 1-based rank of a player, if present.
    #[must_use]
    pub fn rank_of(&self, player: PlayerId) -> Option<usize> {
        self.entries
            .iter()
            .position(|(p, _)| *p == player)
            .map(|i| i + 1)
    }

    /// Number of listed players.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nobody has scored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_score_components() {
        let rule = ScoreRule::default();
        // Non-match: participation only.
        assert_eq!(rule.round_score(false, 5.0, 3), 5);
        // Match, slow, no streak.
        assert_eq!(rule.round_score(true, 100.0, 0), 105);
        // Match, fast, no streak.
        assert_eq!(rule.round_score(true, 10.0, 0), 130);
        // Match, fast, streak 2 => +40 bonus.
        assert_eq!(rule.round_score(true, 10.0, 2), 170);
        // Streak bonus caps at 100.
        assert_eq!(rule.round_score(true, 100.0, 50), 205);
    }

    #[test]
    fn skill_ladder_thresholds() {
        assert_eq!(SkillLevel::for_score(0), SkillLevel::Newcomer);
        assert_eq!(SkillLevel::for_score(4_999), SkillLevel::Newcomer);
        assert_eq!(SkillLevel::for_score(5_000), SkillLevel::Apprentice);
        assert_eq!(SkillLevel::for_score(25_000), SkillLevel::Expert);
        assert_eq!(SkillLevel::for_score(100_000), SkillLevel::Master);
        assert_eq!(SkillLevel::for_score(1_000_000), SkillLevel::Grandmaster);
        assert!(SkillLevel::Newcomer < SkillLevel::Grandmaster);
    }

    #[test]
    fn points_to_next_level() {
        assert_eq!(SkillLevel::points_to_next(0), Some(5_000));
        assert_eq!(SkillLevel::points_to_next(4_000), Some(1_000));
        assert_eq!(SkillLevel::points_to_next(600_000), None);
    }

    #[test]
    fn skill_display() {
        assert_eq!(SkillLevel::Expert.to_string(), "expert");
    }

    #[test]
    fn streaks_build_and_break() {
        let mut b = Scoreboard::new(ScoreRule::default());
        let p = PlayerId::new(1);
        b.record_round(p, true, 10.0);
        b.record_round(p, true, 10.0);
        b.record_round(p, true, 10.0);
        assert_eq!(b.score(p).unwrap().streak, 3);
        b.record_round(p, false, 10.0);
        let s = b.score(p).unwrap();
        assert_eq!(s.streak, 0);
        assert_eq!(s.best_streak, 3);
        assert_eq!(s.rounds, 4);
        assert_eq!(s.matches, 3);
        assert!((s.match_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn streak_bonus_grows_across_rounds() {
        let mut b = Scoreboard::new(ScoreRule::default());
        let p = PlayerId::new(1);
        let first = b.record_round(p, true, 10.0);
        let second = b.record_round(p, true, 10.0);
        assert!(second > first, "streak bonus should raise per-round points");
    }

    #[test]
    fn leaderboard_ranks_by_total_then_id() {
        let mut b = Scoreboard::new(ScoreRule::default());
        for _ in 0..3 {
            b.record_round(PlayerId::new(1), true, 10.0);
        }
        b.record_round(PlayerId::new(2), true, 10.0);
        b.record_round(PlayerId::new(3), false, 10.0);
        let lb = b.leaderboard(10);
        assert_eq!(lb.rank_of(PlayerId::new(1)), Some(1));
        assert_eq!(lb.rank_of(PlayerId::new(2)), Some(2));
        assert_eq!(lb.rank_of(PlayerId::new(3)), Some(3));
        assert_eq!(lb.rank_of(PlayerId::new(99)), None);
        assert_eq!(lb.len(), 3);

        let top1 = b.leaderboard(1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1.entries()[0].0, PlayerId::new(1));
    }

    #[test]
    fn empty_scoreboard() {
        let b = Scoreboard::new(ScoreRule::default());
        assert_eq!(b.player_count(), 0);
        assert!(b.leaderboard(5).is_empty());
        assert!(b.score(PlayerId::new(1)).is_none());
        assert_eq!(b.rule().match_points, 100);
    }

    #[test]
    fn match_rate_zero_before_rounds() {
        let s = PlayerScore::default();
        assert_eq!(s.match_rate(), 0.0);
        assert_eq!(s.level(), SkillLevel::Newcomer);
    }
}
