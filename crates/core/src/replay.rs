//! Recorded sessions and replay bots.
//!
//! When too few players are online to form live pairs, the deployed ESP
//! Game paired the lone player with a **recording** of a past game on the
//! same images: the recorded partner "types" its old guesses with their
//! original timing, and agreement still verifies labels (the recorded
//! player was live once, and could not have coordinated with the current
//! one). [`ReplayStore`] keeps per-task recorded rounds; the platform
//! samples one when the matchmaker falls back.

use crate::answer::Label;
use crate::id::{PlayerId, TaskId};
use hc_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded round: the guess stream a player produced for a task, as
/// `(delay since round start, label)` events in nondecreasing delay order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedRound {
    /// The task the recording belongs to.
    pub task: TaskId,
    /// The player who was recorded (for pair-signature bookkeeping).
    pub recorded_player: PlayerId,
    /// Timed guesses, sorted by delay.
    pub events: Vec<(SimDuration, Label)>,
}

impl RecordedRound {
    /// Creates a recording; events are sorted by delay on construction.
    #[must_use]
    pub fn new(
        task: TaskId,
        recorded_player: PlayerId,
        mut events: Vec<(SimDuration, Label)>,
    ) -> Self {
        events.sort_by_key(|(d, _)| *d);
        RecordedRound {
            task,
            recorded_player,
            events,
        }
    }

    /// Number of recorded guesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the recording is silent.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A sequence of recorded rounds replayed as one "bot" session partner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedSession {
    /// The rounds, in play order.
    pub rounds: Vec<RecordedRound>,
}

/// Per-task bank of recorded rounds.
///
/// # Examples
///
/// ```
/// use hc_core::prelude::*;
/// use rand::SeedableRng;
///
/// let mut store = ReplayStore::new(4);
/// store.record(RecordedRound::new(
///     TaskId::new(1),
///     PlayerId::new(7),
///     vec![(SimDuration::from_secs(3), Label::new("dog"))],
/// ));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let rec = store.sample(TaskId::new(1), &mut rng).unwrap();
/// assert_eq!(rec.events[0].1, Label::new("dog"));
/// assert!(store.sample(TaskId::new(2), &mut rng).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplayStore {
    by_task: BTreeMap<TaskId, Vec<RecordedRound>>,
    capacity_per_task: usize,
    recorded_total: u64,
}

impl ReplayStore {
    /// Creates a store keeping at most `capacity_per_task` recordings per
    /// task (oldest evicted first; 0 is coerced to 1).
    #[must_use]
    pub fn new(capacity_per_task: usize) -> Self {
        ReplayStore {
            by_task: BTreeMap::new(),
            capacity_per_task: capacity_per_task.max(1),
            recorded_total: 0,
        }
    }

    /// Stores a recording (evicting the oldest beyond capacity). Silent
    /// recordings are not stored — a mute partner verifies nothing.
    pub fn record(&mut self, round: RecordedRound) {
        if round.is_empty() {
            return;
        }
        let entry = self.by_task.entry(round.task).or_default();
        entry.push(round);
        if entry.len() > self.capacity_per_task {
            entry.remove(0);
        }
        self.recorded_total += 1;
    }

    /// Samples a uniformly random recording for `task`.
    pub fn sample<R: Rng + ?Sized>(&self, task: TaskId, rng: &mut R) -> Option<&RecordedRound> {
        let list = self.by_task.get(&task)?;
        if list.is_empty() {
            return None;
        }
        Some(&list[rng.gen_range(0..list.len())])
    }

    /// Number of tasks with at least one recording.
    #[must_use]
    pub fn covered_tasks(&self) -> usize {
        self.by_task.len()
    }

    /// Total recordings ever stored (including evicted).
    #[must_use]
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total
    }

    /// `true` if `task` has at least one recording.
    #[must_use]
    pub fn has_recording(&self, task: TaskId) -> bool {
        self.by_task.get(&task).is_some_and(|l| !l.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    fn rec(task: u64, player: u64, labels: &[&str]) -> RecordedRound {
        RecordedRound::new(
            TaskId::new(task),
            PlayerId::new(player),
            labels
                .iter()
                .enumerate()
                .map(|(i, l)| (SimDuration::from_secs(i as u64), Label::new(l)))
                .collect(),
        )
    }

    #[test]
    fn events_sort_by_delay_on_construction() {
        let r = RecordedRound::new(
            TaskId::new(1),
            PlayerId::new(1),
            vec![
                (SimDuration::from_secs(9), Label::new("late")),
                (SimDuration::from_secs(1), Label::new("early")),
            ],
        );
        assert_eq!(r.events[0].1, Label::new("early"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_recordings_are_dropped() {
        let mut s = ReplayStore::new(4);
        s.record(RecordedRound::new(TaskId::new(1), PlayerId::new(1), vec![]));
        assert!(!s.has_recording(TaskId::new(1)));
        assert_eq!(s.recorded_total(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = ReplayStore::new(2);
        s.record(rec(1, 1, &["a"]));
        s.record(rec(1, 2, &["b"]));
        s.record(rec(1, 3, &["c"]));
        assert_eq!(s.recorded_total(), 3);
        // Only players 2 and 3 remain; sample many times and check.
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(TaskId::new(1), &mut r).unwrap().recorded_player);
        }
        assert!(!seen.contains(&PlayerId::new(1)));
        assert!(seen.contains(&PlayerId::new(2)));
        assert!(seen.contains(&PlayerId::new(3)));
    }

    #[test]
    fn sampling_uncovered_task_is_none() {
        let s = ReplayStore::new(4);
        let mut r = rng();
        assert!(s.sample(TaskId::new(1), &mut r).is_none());
        assert_eq!(s.covered_tasks(), 0);
    }

    #[test]
    fn coverage_counts_tasks() {
        let mut s = ReplayStore::new(4);
        s.record(rec(1, 1, &["a"]));
        s.record(rec(2, 1, &["b"]));
        s.record(rec(2, 2, &["c"]));
        assert_eq!(s.covered_tasks(), 2);
        assert!(s.has_recording(TaskId::new(2)));
    }

    #[test]
    fn zero_capacity_coerced() {
        let mut s = ReplayStore::new(0);
        s.record(rec(1, 1, &["a"]));
        assert!(s.has_recording(TaskId::new(1)));
    }
}
