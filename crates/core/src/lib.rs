//! # hc-core — the human-computation platform library
//!
//! This crate implements the primary contribution of the target paper
//! ("Human Computation", DAC 2009): a platform for channelling human effort
//! — through games — into solving problems computers cannot yet solve. It
//! provides, as reusable library pieces, everything the paper's surveyed
//! systems share:
//!
//! * **The three GWAP templates** ([`templates`]) — *output-agreement*
//!   (ESP Game), *input-agreement* (TagATune), and *inversion-problem*
//!   (Verbosity/Peekaboom) — as explicit round state machines.
//! * **A session engine** ([`session`]) that strings rounds into timed
//!   games between two (possibly replayed) players.
//! * **Scoring mechanics** ([`scoring`]) the paper lists as the player
//!   retention levers: points, streak bonuses, skill levels, leaderboards.
//! * **Output verification** ([`verify`]) — random matching, taboo words,
//!   k-agreement repetition, and gold-answer player testing.
//! * **Anti-cheat** ([`anticheat`]) — reputation tracking, collusion and
//!   spam detection.
//! * **GWAP evaluation metrics** ([`metrics`]) — throughput, average
//!   lifetime play (ALP) and expected contribution, exactly as the paper
//!   defines them.
//! * **Platform orchestration** ([`platform`], [`matchmaker`], [`replay`])
//!   — job/task management, player pairing with a recorded-session
//!   fallback ("bot" partner) when the live population is thin.
//!
//! Concrete games (ESP, TagATune, Verbosity, Peekaboom, Matchin) live in
//! the `hc-games` crate; simulated players live in `hc-crowd`; this crate
//! is deliberately agnostic about *who* produces answers.
//!
//! ## Quick tour
//!
//! ```
//! use hc_core::prelude::*;
//!
//! // An output-agreement round (the ESP Game mechanic): two partners see
//! // the same image and score when their labels agree.
//! let task = TaskId::new(1);
//! let mut round = OutputAgreementRound::new(task, TabooList::default(), SimDuration::from_secs(150));
//! let t0 = SimTime::ZERO;
//! assert!(matches!(
//!     round.submit(Seat::Left, Answer::text("dog"), t0),
//!     SubmitOutcome::Accepted
//! ));
//! let outcome = round.submit(Seat::Right, Answer::text("Dog"), t0 + SimDuration::from_secs(3));
//! assert!(matches!(outcome, SubmitOutcome::Matched(_)));
//! let result = round.finish(t0 + SimDuration::from_secs(3));
//! assert_eq!(result.agreed_label.as_ref().map(|l| l.as_str()), Some("dog")); // normalized
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod answer;
pub mod anticheat;
pub mod bucket;
pub mod error;
pub mod id;
pub mod jobs;
pub mod matchmaker;
pub mod metrics;
pub mod platform;
pub mod replay;
pub mod scoring;
pub mod session;
pub mod task;
pub mod templates;
pub mod text;
pub mod verify;

pub use answer::{Answer, Label, Region, Verdict};
pub use bucket::{BucketLayout, BucketPool};
pub use error::{Error, Result};
pub use id::{JobId, PlayerId, RoundId, SessionId, TaskId};
pub use jobs::{Job, JobBook, JobGoal, JobState};
pub use matchmaker::{
    BatchMatcher, MatchDecision, Matchmaker, MatchmakerConfig, PairKind, PairingPolicy,
};
pub use metrics::{ContributionLedger, GwapMetrics};
pub use platform::{Platform, PlatformConfig, VerifiedLabel};
pub use replay::{RecordedRound, RecordedSession, ReplayStore};
pub use scoring::{Leaderboard, ScoreRule, Scoreboard, SkillLevel};
pub use session::{RoundRecord, Session, SessionConfig, SessionTranscript};
pub use task::{Stimulus, Task, TaskQueue, TaskState};
pub use templates::input_agreement::{InputAgreementResult, InputAgreementRound};
pub use templates::inversion::{InversionResult, InversionRound, Role};
pub use templates::output_agreement::{OutputAgreementResult, OutputAgreementRound};
pub use templates::{Seat, SubmitOutcome, TemplateKind};
pub use verify::{AgreementTracker, GoldBank, GoldOutcome, TabooList};

/// Convenience re-exports covering the whole public surface.
pub mod prelude {
    pub use crate::answer::{Answer, Label, Region, Verdict};
    pub use crate::anticheat::{CheatAssessment, CheatDetector, Reputation};
    pub use crate::bucket::{BucketLayout, BucketPool};
    pub use crate::error::{Error, Result};
    pub use crate::id::{JobId, PlayerId, RoundId, SessionId, TaskId};
    pub use crate::jobs::{Job, JobBook, JobGoal, JobState};
    pub use crate::matchmaker::{
        BatchMatcher, MatchDecision, Matchmaker, MatchmakerConfig, PairKind, PairingPolicy,
    };
    pub use crate::metrics::{ContributionLedger, GwapMetrics};
    pub use crate::platform::{Platform, PlatformConfig, VerifiedLabel};
    pub use crate::replay::{RecordedRound, RecordedSession, ReplayStore};
    pub use crate::scoring::{Leaderboard, ScoreRule, Scoreboard, SkillLevel};
    pub use crate::session::{RoundRecord, Session, SessionConfig, SessionTranscript};
    pub use crate::task::{Stimulus, Task, TaskQueue, TaskState};
    pub use crate::templates::input_agreement::{InputAgreementResult, InputAgreementRound};
    pub use crate::templates::inversion::{InversionResult, InversionRound, Role};
    pub use crate::templates::output_agreement::{OutputAgreementResult, OutputAgreementRound};
    pub use crate::templates::{Seat, SubmitOutcome, TemplateKind};
    pub use crate::text::{levenshtein, normalize_label, similarity};
    pub use crate::verify::{AgreementTracker, GoldBank, GoldOutcome, TabooList};
    pub use hc_sim::{SimDuration, SimTime};
}
