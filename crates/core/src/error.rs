//! Error types for the platform.

use crate::id::{JobId, PlayerId, SessionId, TaskId};

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong while operating the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A referenced task does not exist.
    UnknownTask(TaskId),
    /// A referenced player has never been registered.
    UnknownPlayer(PlayerId),
    /// A referenced job does not exist.
    UnknownJob(JobId),
    /// A referenced session does not exist or has already been closed.
    UnknownSession(SessionId),
    /// An answer was submitted to a round that already finished.
    RoundOver,
    /// An answer was submitted by a seat that is not part of the round.
    WrongSeat,
    /// The answer kind does not fit the template (e.g. a same/different
    /// verdict sent to an output-agreement round).
    AnswerKindMismatch {
        /// What the template expected.
        expected: &'static str,
    },
    /// A job was created with no tasks.
    EmptyJob,
    /// A configuration value was out of range.
    InvalidConfig(&'static str),
    /// The player is currently banned by the anti-cheat layer.
    PlayerBanned(PlayerId),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownTask(id) => write!(f, "unknown task {id}"),
            Error::UnknownPlayer(id) => write!(f, "unknown player {id}"),
            Error::UnknownJob(id) => write!(f, "unknown job {id}"),
            Error::UnknownSession(id) => write!(f, "unknown session {id}"),
            Error::RoundOver => write!(f, "round already finished"),
            Error::WrongSeat => write!(f, "seat is not part of this round"),
            Error::AnswerKindMismatch { expected } => {
                write!(f, "answer kind mismatch: template expects {expected}")
            }
            Error::EmptyJob => write!(f, "job must contain at least one task"),
            Error::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            Error::PlayerBanned(id) => write!(f, "player {id} is banned"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_helpfully() {
        assert_eq!(
            Error::UnknownTask(TaskId::new(3)).to_string(),
            "unknown task task-3"
        );
        assert!(Error::RoundOver.to_string().contains("finished"));
        assert!(Error::AnswerKindMismatch { expected: "text" }
            .to_string()
            .contains("text"));
        assert!(Error::PlayerBanned(PlayerId::new(9))
            .to_string()
            .contains("player-9"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptyJob);
    }
}
