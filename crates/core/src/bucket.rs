//! Sharded matchmaking: deterministic skill-tier buckets.
//!
//! The streaming [`Matchmaker`](crate::Matchmaker) owns one global wait pool
//! and therefore must live on the serial hub of a sharded run — the Amdahl
//! bottleneck at planetary scale. [`BucketPool`] is the sharded form: the
//! wait pool is partitioned by a **deterministic skill tier** (a pure
//! function of the player's profile, never of the shard layout), each bucket
//! is owned by one shard (`bucket % shards`), and pairing runs inside the
//! shard window on worker threads. Only matched pairs and replay-fallback
//! spillover reduce through the hub, via the key-ordered exchange.
//!
//! Two properties make this byte-identical at any `--shards×--threads`:
//!
//! 1. A bucket's pairing outcome depends only on its own arrival
//!    subsequence (delivered in `(time, player)` exchange-key order) and its
//!    own counter-indexed RNG stream — never on which shard hosts it.
//! 2. Replay-fallback sweeps fire at the bucket's own deadline windows
//!    ([`BucketPool::next_deadline`] feeds the shard wake), so sweep timing
//!    is a pure function of pool contents, not of co-scheduled shard work.
//!
//! The pairing algorithm itself — uniform draw over eligible waiters with
//! optional strict rematch avoidance, replay-bot fallback on timeout — is
//! exactly the hub-global [`Matchmaker`](crate::Matchmaker)'s; the
//! equivalence is pinned by property tests in `tests/bucket_props.rs`.
//!
//! This type is shard-reachable: it must not emit `hc-obs` telemetry (worker
//! threads carry no collector, so emissions would vary with `--threads`) and
//! every RNG it consumes must come from an indexed stream (analyzer rule R1).

use crate::id::PlayerId;
use crate::matchmaker::{MatchDecision, MatchmakerConfig, MatchmakerStats};
use hc_collect::DetMap;
use hc_sim::{OnlineStats, SimTime};
use rand::Rng;

/// Number of skill tiers a campaign partitions its wait pool into.
///
/// This is a **semantic** parameter (it narrows who can pair with whom), so
/// it must never be derived from the shard count: the same population must
/// produce the same pairings at any layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketLayout {
    buckets: u32,
}

impl BucketLayout {
    /// Creates a layout with `buckets` skill tiers (clamped to at least 1).
    #[must_use]
    pub fn new(buckets: u32) -> Self {
        BucketLayout {
            buckets: buckets.max(1),
        }
    }

    /// Number of buckets.
    #[must_use]
    pub fn buckets(&self) -> u32 {
        self.buckets
    }

    /// Maps a skill in `[0, 1]` to its tier — a pure function of the
    /// profile, shared by every shard layout.
    #[must_use]
    pub fn bucket_of(&self, skill: f64) -> u32 {
        let s = if skill.is_finite() {
            skill.clamp(0.0, 1.0)
        } else {
            0.5
        };
        // `s == 1.0` would index one past the end; clamp into range.
        ((s * f64::from(self.buckets)) as u32).min(self.buckets - 1)
    }
}

/// One skill tier's wait pool: the sharded counterpart of
/// [`Matchmaker`](crate::Matchmaker).
///
/// # Examples
///
/// ```
/// use hc_core::bucket::BucketPool;
/// use hc_core::prelude::*;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut pool = BucketPool::new(MatchmakerConfig::default());
/// assert_eq!(
///     pool.on_arrival(SimTime::ZERO, PlayerId::new(1), &mut rng),
///     MatchDecision::Queued
/// );
/// let decision = pool.on_arrival(SimTime::from_secs(2), PlayerId::new(2), &mut rng);
/// assert!(matches!(decision, MatchDecision::Paired { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct BucketPool {
    waiting: Vec<(SimTime, PlayerId)>,
    // Buckets hold arbitrary id subsets, so rematch bookkeeping uses the
    // deterministic map rather than a dense per-id store.
    last_partner: DetMap<u64, PlayerId>,
    config: MatchmakerConfig,
    stats: MatchmakerStats,
    wait_stats: OnlineStats,
}

impl BucketPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new(config: MatchmakerConfig) -> Self {
        Self::with_capacity(config, 0)
    }

    /// Creates an empty pool with room for `capacity` waiters, so the
    /// steady-state arrival path never grows the wait vector or the
    /// rematch map.
    #[must_use]
    pub fn with_capacity(config: MatchmakerConfig, capacity: usize) -> Self {
        BucketPool {
            waiting: Vec::with_capacity(capacity),
            last_partner: DetMap::with_capacity(capacity),
            config,
            stats: MatchmakerStats::default(),
            wait_stats: OnlineStats::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MatchmakerConfig {
        &self.config
    }

    /// Handles an arriving player: pairs with a uniformly random eligible
    /// waiter or queues them.
    ///
    /// Identical decision procedure and RNG consumption as
    /// [`Matchmaker::on_arrival`](crate::Matchmaker::on_arrival) — one
    /// `gen_range` draw over the eligible count — but allocation-free: the
    /// eligible set is counted and the k-th candidate re-found in place
    /// instead of collecting an index vector per arrival.
    pub fn on_arrival<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        player: PlayerId,
        rng: &mut R,
    ) -> MatchDecision {
        let last = self.last_partner.get(&player.raw()).copied();
        let eligible = |candidate: PlayerId| {
            candidate != player && !(self.config.avoid_rematch && Some(candidate) == last)
        };
        let count = self.waiting.iter().filter(|&&(_, c)| eligible(c)).count();
        if count == 0 {
            self.waiting.push((now, player));
            return MatchDecision::Queued;
        }
        let k = rng.gen_range(0..count);
        let pick = self
            .waiting
            .iter()
            .enumerate()
            .filter(|&(_, &(_, c))| eligible(c))
            .nth(k)
            .map(|(i, _)| i)
            .unwrap_or_default();
        let (entered, partner) = self.waiting.swap_remove(pick);
        let waited = now.saturating_since(entered);
        self.wait_stats.push(waited.as_secs_f64());
        self.last_partner.insert(player.raw(), partner);
        self.last_partner.insert(partner.raw(), player);
        self.stats.live_pairs += 1;
        MatchDecision::Paired { partner, waited }
    }

    /// Appends every player whose wait exceeds the bot-fallback threshold
    /// as of `now` to `out` (in queue order) and removes them from the
    /// pool; returns how many timed out. The caller pairs each with a
    /// replay bot. `out` is caller-owned scratch so steady-state sweeps
    /// allocate nothing.
    pub fn take_timed_out_into(&mut self, now: SimTime, out: &mut Vec<PlayerId>) -> usize {
        let threshold = self.config.bot_fallback_wait;
        let before = out.len();
        let mut write = 0;
        for read in 0..self.waiting.len() {
            let (entered, player) = self.waiting[read];
            if now.saturating_since(entered) >= threshold {
                let waited = now.saturating_since(entered);
                self.wait_stats.push(waited.as_secs_f64());
                self.stats.replay_pairs += 1;
                out.push(player);
            } else {
                self.waiting[write] = (entered, player);
                write += 1;
            }
        }
        self.waiting.truncate(write);
        out.len() - before
    }

    /// Drains the entire pool (end-of-run abandonment), appending the
    /// stranded players to `out` in queue order and counting each as an
    /// abandonment.
    pub fn abandon_all_into(&mut self, out: &mut Vec<PlayerId>) -> usize {
        let n = self.waiting.len();
        self.stats.abandonments += n as u64;
        out.extend(self.waiting.drain(..).map(|(_, p)| p));
        n
    }

    /// The earliest instant any current waiter crosses the bot-fallback
    /// threshold. Feeding this into the shard wake guarantees the sweep
    /// window is a pure function of pool contents (layout-invariant).
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.waiting
            .iter()
            .map(|&(entered, _)| entered + self.config.bot_fallback_wait)
            .min()
    }

    /// Number of players currently waiting.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Pairing statistics so far.
    #[must_use]
    pub fn stats(&self) -> MatchmakerStats {
        self.stats
    }

    /// Waiting-time statistics (seconds) over all resolved waits.
    #[must_use]
    pub fn wait_stats(&self) -> &OnlineStats {
        &self.wait_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matchmaker;
    use hc_sim::SimDuration;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn bucket_of_is_a_pure_clamped_tier() {
        let layout = BucketLayout::new(4);
        assert_eq!(layout.bucket_of(0.0), 0);
        assert_eq!(layout.bucket_of(0.26), 1);
        assert_eq!(layout.bucket_of(0.99), 3);
        assert_eq!(layout.bucket_of(1.0), 3);
        assert_eq!(layout.bucket_of(f64::NAN), 2);
        assert_eq!(BucketLayout::new(0).buckets(), 1);
        assert_eq!(BucketLayout::new(1).bucket_of(0.9), 0);
    }

    #[test]
    fn pool_matches_hub_global_matchmaker_pairing_sequence() {
        // Same arrivals, same RNG stream: the pool must reproduce the
        // hub-global matchmaker's decisions draw for draw.
        let cfg = MatchmakerConfig::default();
        let mut pool = BucketPool::new(cfg);
        let mut hub = Matchmaker::new(cfg);
        let mut r_pool = rng();
        let mut r_hub = rng();
        let arrivals: Vec<(u64, u64)> = (0..200).map(|i| (i / 3, 1 + i % 37)).collect();
        for (sec, id) in arrivals {
            let at = t(sec);
            let p = PlayerId::new(id);
            assert_eq!(
                pool.on_arrival(at, p, &mut r_pool),
                hub.on_arrival(at, p, &mut r_hub)
            );
        }
        let mut spill = Vec::new();
        pool.take_timed_out_into(t(100), &mut spill);
        assert_eq!(spill, hub.take_timed_out(t(100)));
        assert_eq!(pool.stats(), hub.stats());
        assert_eq!(pool.wait_stats().count(), hub.wait_stats().count());
    }

    #[test]
    fn timeout_sweep_is_in_queue_order_and_reuses_scratch() {
        let cfg = MatchmakerConfig {
            bot_fallback_wait: SimDuration::from_secs(10),
            avoid_rematch: false,
        };
        let mut pool = BucketPool::new(cfg);
        let mut r = rng();
        pool.on_arrival(t(0), PlayerId::new(1), &mut r);
        pool.on_arrival(t(1), PlayerId::new(1), &mut r); // re-queue, self-pair refused
        pool.on_arrival(t(5), PlayerId::new(1), &mut r);
        let mut out = Vec::new();
        assert_eq!(pool.take_timed_out_into(t(9), &mut out), 0);
        assert_eq!(pool.take_timed_out_into(t(11), &mut out), 2);
        assert_eq!(out, vec![PlayerId::new(1), PlayerId::new(1)]);
        assert_eq!(pool.queue_len(), 1);
        assert_eq!(pool.next_deadline(), Some(t(15)));
        out.clear();
        assert_eq!(pool.abandon_all_into(&mut out), 1);
        assert_eq!(pool.stats().abandonments, 1);
        assert_eq!(pool.next_deadline(), None);
    }
}
