//! Random matching and the replay-bot fallback.
//!
//! Output-agreement verification rests on partners being **strangers**:
//! "random matching" is itself one of the paper's verification mechanisms,
//! because colluders cannot agree out-of-band if they are never paired. The
//! [`Matchmaker`] implements it: arrivals are paired with a *uniformly
//! random* waiting player (optionally refusing immediate rematches), and a
//! player who waits too long is handed to a **replay bot** — a recorded
//! past session played back as the partner, exactly the single-player
//! fallback the deployed ESP Game used at low-traffic hours (experiment
//! F5 measures the fallback share as a function of arrival rate).

use crate::id::PlayerId;
use hc_collect::PlayerStore;
use hc_sim::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the matchmaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchmakerConfig {
    /// How long a player may wait before falling back to a replay bot.
    pub bot_fallback_wait: SimDuration,
    /// Refuse to pair a player with the same partner twice in a row.
    pub avoid_rematch: bool,
}

impl Default for MatchmakerConfig {
    fn default() -> Self {
        MatchmakerConfig {
            bot_fallback_wait: SimDuration::from_secs(10),
            avoid_rematch: true,
        }
    }
}

/// Whether a pairing is two live humans or human + recorded session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairKind {
    /// Two live players.
    Live,
    /// One live player with a replayed recorded session.
    Replay,
}

/// Result of an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchDecision {
    /// Paired immediately with a waiting player (who waited `waited`).
    Paired {
        /// The partner drawn from the waiting pool.
        partner: PlayerId,
        /// How long that partner had been waiting.
        waited: SimDuration,
    },
    /// Nobody suitable is waiting; the player was queued.
    Queued,
}

/// Pairing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchmakerStats {
    /// Live pairs formed.
    pub live_pairs: u64,
    /// Replay-bot pairs formed.
    pub replay_pairs: u64,
    /// Players who abandoned the queue before being paired.
    pub abandonments: u64,
}

impl MatchmakerStats {
    /// Accumulates another pool's statistics (bucket-order reduction of a
    /// sharded run's per-bucket pools).
    pub fn merge(&mut self, other: &MatchmakerStats) {
        self.live_pairs += other.live_pairs;
        self.replay_pairs += other.replay_pairs;
        self.abandonments += other.abandonments;
    }

    /// Fraction of all pairs that needed the replay fallback.
    #[must_use]
    pub fn replay_share(&self) -> f64 {
        let total = self.live_pairs + self.replay_pairs;
        if total == 0 {
            0.0
        } else {
            self.replay_pairs as f64 / total as f64
        }
    }
}

/// The waiting pool and pairing policy.
///
/// # Examples
///
/// ```
/// use hc_core::prelude::*;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut mm = Matchmaker::new(MatchmakerConfig::default());
/// assert_eq!(
///     mm.on_arrival(SimTime::ZERO, PlayerId::new(1), &mut rng),
///     MatchDecision::Queued
/// );
/// let decision = mm.on_arrival(SimTime::from_secs(2), PlayerId::new(2), &mut rng);
/// assert!(matches!(decision, MatchDecision::Paired { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Matchmaker {
    waiting: Vec<(SimTime, PlayerId)>,
    // Rematch bookkeeping is checked on every arrival; the store is
    // lookup/insert only (never iterated), so the dense PlayerStore
    // swap cannot change any output byte.
    last_partner: PlayerStore<PlayerId>,
    config: MatchmakerConfig,
    stats: MatchmakerStats,
    wait_stats: hc_sim::OnlineStats,
}

impl Matchmaker {
    /// Creates an empty matchmaker.
    #[must_use]
    pub fn new(config: MatchmakerConfig) -> Self {
        Matchmaker {
            waiting: Vec::new(),
            last_partner: PlayerStore::new(),
            config,
            stats: MatchmakerStats::default(),
            wait_stats: hc_sim::OnlineStats::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MatchmakerConfig {
        &self.config
    }

    /// Handles an arriving player: pairs with a random eligible waiter or
    /// queues them.
    pub fn on_arrival<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        player: PlayerId,
        rng: &mut R,
    ) -> MatchDecision {
        // Eligible waiters: everyone except the player themself and — under
        // strict rematch avoidance — their previous partner. A player whose
        // only possible partner is their last one queues instead; the
        // replay-bot fallback rescues them if nobody else shows up.
        //
        // The eligible set is counted and the k-th candidate re-found in
        // place; same single `gen_range` draw (so the same pairings as the
        // historical index-vector implementation) without the per-arrival
        // allocation.
        let last = self.last_partner.get(player.raw()).copied();
        let eligible = |candidate: PlayerId| {
            candidate != player && !(self.config.avoid_rematch && Some(candidate) == last)
        };
        let count = self.waiting.iter().filter(|&&(_, c)| eligible(c)).count();
        if count == 0 {
            self.waiting.push((now, player));
            return MatchDecision::Queued;
        }
        let k = rng.gen_range(0..count);
        let pick = self
            .waiting
            .iter()
            .enumerate()
            .filter(|&(_, &(_, c))| eligible(c))
            .nth(k)
            .map(|(i, _)| i)
            .unwrap_or_default();
        let (entered, partner) = self.waiting.swap_remove(pick);
        let waited = now.saturating_since(entered);
        self.wait_stats.push(waited.as_secs_f64());
        self.last_partner.insert(player.raw(), partner);
        self.last_partner.insert(partner.raw(), player);
        self.stats.live_pairs += 1;
        if hc_obs::active() {
            hc_obs::counter("core.pairs_live", now.ticks(), 1);
            hc_obs::observe("core.pair_wait_secs", now.ticks(), waited.as_secs_f64());
            hc_obs::event(
                "core",
                "pair",
                now.ticks(),
                &[
                    ("player", u64::from(player).into()),
                    ("partner", u64::from(partner).into()),
                    ("waited_us", waited.ticks().into()),
                ],
            );
        }
        MatchDecision::Paired { partner, waited }
    }

    /// Removes and returns every player whose wait exceeds the bot-fallback
    /// threshold as of `now`. The caller pairs each with a replay bot.
    pub fn take_timed_out(&mut self, now: SimTime) -> Vec<PlayerId> {
        let threshold = self.config.bot_fallback_wait;
        let mut timed_out = Vec::new();
        let mut kept = Vec::new();
        let tracing = hc_obs::active();
        for (entered, player) in self.waiting.drain(..) {
            if now.saturating_since(entered) >= threshold {
                let waited = now.saturating_since(entered);
                self.wait_stats.push(waited.as_secs_f64());
                self.stats.replay_pairs += 1;
                if tracing {
                    hc_obs::counter("core.pairs_replay", now.ticks(), 1);
                    hc_obs::observe("core.pair_wait_secs", now.ticks(), waited.as_secs_f64());
                    hc_obs::event(
                        "core",
                        "replay_fallback",
                        now.ticks(),
                        &[
                            ("player", u64::from(player).into()),
                            ("waited_us", waited.ticks().into()),
                        ],
                    );
                }
                timed_out.push(player);
            } else {
                kept.push((entered, player));
            }
        }
        self.waiting = kept;
        timed_out
    }

    /// Removes a queued player who quit before pairing. Returns `true` if
    /// they were waiting.
    pub fn abandon(&mut self, player: PlayerId) -> bool {
        let before = self.waiting.len();
        self.waiting.retain(|(_, p)| *p != player);
        let removed = self.waiting.len() != before;
        if removed {
            self.stats.abandonments += 1;
        }
        removed
    }

    /// Number of players currently waiting.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Pairing statistics so far.
    #[must_use]
    pub fn stats(&self) -> MatchmakerStats {
        self.stats
    }

    /// Waiting-time statistics (seconds) over all resolved waits.
    #[must_use]
    pub fn wait_stats(&self) -> &hc_sim::OnlineStats {
        &self.wait_stats
    }
}

/// How a [`BatchMatcher`] pairs the players of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairingPolicy {
    /// Pair players in arrival order (what a naive queue does). Two
    /// colluders who press "play" at the same moment sit adjacent and get
    /// each other with near-certainty — the attack surface the paper's
    /// *random matching* exists to close.
    Adjacent,
    /// Shuffle the epoch before pairing (the deployed defense): a
    /// colluder's chance of drawing their partner is `1/(n-1)` regardless
    /// of arrival timing.
    Random,
}

/// Epoch-based matchmaking: arrivals accumulate, then one call pairs the
/// whole batch under a [`PairingPolicy`]. This is the matching model of
/// busy portals (the deployed ESP Game matched in rounds); the streaming
/// [`Matchmaker`] above models thin traffic.
///
/// # Examples
///
/// ```
/// use hc_core::matchmaker::{BatchMatcher, PairingPolicy};
/// use hc_core::PlayerId;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut m = BatchMatcher::new(PairingPolicy::Random);
/// for i in 0..5 {
///     m.join(PlayerId::new(i));
/// }
/// let pairs = m.pair_epoch(&mut rng);
/// assert_eq!(pairs.len(), 2);
/// assert_eq!(m.waiting(), 1); // odd player out carries to the next epoch
/// ```
#[derive(Debug, Clone)]
pub struct BatchMatcher {
    policy: PairingPolicy,
    waiting: Vec<PlayerId>,
    epochs: u64,
    pairs_formed: u64,
}

impl BatchMatcher {
    /// Creates an empty matcher with the given policy.
    #[must_use]
    pub fn new(policy: PairingPolicy) -> Self {
        BatchMatcher {
            policy,
            waiting: Vec::new(),
            epochs: 0,
            pairs_formed: 0,
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> PairingPolicy {
        self.policy
    }

    /// Adds a player to the current epoch (arrival order is preserved).
    pub fn join(&mut self, player: PlayerId) {
        self.waiting.push(player);
    }

    /// Players waiting for the next epoch.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Epochs run so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Pairs formed so far.
    #[must_use]
    pub fn pairs_formed(&self) -> u64 {
        self.pairs_formed
    }

    /// Closes the epoch: pairs everyone waiting (per policy); an odd
    /// player remains queued for the next epoch.
    pub fn pair_epoch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<(PlayerId, PlayerId)> {
        self.epochs += 1;
        if self.policy == PairingPolicy::Random {
            // Fisher–Yates shuffle of the epoch.
            for i in (1..self.waiting.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.waiting.swap(i, j);
            }
        }
        let mut pairs = Vec::with_capacity(self.waiting.len() / 2);
        let mut iter = std::mem::take(&mut self.waiting).into_iter();
        loop {
            match (iter.next(), iter.next()) {
                (Some(a), Some(b)) => pairs.push((a, b)),
                (Some(last), None) => {
                    self.waiting.push(last);
                    break;
                }
                _ => break,
            }
        }
        self.pairs_formed += pairs.len() as u64;
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn first_arrival_queues_second_pairs() {
        let mut r = rng();
        let mut mm = Matchmaker::new(MatchmakerConfig::default());
        assert_eq!(
            mm.on_arrival(t(0), PlayerId::new(1), &mut r),
            MatchDecision::Queued
        );
        assert_eq!(mm.queue_len(), 1);
        match mm.on_arrival(t(4), PlayerId::new(2), &mut r) {
            MatchDecision::Paired { partner, waited } => {
                assert_eq!(partner, PlayerId::new(1));
                assert_eq!(waited, SimDuration::from_secs(4));
            }
            MatchDecision::Queued => panic!("expected pairing"),
        }
        assert_eq!(mm.queue_len(), 0);
        assert_eq!(mm.stats().live_pairs, 1);
        assert_eq!(mm.wait_stats().count(), 1);
    }

    #[test]
    fn strict_rematch_avoidance_queues_instead() {
        let mut r = rng();
        let mut mm = Matchmaker::new(MatchmakerConfig::default());
        // 1 and 2 get paired.
        mm.on_arrival(t(0), PlayerId::new(1), &mut r);
        mm.on_arrival(t(0), PlayerId::new(2), &mut r);
        // 1 re-queues; 2 arrives but may not rematch — queues too.
        assert_eq!(
            mm.on_arrival(t(1), PlayerId::new(1), &mut r),
            MatchDecision::Queued
        );
        assert_eq!(
            mm.on_arrival(t(2), PlayerId::new(2), &mut r),
            MatchDecision::Queued
        );
        assert_eq!(mm.queue_len(), 2);
        // A third player pairs with either waiter.
        assert!(matches!(
            mm.on_arrival(t(3), PlayerId::new(3), &mut r),
            MatchDecision::Paired { .. }
        ));
        assert_eq!(mm.queue_len(), 1);
    }

    #[test]
    fn rematch_allowed_when_avoidance_disabled() {
        let mut r = rng();
        let cfg = MatchmakerConfig {
            avoid_rematch: false,
            ..MatchmakerConfig::default()
        };
        let mut mm = Matchmaker::new(cfg);
        mm.on_arrival(t(0), PlayerId::new(1), &mut r);
        mm.on_arrival(t(0), PlayerId::new(2), &mut r);
        mm.on_arrival(t(1), PlayerId::new(1), &mut r);
        match mm.on_arrival(t(2), PlayerId::new(2), &mut r) {
            MatchDecision::Paired { partner, .. } => assert_eq!(partner, PlayerId::new(1)),
            MatchDecision::Queued => panic!("expected pairing"),
        }
    }

    #[test]
    fn player_never_paired_with_self() {
        let mut r = rng();
        let mut mm = Matchmaker::new(MatchmakerConfig::default());
        mm.on_arrival(t(0), PlayerId::new(1), &mut r);
        // Same player arriving again (e.g. re-queue) must not self-pair.
        assert_eq!(
            mm.on_arrival(t(1), PlayerId::new(1), &mut r),
            MatchDecision::Queued
        );
        assert_eq!(mm.queue_len(), 2);
    }

    #[test]
    fn timeout_hands_players_to_replay_bots() {
        let mut r = rng();
        let cfg = MatchmakerConfig {
            bot_fallback_wait: SimDuration::from_secs(10),
            avoid_rematch: false,
        };
        let mut mm = Matchmaker::new(cfg);
        mm.on_arrival(t(0), PlayerId::new(1), &mut r);
        mm.on_arrival(t(5), PlayerId::new(1), &mut r); // second entry (same id allowed in queue)
        assert!(mm.take_timed_out(t(9)).is_empty());
        let out = mm.take_timed_out(t(10));
        assert_eq!(out, vec![PlayerId::new(1)]);
        assert_eq!(mm.queue_len(), 1, "the t=5 entry is still within threshold");
        assert_eq!(mm.stats().replay_pairs, 1);
        assert!((mm.stats().replay_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abandonment_removes_from_queue() {
        let mut r = rng();
        let mut mm = Matchmaker::new(MatchmakerConfig::default());
        mm.on_arrival(t(0), PlayerId::new(1), &mut r);
        assert!(mm.abandon(PlayerId::new(1)));
        assert!(!mm.abandon(PlayerId::new(1)));
        assert_eq!(mm.queue_len(), 0);
        assert_eq!(mm.stats().abandonments, 1);
    }

    #[test]
    fn random_pairing_spreads_partners() {
        let mut r = rng();
        let cfg = MatchmakerConfig {
            avoid_rematch: false,
            ..MatchmakerConfig::default()
        };
        let mut mm = Matchmaker::new(cfg);
        // Fill the queue with 10 waiters, then pair 200 arrivals against a
        // refilled pool and count partner diversity.
        let mut partner_hist: std::collections::BTreeMap<PlayerId, u32> =
            std::collections::BTreeMap::new();
        for trial in 0..200u64 {
            for i in 0..10 {
                mm.on_arrival(t(trial), PlayerId::new(100 + i), &mut r);
            }
            for i in 0..10 {
                match mm.on_arrival(t(trial), PlayerId::new(200 + trial * 10 + i), &mut r) {
                    MatchDecision::Paired { partner, .. } => {
                        *partner_hist.entry(partner).or_insert(0) += 1;
                    }
                    MatchDecision::Queued => {}
                }
            }
        }
        // All 10 waiters should have been drawn at least once.
        assert!(
            partner_hist.len() >= 9,
            "partners drawn: {}",
            partner_hist.len()
        );
    }

    #[test]
    fn replay_share_zero_when_no_pairs() {
        assert_eq!(MatchmakerStats::default().replay_share(), 0.0);
    }

    #[test]
    fn batch_adjacent_pairs_in_arrival_order() {
        let mut r = rng();
        let mut m = BatchMatcher::new(PairingPolicy::Adjacent);
        for i in 0..4 {
            m.join(PlayerId::new(i));
        }
        let pairs = m.pair_epoch(&mut r);
        assert_eq!(
            pairs,
            vec![
                (PlayerId::new(0), PlayerId::new(1)),
                (PlayerId::new(2), PlayerId::new(3)),
            ]
        );
        assert_eq!(m.waiting(), 0);
        assert_eq!(m.pairs_formed(), 2);
        assert_eq!(m.epochs(), 1);
        assert_eq!(m.policy(), PairingPolicy::Adjacent);
    }

    #[test]
    fn batch_odd_player_carries_over() {
        let mut r = rng();
        let mut m = BatchMatcher::new(PairingPolicy::Adjacent);
        for i in 0..5 {
            m.join(PlayerId::new(i));
        }
        let pairs = m.pair_epoch(&mut r);
        assert_eq!(pairs.len(), 2);
        assert_eq!(m.waiting(), 1);
        // The leftover joins the next epoch's pairing.
        m.join(PlayerId::new(9));
        let pairs = m.pair_epoch(&mut r);
        assert_eq!(pairs, vec![(PlayerId::new(4), PlayerId::new(9))]);
    }

    #[test]
    fn batch_random_breaks_adjacency() {
        // Colluders always arrive adjacent (slots 0 and 1) in a 10-player
        // epoch; random pairing should pair them ~1/9 of the time,
        // adjacent pairing 100%.
        let mut r = rng();
        let trials = 2_000;
        let mut together = [0u32; 2];
        for (pi, policy) in [PairingPolicy::Adjacent, PairingPolicy::Random]
            .into_iter()
            .enumerate()
        {
            for _ in 0..trials {
                let mut m = BatchMatcher::new(policy);
                for i in 0..10 {
                    m.join(PlayerId::new(i));
                }
                let pairs = m.pair_epoch(&mut r);
                let colluders_paired = pairs
                    .iter()
                    .any(|(a, b)| (a.raw(), b.raw()) == (0, 1) || (a.raw(), b.raw()) == (1, 0));
                if colluders_paired {
                    together[pi] += 1;
                }
            }
        }
        assert_eq!(together[0], trials, "adjacent always pairs colluders");
        let random_rate = f64::from(together[1]) / f64::from(trials);
        assert!(
            (random_rate - 1.0 / 9.0).abs() < 0.03,
            "random colluder-pair rate {random_rate}"
        );
    }

    #[test]
    fn batch_empty_epoch_is_fine() {
        let mut r = rng();
        let mut m = BatchMatcher::new(PairingPolicy::Random);
        assert!(m.pair_epoch(&mut r).is_empty());
        m.join(PlayerId::new(1));
        assert!(m.pair_epoch(&mut r).is_empty());
        assert_eq!(m.waiting(), 1);
    }
}
