//! Labeling jobs — batches of tasks with a goal and progress tracking.
//!
//! The deployed systems were run as *campaigns*: "label these 100,000
//! images", "digitize this book", each with its own completion criterion
//! and progress dashboard. [`JobBook`] layers that bookkeeping over the
//! platform's task store: tasks are enrolled into jobs, verified outputs
//! are credited to the owning job, and each job reports its progress and
//! estimated completion.

use crate::id::{JobId, TaskId};
use hc_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Completion criterion for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobGoal {
    /// Every task needs at least this many verified outputs.
    OutputsPerTask(u32),
    /// The job as a whole needs this many verified outputs.
    TotalOutputs(u64),
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepting and serving tasks.
    Active,
    /// Goal reached.
    Completed,
    /// Administratively stopped.
    Cancelled,
}

/// One labeling campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Unique id.
    pub id: JobId,
    /// Human-readable name ("dresden-scans-vol2").
    pub name: String,
    /// Completion criterion.
    pub goal: JobGoal,
    /// Current state.
    pub state: JobState,
    /// When the job was opened.
    pub opened_at: SimTime,
    /// When the job completed/cancelled, if it did.
    pub closed_at: Option<SimTime>,
    /// Tasks enrolled.
    tasks: Vec<TaskId>,
    /// Verified outputs per enrolled task.
    outputs: BTreeMap<TaskId, u32>,
}

impl Job {
    /// Tasks enrolled in this job.
    #[must_use]
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Total verified outputs credited so far.
    #[must_use]
    pub fn total_outputs(&self) -> u64 {
        self.outputs.values().map(|&c| u64::from(c)).sum()
    }

    /// Verified outputs for one enrolled task.
    #[must_use]
    pub fn outputs_for(&self, task: TaskId) -> u32 {
        self.outputs.get(&task).copied().unwrap_or(0)
    }

    /// Progress toward the goal in `[0, 1]`.
    #[must_use]
    pub fn progress(&self) -> f64 {
        match self.goal {
            JobGoal::OutputsPerTask(per) => {
                if self.tasks.is_empty() || per == 0 {
                    return 1.0;
                }
                let done: u64 = self
                    .tasks
                    .iter()
                    .map(|t| u64::from(self.outputs_for(*t).min(per)))
                    .sum();
                done as f64 / (self.tasks.len() as u64 * u64::from(per)) as f64
            }
            JobGoal::TotalOutputs(total) => {
                if total == 0 {
                    return 1.0;
                }
                (self.total_outputs() as f64 / total as f64).min(1.0)
            }
        }
    }

    /// `true` once the goal is met.
    #[must_use]
    pub fn is_goal_met(&self) -> bool {
        self.progress() >= 1.0
    }
}

/// The registry of jobs and the task → job index.
///
/// # Examples
///
/// ```
/// use hc_core::jobs::{JobBook, JobGoal, JobState};
/// use hc_core::TaskId;
/// use hc_sim::SimTime;
///
/// let mut book = JobBook::new();
/// let job = book.open(
///     "label-animals",
///     JobGoal::OutputsPerTask(1),
///     vec![TaskId::new(1), TaskId::new(2)],
///     SimTime::ZERO,
/// ).unwrap();
///
/// book.credit_output(TaskId::new(1), SimTime::from_secs(5));
/// assert_eq!(book.get(job).unwrap().progress(), 0.5);
/// book.credit_output(TaskId::new(2), SimTime::from_secs(9));
/// assert_eq!(book.get(job).unwrap().state, JobState::Completed);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JobBook {
    jobs: BTreeMap<JobId, Job>,
    task_index: BTreeMap<TaskId, JobId>,
    next_id: u64,
}

impl JobBook {
    /// Creates an empty book.
    #[must_use]
    pub fn new() -> Self {
        JobBook::default()
    }

    /// Opens a job over `tasks`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::EmptyJob`] when `tasks` is empty.
    pub fn open(
        &mut self,
        name: &str,
        goal: JobGoal,
        tasks: Vec<TaskId>,
        now: SimTime,
    ) -> crate::Result<JobId> {
        if tasks.is_empty() {
            return Err(crate::Error::EmptyJob);
        }
        let id = JobId::new(self.next_id);
        self.next_id += 1;
        for t in &tasks {
            self.task_index.insert(*t, id);
        }
        self.jobs.insert(
            id,
            Job {
                id,
                name: name.to_string(),
                goal,
                state: JobState::Active,
                opened_at: now,
                closed_at: None,
                tasks,
                outputs: BTreeMap::new(),
            },
        );
        Ok(id)
    }

    /// Looks up a job.
    #[must_use]
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// The job owning a task, if any.
    #[must_use]
    pub fn job_of(&self, task: TaskId) -> Option<JobId> {
        self.task_index.get(&task).copied()
    }

    /// Number of jobs (any state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no jobs exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Credits one verified output to the owning job (no-op for tasks not
    /// enrolled anywhere); completes the job when its goal is met.
    /// Returns the owning job id when credited.
    pub fn credit_output(&mut self, task: TaskId, now: SimTime) -> Option<JobId> {
        let job_id = self.job_of(task)?;
        let job = self.jobs.get_mut(&job_id)?;
        if job.state != JobState::Active {
            return Some(job_id);
        }
        *job.outputs.entry(task).or_insert(0) += 1;
        if job.is_goal_met() {
            job.state = JobState::Completed;
            job.closed_at = Some(now);
        }
        Some(job_id)
    }

    /// Cancels an active job.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnknownJob`] for missing ids.
    pub fn cancel(&mut self, id: JobId, now: SimTime) -> crate::Result<()> {
        let job = self.jobs.get_mut(&id).ok_or(crate::Error::UnknownJob(id))?;
        if job.state == JobState::Active {
            job.state = JobState::Cancelled;
            job.closed_at = Some(now);
        }
        Ok(())
    }

    /// Iterates over all jobs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Active jobs only.
    pub fn active(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values().filter(|j| j.state == JobState::Active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(raw: u64) -> TaskId {
        TaskId::new(raw)
    }

    #[test]
    fn empty_jobs_are_rejected() {
        let mut book = JobBook::new();
        assert_eq!(
            book.open("empty", JobGoal::TotalOutputs(1), vec![], SimTime::ZERO),
            Err(crate::Error::EmptyJob)
        );
        assert!(book.is_empty());
    }

    #[test]
    fn per_task_goal_completes_when_all_covered() {
        let mut book = JobBook::new();
        let id = book
            .open(
                "j",
                JobGoal::OutputsPerTask(2),
                vec![t(1), t(2)],
                SimTime::ZERO,
            )
            .unwrap();
        // Over-crediting one task does not finish the job.
        for _ in 0..5 {
            book.credit_output(t(1), SimTime::from_secs(1));
        }
        let job = book.get(id).unwrap();
        assert_eq!(job.state, JobState::Active);
        assert!((job.progress() - 0.5).abs() < 1e-12, "capped per task");
        book.credit_output(t(2), SimTime::from_secs(2));
        book.credit_output(t(2), SimTime::from_secs(3));
        let job = book.get(id).unwrap();
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(job.closed_at, Some(SimTime::from_secs(3)));
        assert_eq!(job.outputs_for(t(1)), 5);
        assert_eq!(job.total_outputs(), 7);
    }

    #[test]
    fn total_goal_counts_across_tasks() {
        let mut book = JobBook::new();
        let id = book
            .open(
                "j",
                JobGoal::TotalOutputs(3),
                vec![t(1), t(2)],
                SimTime::ZERO,
            )
            .unwrap();
        book.credit_output(t(1), SimTime::from_secs(1));
        book.credit_output(t(1), SimTime::from_secs(2));
        assert_eq!(book.get(id).unwrap().state, JobState::Active);
        book.credit_output(t(2), SimTime::from_secs(3));
        assert_eq!(book.get(id).unwrap().state, JobState::Completed);
    }

    #[test]
    fn credits_to_unenrolled_tasks_are_noops() {
        let mut book = JobBook::new();
        book.open("j", JobGoal::TotalOutputs(1), vec![t(1)], SimTime::ZERO)
            .unwrap();
        assert_eq!(book.credit_output(t(99), SimTime::ZERO), None);
    }

    #[test]
    fn completed_jobs_stop_counting() {
        let mut book = JobBook::new();
        let id = book
            .open("j", JobGoal::TotalOutputs(1), vec![t(1)], SimTime::ZERO)
            .unwrap();
        book.credit_output(t(1), SimTime::from_secs(1));
        book.credit_output(t(1), SimTime::from_secs(2));
        let job = book.get(id).unwrap();
        assert_eq!(job.total_outputs(), 1, "post-completion credits ignored");
    }

    #[test]
    fn cancel_and_queries() {
        let mut book = JobBook::new();
        let id = book
            .open("j", JobGoal::TotalOutputs(10), vec![t(1)], SimTime::ZERO)
            .unwrap();
        assert_eq!(book.job_of(t(1)), Some(id));
        assert_eq!(book.active().count(), 1);
        book.cancel(id, SimTime::from_secs(1)).unwrap();
        assert_eq!(book.get(id).unwrap().state, JobState::Cancelled);
        assert_eq!(book.active().count(), 0);
        assert!(book.cancel(JobId::new(99), SimTime::ZERO).is_err());
        assert_eq!(book.len(), 1);
        assert_eq!(book.iter().count(), 1);
    }

    #[test]
    fn degenerate_goals_complete_immediately_on_first_credit() {
        let mut book = JobBook::new();
        let id = book
            .open("zero", JobGoal::TotalOutputs(0), vec![t(1)], SimTime::ZERO)
            .unwrap();
        assert!(book.get(id).unwrap().is_goal_met());
        let id2 = book
            .open(
                "zero-per",
                JobGoal::OutputsPerTask(0),
                vec![t(2)],
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(book.get(id2).unwrap().progress(), 1.0);
    }
}
