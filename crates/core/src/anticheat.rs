//! Anti-cheat: reputation, collusion detection, and spam detection.
//!
//! Agreement-based verification has a known attack surface: two colluders
//! who coordinate out-of-band (e.g. "always type `a`") can flood the label
//! store, and a single spammer can poison inversion games. The deployed
//! systems defended in depth — random matching makes colluders unlikely to
//! be paired, taboo lists break constant strategies, gold tasks catch
//! consistently-wrong players. This module adds the platform-side
//! *detection* layer the paper describes:
//!
//! * [`Reputation`] — an exponentially-weighted trust score per player fed
//!   by gold outcomes and verified-output hits.
//! * [`CheatDetector`] — flags (a) **pair anomaly**: players who end up
//!   paired together far more often than random matching predicts, and
//!   (b) **low answer entropy**: players whose output distribution is
//!   degenerate (the "always type `a`" strategy).

use crate::answer::Label;
use crate::id::PlayerId;
use hc_collect::PlayerStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Exponentially-weighted reputation in `[0, 1]`.
///
/// New players start at `initial`; each positive/negative event moves the
/// score toward 1/0 with step `alpha`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reputation {
    score: f64,
    alpha: f64,
}

impl Reputation {
    /// Creates a reputation starting at `initial` with learning rate
    /// `alpha` (both clamped to `[0, 1]`).
    #[must_use]
    pub fn new(initial: f64, alpha: f64) -> Self {
        Reputation {
            score: initial.clamp(0.0, 1.0),
            alpha: alpha.clamp(0.0, 1.0),
        }
    }

    /// Current score.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Records a positive signal (gold hit, promoted output).
    pub fn record_positive(&mut self) {
        self.score += self.alpha * (1.0 - self.score);
    }

    /// Records a negative signal (gold miss, rejected output).
    pub fn record_negative(&mut self) {
        self.score -= self.alpha * self.score;
    }
}

impl Default for Reputation {
    fn default() -> Self {
        Reputation::new(0.5, 0.1)
    }
}

/// Verdict produced by [`CheatDetector::assess`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheatAssessment {
    /// The player assessed.
    pub player: PlayerId,
    /// Highest fraction of this player's games shared with a single
    /// partner (`None` before any games).
    pub max_pair_share: Option<f64>,
    /// Shannon entropy (bits) of the player's answer distribution
    /// (`None` before any answers).
    pub answer_entropy: Option<f64>,
    /// Whether the pair-share test fired.
    pub pair_anomaly: bool,
    /// Whether the entropy test fired.
    pub low_entropy: bool,
}

impl CheatAssessment {
    /// `true` when any detector fired.
    #[must_use]
    pub fn is_suspicious(&self) -> bool {
        self.pair_anomaly || self.low_entropy
    }
}

/// Streaming collusion/spam detector.
///
/// # Examples
///
/// ```
/// use hc_core::anticheat::CheatDetector;
/// use hc_core::{Label, PlayerId};
///
/// let mut det = CheatDetector::new(0.5, 1.0, 10);
/// let (a, b) = (PlayerId::new(1), PlayerId::new(2));
/// for _ in 0..20 {
///     det.record_pairing(a, b);           // always the same partner…
///     det.record_answer(a, &Label::new("x")); // …always the same answer
/// }
/// let assessment = det.assess(a);
/// assert!(assessment.pair_anomaly);
/// assert!(assessment.low_entropy);
/// assert!(assessment.is_suspicious());
/// ```
#[derive(Debug, Clone)]
pub struct CheatDetector {
    /// partner -> count, per player. Outer layer is a dense id-indexed
    /// store (id-order iteration == the old BTreeMap key order).
    pairings: PlayerStore<BTreeMap<PlayerId, u32>>,
    /// label -> count, per player.
    answers: PlayerStore<BTreeMap<Label, u32>>,
    /// Pair-share threshold above which the pair test fires.
    max_pair_share: f64,
    /// Entropy (bits) below which the entropy test fires.
    min_entropy_bits: f64,
    /// Minimum evidence (games resp. answers) before either test may fire.
    min_evidence: u32,
}

impl CheatDetector {
    /// Creates a detector.
    ///
    /// * `max_pair_share` — flag when one partner accounts for more than
    ///   this fraction of a player's games (clamped to `[0, 1]`).
    /// * `min_entropy_bits` — flag when the answer entropy is below this.
    /// * `min_evidence` — both tests stay silent until this many games or
    ///   answers exist (at least 1).
    #[must_use]
    pub fn new(max_pair_share: f64, min_entropy_bits: f64, min_evidence: u32) -> Self {
        CheatDetector {
            pairings: PlayerStore::new(),
            answers: PlayerStore::new(),
            max_pair_share: max_pair_share.clamp(0.0, 1.0),
            min_entropy_bits: min_entropy_bits.max(0.0),
            min_evidence: min_evidence.max(1),
        }
    }

    /// Records that `a` and `b` played a session together.
    pub fn record_pairing(&mut self, a: PlayerId, b: PlayerId) {
        *self
            .pairings
            .get_or_insert_with(a.raw(), BTreeMap::new)
            .entry(b)
            .or_insert(0) += 1;
        *self
            .pairings
            .get_or_insert_with(b.raw(), BTreeMap::new)
            .entry(a)
            .or_insert(0) += 1;
    }

    /// Records one answer by `player`.
    pub fn record_answer(&mut self, player: PlayerId, label: &Label) {
        *self
            .answers
            .get_or_insert_with(player.raw(), BTreeMap::new)
            .entry(label.clone())
            .or_insert(0) += 1;
    }

    /// Total games recorded for `player`.
    #[must_use]
    pub fn games_of(&self, player: PlayerId) -> u32 {
        self.pairings
            .get(player.raw())
            .map_or(0, |m| m.values().sum())
    }

    /// Shannon entropy (bits) of the player's answer distribution.
    #[must_use]
    pub fn answer_entropy(&self, player: PlayerId) -> Option<f64> {
        let counts = self.answers.get(player.raw())?;
        let total: u32 = counts.values().sum();
        if total == 0 {
            return None;
        }
        let total = f64::from(total);
        let mut h = 0.0;
        for &c in counts.values() {
            let p = f64::from(c) / total;
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        Some(h)
    }

    /// Runs both tests for `player`.
    #[must_use]
    pub fn assess(&self, player: PlayerId) -> CheatAssessment {
        let games = self.games_of(player);
        let max_pair_share = self.pairings.get(player.raw()).and_then(|m| {
            let total: u32 = m.values().sum();
            if total == 0 {
                return None;
            }
            let max = m.values().copied().max().unwrap_or(0);
            Some(f64::from(max) / f64::from(total))
        });
        let pair_anomaly =
            games >= self.min_evidence && max_pair_share.is_some_and(|s| s > self.max_pair_share);

        let answer_total: u32 = self
            .answers
            .get(player.raw())
            .map_or(0, |m| m.values().sum());
        let answer_entropy = self.answer_entropy(player);
        let low_entropy = answer_total >= self.min_evidence
            && answer_entropy.is_some_and(|h| h < self.min_entropy_bits);

        if (pair_anomaly || low_entropy) && hc_obs::active() {
            // Counts *assessments that fired*, one per `assess` call —
            // observed only, never read back by the detector.
            hc_obs::counter_now("core.cheat_flags", 1);
        }
        CheatAssessment {
            player,
            max_pair_share,
            answer_entropy,
            pair_anomaly,
            low_entropy,
        }
    }

    /// All players with at least one recorded game or answer that assess as
    /// suspicious.
    #[must_use]
    pub fn suspicious_players(&self) -> Vec<PlayerId> {
        let mut ids: Vec<PlayerId> = self
            .pairings
            .ids()
            .chain(self.answers.ids())
            .map(PlayerId::new)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .filter(|p| self.assess(*p).is_suspicious())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reputation_moves_and_clamps() {
        let mut r = Reputation::new(0.5, 0.5);
        r.record_positive();
        assert!((r.score() - 0.75).abs() < 1e-12);
        r.record_negative();
        assert!((r.score() - 0.375).abs() < 1e-12);
        for _ in 0..100 {
            r.record_positive();
        }
        assert!(r.score() <= 1.0);
        for _ in 0..100 {
            r.record_negative();
        }
        assert!(r.score() >= 0.0);
    }

    #[test]
    fn reputation_constructor_clamps() {
        assert_eq!(Reputation::new(5.0, 0.1).score(), 1.0);
        assert_eq!(Reputation::new(-1.0, 0.1).score(), 0.0);
        assert_eq!(Reputation::default().score(), 0.5);
    }

    #[test]
    fn pair_anomaly_needs_evidence() {
        let mut det = CheatDetector::new(0.5, 1.0, 10);
        let (a, b) = (PlayerId::new(1), PlayerId::new(2));
        for _ in 0..5 {
            det.record_pairing(a, b);
        }
        assert!(!det.assess(a).pair_anomaly, "below evidence threshold");
        for _ in 0..5 {
            det.record_pairing(a, b);
        }
        assert!(det.assess(a).pair_anomaly);
        assert_eq!(det.games_of(a), 10);
    }

    #[test]
    fn random_matching_pattern_is_clean() {
        let mut det = CheatDetector::new(0.5, 1.0, 10);
        let a = PlayerId::new(1);
        for i in 2..30 {
            det.record_pairing(a, PlayerId::new(i));
        }
        let assessment = det.assess(a);
        assert!(!assessment.pair_anomaly);
        assert!(assessment.max_pair_share.unwrap() < 0.1);
    }

    #[test]
    fn entropy_flags_constant_answers() {
        let mut det = CheatDetector::new(0.5, 1.5, 10);
        let a = PlayerId::new(1);
        for _ in 0..20 {
            det.record_answer(a, &Label::new("x"));
        }
        let assessment = det.assess(a);
        assert_eq!(assessment.answer_entropy, Some(0.0));
        assert!(assessment.low_entropy);
    }

    #[test]
    fn entropy_of_uniform_answers_is_high() {
        let mut det = CheatDetector::new(0.5, 1.5, 4);
        let a = PlayerId::new(1);
        for w in ["a", "b", "c", "d"] {
            det.record_answer(a, &Label::new(w));
        }
        let h = det.answer_entropy(a).unwrap();
        assert!((h - 2.0).abs() < 1e-12, "uniform over 4 = 2 bits, got {h}");
        assert!(!det.assess(a).low_entropy);
    }

    #[test]
    fn unknown_players_assess_clean() {
        let det = CheatDetector::new(0.5, 1.0, 1);
        let a = det.assess(PlayerId::new(42));
        assert_eq!(a.max_pair_share, None);
        assert_eq!(a.answer_entropy, None);
        assert!(!a.is_suspicious());
    }

    #[test]
    fn suspicious_players_lists_only_flagged() {
        let mut det = CheatDetector::new(0.5, 1.0, 5);
        let (a, b) = (PlayerId::new(1), PlayerId::new(2));
        // a & b collude; c plays randomly.
        for _ in 0..10 {
            det.record_pairing(a, b);
        }
        let c = PlayerId::new(3);
        for i in 10..20 {
            det.record_pairing(c, PlayerId::new(i));
        }
        let sus = det.suspicious_players();
        assert!(sus.contains(&a));
        assert!(sus.contains(&b));
        assert!(!sus.contains(&c));
    }

    #[test]
    fn pairing_is_recorded_symmetrically() {
        let mut det = CheatDetector::new(0.9, 0.0, 1);
        det.record_pairing(PlayerId::new(1), PlayerId::new(2));
        assert_eq!(det.games_of(PlayerId::new(1)), 1);
        assert_eq!(det.games_of(PlayerId::new(2)), 1);
    }
}
