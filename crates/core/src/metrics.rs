//! GWAP evaluation metrics: throughput, ALP, expected contribution.
//!
//! The paper proposes exactly three numbers to compare games with a
//! purpose:
//!
//! * **Throughput** — problem instances solved per *human-hour* of play.
//!   Time is counted per participating human, so an hour of a two-player
//!   game contributes two human-hours.
//! * **ALP (average lifetime play)** — the expected total time a player
//!   spends on the game over their lifetime; the "enjoyability" factor.
//! * **Expected contribution** = throughput × ALP — the number of problem
//!   instances one average recruit will ultimately solve, the headline
//!   column of experiment T1.
//!
//! [`ContributionLedger`] accumulates play time and verified outputs and
//! computes all three, preserving the accounting identity
//! `expected_contribution = throughput × alp` exactly.

use crate::id::PlayerId;
use hc_collect::PlayerStore;
use hc_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The paper's three metrics for one game.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GwapMetrics {
    /// Verified problem instances per human-hour of play.
    pub throughput_per_human_hour: f64,
    /// Average lifetime play per player, in hours.
    pub alp_hours: f64,
    /// Expected verified instances contributed by one average player over
    /// their lifetime (`throughput × ALP`).
    pub expected_contribution: f64,
    /// Total verified outputs counted.
    pub total_outputs: u64,
    /// Total human-hours counted.
    pub total_human_hours: f64,
    /// Distinct players counted.
    pub player_count: u64,
}

impl std::fmt::Display for GwapMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "throughput={:.1}/h  ALP={:.1}min  expected contribution={:.0}",
            self.throughput_per_human_hour,
            self.alp_hours * 60.0,
            self.expected_contribution
        )
    }
}

/// Accumulates per-player play time and verified outputs.
///
/// # Examples
///
/// ```
/// use hc_core::{ContributionLedger, PlayerId};
/// use hc_sim::SimDuration;
///
/// let mut ledger = ContributionLedger::new();
/// // Two players play one hour together and verify 200 labels.
/// ledger.record_play(PlayerId::new(1), SimDuration::from_hours(1));
/// ledger.record_play(PlayerId::new(2), SimDuration::from_hours(1));
/// ledger.record_outputs(200);
///
/// let m = ledger.metrics();
/// assert!((m.throughput_per_human_hour - 100.0).abs() < 1e-9);
/// assert!((m.alp_hours - 1.0).abs() < 1e-9);
/// assert!((m.expected_contribution - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContributionLedger {
    // Hot on every session end. Lookups/inserts are order-free; the one
    // iteration that feeds an f64 sum (`total_human_hours`) runs in the
    // store's id order — sorted key order — so the summation order, and
    // therefore the exact float result, matches the old map byte for byte.
    play_time: PlayerStore<SimDuration>,
    total_outputs: u64,
}

impl ContributionLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        ContributionLedger::default()
    }

    /// Adds play time for one player (call once per session per player).
    ///
    /// Under an `hc-obs` recording scope this also emits the
    /// `metrics.play_us` / `metrics.players` counters, so `trace
    /// summary` can report throughput and ALP live; the counters mirror
    /// the ledger exactly (see the `obs_metrics` regression test).
    pub fn record_play(&mut self, player: PlayerId, time: SimDuration) {
        if hc_obs::active() {
            if !self.play_time.contains(player.raw()) {
                hc_obs::counter_now("metrics.players", 1);
            }
            hc_obs::counter_now("metrics.play_us", time.ticks());
        }
        let entry = self
            .play_time
            .get_or_insert_with(player.raw(), || SimDuration::ZERO);
        *entry += time;
    }

    /// Adds `n` verified outputs (mirrored to the `metrics.outputs`
    /// counter under a recording scope).
    pub fn record_outputs(&mut self, n: u64) {
        if hc_obs::active() {
            hc_obs::counter_now("metrics.outputs", n);
        }
        self.total_outputs += n;
    }

    /// Total verified outputs so far.
    #[must_use]
    pub fn total_outputs(&self) -> u64 {
        self.total_outputs
    }

    /// Total human-hours so far.
    #[must_use]
    pub fn total_human_hours(&self) -> f64 {
        // Float addition is not associative: sum in sorted key order,
        // exactly as the previous BTreeMap-backed ledger did.
        self.play_time.iter().map(|(_, d)| d.as_hours_f64()).sum()
    }

    /// Distinct players with any recorded time.
    #[must_use]
    pub fn player_count(&self) -> u64 {
        self.play_time.len() as u64
    }

    /// Lifetime play of one player, if recorded.
    #[must_use]
    pub fn lifetime_of(&self, player: PlayerId) -> Option<SimDuration> {
        self.play_time.get(player.raw()).copied()
    }

    /// Computes the paper's three metrics. With no recorded time or no
    /// players every rate is 0 (never NaN).
    #[must_use]
    pub fn metrics(&self) -> GwapMetrics {
        let hours = self.total_human_hours();
        let players = self.player_count();
        let throughput = if hours > 0.0 {
            self.total_outputs as f64 / hours
        } else {
            0.0
        };
        let alp = if players > 0 {
            hours / players as f64
        } else {
            0.0
        };
        GwapMetrics {
            throughput_per_human_hour: throughput,
            alp_hours: alp,
            expected_contribution: throughput * alp,
            total_outputs: self.total_outputs,
            total_human_hours: hours,
            player_count: players,
        }
    }

    /// Merges another ledger into this one (per-player times add).
    ///
    /// Deliberately does *not* re-emit `hc-obs` counters: the other
    /// ledger's `record_play`/`record_outputs` calls already emitted
    /// them when they happened, so merging must not double-count.
    pub fn merge(&mut self, other: &ContributionLedger) {
        for (p, d) in other.play_time.iter() {
            let entry = self.play_time.get_or_insert_with(p, || SimDuration::ZERO);
            *entry += *d;
        }
        self.total_outputs += other.total_outputs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_contribution_equals_throughput_times_alp() {
        let mut l = ContributionLedger::new();
        for i in 0..10 {
            l.record_play(PlayerId::new(i), SimDuration::from_mins(30 + i * 10));
        }
        l.record_outputs(1234);
        let m = l.metrics();
        assert!((m.expected_contribution - m.throughput_per_human_hour * m.alp_hours).abs() < 1e-9);
        assert_eq!(m.total_outputs, 1234);
        assert_eq!(m.player_count, 10);
    }

    #[test]
    fn alp_is_mean_over_players() {
        let mut l = ContributionLedger::new();
        l.record_play(PlayerId::new(1), SimDuration::from_hours(2));
        l.record_play(PlayerId::new(2), SimDuration::from_hours(4));
        assert!((l.metrics().alp_hours - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_sessions_accumulate_per_player() {
        let mut l = ContributionLedger::new();
        l.record_play(PlayerId::new(1), SimDuration::from_mins(30));
        l.record_play(PlayerId::new(1), SimDuration::from_mins(61));
        assert_eq!(
            l.lifetime_of(PlayerId::new(1)),
            Some(SimDuration::from_mins(91))
        );
        assert_eq!(l.player_count(), 1);
    }

    #[test]
    fn empty_ledger_is_all_zero() {
        let m = ContributionLedger::new().metrics();
        assert_eq!(m.throughput_per_human_hour, 0.0);
        assert_eq!(m.alp_hours, 0.0);
        assert_eq!(m.expected_contribution, 0.0);
        assert!(!m.throughput_per_human_hour.is_nan());
    }

    #[test]
    fn outputs_without_time_yield_zero_throughput() {
        let mut l = ContributionLedger::new();
        l.record_outputs(10);
        let m = l.metrics();
        assert_eq!(m.throughput_per_human_hour, 0.0);
        assert_eq!(m.total_outputs, 10);
    }

    #[test]
    fn merge_adds_per_player_and_outputs() {
        let mut a = ContributionLedger::new();
        a.record_play(PlayerId::new(1), SimDuration::from_hours(1));
        a.record_outputs(5);
        let mut b = ContributionLedger::new();
        b.record_play(PlayerId::new(1), SimDuration::from_hours(1));
        b.record_play(PlayerId::new(2), SimDuration::from_hours(2));
        b.record_outputs(7);
        a.merge(&b);
        assert_eq!(a.total_outputs(), 12);
        assert_eq!(a.player_count(), 2);
        assert_eq!(
            a.lifetime_of(PlayerId::new(1)),
            Some(SimDuration::from_hours(2))
        );
        assert!((a.total_human_hours() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn esp_game_shaped_numbers() {
        // Calibration sanity: 233 labels/human-hour and 91 min ALP must
        // yield the paper's expected contribution (~353 labels/player).
        let mut l = ContributionLedger::new();
        l.record_play(PlayerId::new(1), SimDuration::from_mins(91));
        l.record_outputs((233.0_f64 * 91.0 / 60.0).round() as u64);
        let m = l.metrics();
        assert!((m.expected_contribution - 353.0).abs() < 2.0, "{m}");
    }

    #[test]
    fn metrics_display() {
        let m = ContributionLedger::new().metrics();
        assert!(m.to_string().contains("throughput"));
    }
}
