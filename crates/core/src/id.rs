//! Strongly-typed identifiers.
//!
//! Every entity in the platform — players, tasks, jobs, sessions, rounds —
//! gets its own newtype over `u64`. Mixing a `PlayerId` where a `TaskId`
//! belongs is a compile error, which in a system whose whole job is joining
//! answer streams to task streams is worth the boilerplate. A macro keeps
//! the newtypes uniform.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw numeric id.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw numeric id.
            #[must_use]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies a player (human or replay bot) across the platform.
    PlayerId,
    "player-"
);
define_id!(
    /// Identifies a problem instance (an image to label, a word to
    /// transcribe, a clip to tag).
    TaskId,
    "task-"
);
define_id!(
    /// Identifies a labeling job/campaign — a batch of tasks with a shared
    /// verification policy.
    JobId,
    "job-"
);
define_id!(
    /// Identifies one game session (a timed sequence of rounds between two
    /// seats).
    SessionId,
    "session-"
);
define_id!(
    /// Identifies one round within the platform (globally unique, not
    /// per-session).
    RoundId,
    "round-"
);

/// A monotonically increasing id allocator, one per id type.
///
/// # Examples
///
/// ```
/// use hc_core::id::{IdAllocator, TaskId};
/// let mut alloc = IdAllocator::<TaskId>::new();
/// assert_eq!(alloc.next(), TaskId::new(0));
/// assert_eq!(alloc.next(), TaskId::new(1));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdAllocator<T> {
    next: u64,
    #[serde(skip)]
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: From<u64>> IdAllocator<T> {
    /// Creates an allocator starting at zero.
    #[must_use]
    pub fn new() -> Self {
        IdAllocator {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocates the next id.
    #[allow(clippy::should_implement_trait)] // deliberate: not an Iterator
    pub fn next(&mut self) -> T {
        let id = T::from(self.next);
        self.next += 1;
        id
    }

    /// How many ids have been allocated.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

impl<T: From<u64>> Default for IdAllocator<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw() {
        let p = PlayerId::new(42);
        assert_eq!(p.raw(), 42);
        assert_eq!(u64::from(p), 42);
        assert_eq!(PlayerId::from(42), p);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(PlayerId::new(7).to_string(), "player-7");
        assert_eq!(TaskId::new(1).to_string(), "task-1");
        assert_eq!(JobId::new(2).to_string(), "job-2");
        assert_eq!(SessionId::new(3).to_string(), "session-3");
        assert_eq!(RoundId::new(4).to_string(), "round-4");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TaskId::new(1));
        set.insert(TaskId::new(1));
        set.insert(TaskId::new(2));
        assert_eq!(set.len(), 2);
        assert!(TaskId::new(1) < TaskId::new(2));
    }

    #[test]
    fn allocator_is_monotone_and_counts() {
        let mut a = IdAllocator::<SessionId>::new();
        let first = a.next();
        let second = a.next();
        assert!(first < second);
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property; documented here as a reminder that the
        // point of the newtypes is that this would not compile:
        // `PlayerId::new(1) == TaskId::new(1)`
        let p = PlayerId::new(1);
        let t = TaskId::new(1);
        assert_eq!(p.raw(), t.raw());
    }
}
