//! Game sessions — timed sequences of rounds between two seats.
//!
//! A session is what a player experiences as "one game": in the deployed
//! ESP Game, 2.5 minutes and up to 15 images with the same partner. The
//! [`Session`] object tracks the budget (round count and wall clock),
//! accumulates [`RoundRecord`]s, and finalizes into a
//! [`SessionTranscript`] — the unit consumed by the metrics ledger and the
//! anti-cheat layer.

use crate::id::{PlayerId, SessionId, TaskId};
use crate::scoring::ScoreRule;
use crate::templates::TemplateKind;
use hc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Session-level parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Maximum rounds per session (ESP: 15 images).
    pub max_rounds: u32,
    /// Per-round time limit.
    pub round_time_limit: SimDuration,
    /// Whole-session wall-clock limit (ESP: 2.5 minutes).
    pub session_time_limit: SimDuration,
    /// Scoring rule applied to rounds.
    pub score_rule: ScoreRule,
}

impl Default for SessionConfig {
    /// The deployed ESP Game's published session shape.
    fn default() -> Self {
        SessionConfig {
            max_rounds: 15,
            round_time_limit: SimDuration::from_secs(150),
            session_time_limit: SimDuration::from_secs(150),
            score_rule: ScoreRule::default(),
        }
    }
}

/// What happened in one round, template-agnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Template the round used.
    pub template: TemplateKind,
    /// Primary task served (left seat's task for input-agreement rounds).
    pub task: TaskId,
    /// Whether the round reached its success condition.
    pub matched: bool,
    /// Candidate outputs the round produced (labels/tags/facts before
    /// k-agreement promotion).
    pub candidate_outputs: u32,
    /// Wall time the round took.
    pub duration: SimDuration,
    /// Points awarded to each seat.
    pub points: [u32; 2],
}

/// A live session.
///
/// # Examples
///
/// ```
/// use hc_core::prelude::*;
///
/// let cfg = SessionConfig::default();
/// let mut s = Session::new(
///     SessionId::new(1),
///     [PlayerId::new(1), PlayerId::new(2)],
///     SimTime::ZERO,
///     cfg,
/// );
/// assert!(s.can_play_more(SimTime::ZERO));
/// s.record_round(RoundRecord {
///     template: TemplateKind::OutputAgreement,
///     task: TaskId::new(1),
///     matched: true,
///     candidate_outputs: 1,
///     duration: SimDuration::from_secs(9),
///     points: [130, 130],
/// });
/// let transcript = s.finish(SimTime::from_secs(9));
/// assert_eq!(transcript.rounds(), 1);
/// assert_eq!(transcript.matched_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    id: SessionId,
    players: [PlayerId; 2],
    started: SimTime,
    config: SessionConfig,
    records: Vec<RoundRecord>,
}

impl Session {
    /// Opens a session between `players` at `started`.
    #[must_use]
    pub fn new(
        id: SessionId,
        players: [PlayerId; 2],
        started: SimTime,
        config: SessionConfig,
    ) -> Self {
        Session {
            id,
            players,
            started,
            config,
            records: Vec::new(),
        }
    }

    /// The session id.
    #[must_use]
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The two seated players (left, right).
    #[must_use]
    pub fn players(&self) -> [PlayerId; 2] {
        self.players
    }

    /// When the session started.
    #[must_use]
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// The active config.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Rounds recorded so far.
    #[must_use]
    pub fn rounds_played(&self) -> u32 {
        self.records.len() as u32
    }

    /// Whether another round fits in the round and time budgets as of
    /// `now`.
    #[must_use]
    pub fn can_play_more(&self, now: SimTime) -> bool {
        self.rounds_played() < self.config.max_rounds
            && now.saturating_since(self.started) < self.config.session_time_limit
    }

    /// Appends one round record.
    pub fn record_round(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// Closes the session at `now` and produces the transcript.
    #[must_use]
    pub fn finish(self, now: SimTime) -> SessionTranscript {
        let mut total_points = [0u64, 0u64];
        for r in &self.records {
            total_points[0] += u64::from(r.points[0]);
            total_points[1] += u64::from(r.points[1]);
        }
        SessionTranscript {
            id: self.id,
            players: self.players,
            started: self.started,
            ended: now.max(self.started),
            records: self.records,
            total_points,
        }
    }
}

/// The immutable record of a completed session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTranscript {
    /// Session id.
    pub id: SessionId,
    /// The two seated players (left, right).
    pub players: [PlayerId; 2],
    /// Session start.
    pub started: SimTime,
    /// Session end.
    pub ended: SimTime,
    /// Every round, in play order.
    pub records: Vec<RoundRecord>,
    /// Total points per seat.
    pub total_points: [u64; 2],
}

impl SessionTranscript {
    /// Wall-clock length of the session.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.ended.saturating_since(self.started)
    }

    /// Number of rounds played.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.records.len()
    }

    /// Number of rounds that matched.
    #[must_use]
    pub fn matched_count(&self) -> usize {
        self.records.iter().filter(|r| r.matched).count()
    }

    /// Fraction of rounds that matched (0 for an empty session).
    #[must_use]
    pub fn match_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.matched_count() as f64 / self.records.len() as f64
        }
    }

    /// Total candidate outputs across rounds.
    #[must_use]
    pub fn candidate_outputs(&self) -> u64 {
        self.records
            .iter()
            .map(|r| u64::from(r.candidate_outputs))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(matched: bool, secs: u64) -> RoundRecord {
        RoundRecord {
            template: TemplateKind::OutputAgreement,
            task: TaskId::new(1),
            matched,
            candidate_outputs: u32::from(matched),
            duration: SimDuration::from_secs(secs),
            points: [if matched { 100 } else { 5 }; 2],
        }
    }

    #[test]
    fn round_budget_is_enforced() {
        let cfg = SessionConfig {
            max_rounds: 2,
            ..SessionConfig::default()
        };
        let mut s = Session::new(
            SessionId::new(1),
            [PlayerId::new(1), PlayerId::new(2)],
            SimTime::ZERO,
            cfg,
        );
        assert!(s.can_play_more(SimTime::ZERO));
        s.record_round(record(true, 5));
        assert!(s.can_play_more(SimTime::from_secs(5)));
        s.record_round(record(false, 5));
        assert!(!s.can_play_more(SimTime::from_secs(10)));
    }

    #[test]
    fn time_budget_is_enforced() {
        let cfg = SessionConfig {
            session_time_limit: SimDuration::from_secs(100),
            ..SessionConfig::default()
        };
        let s = Session::new(
            SessionId::new(1),
            [PlayerId::new(1), PlayerId::new(2)],
            SimTime::from_secs(50),
            cfg,
        );
        assert!(s.can_play_more(SimTime::from_secs(149)));
        assert!(!s.can_play_more(SimTime::from_secs(150)));
        assert!(!s.can_play_more(SimTime::from_secs(1000)));
    }

    #[test]
    fn transcript_aggregates() {
        let mut s = Session::new(
            SessionId::new(9),
            [PlayerId::new(1), PlayerId::new(2)],
            SimTime::from_secs(10),
            SessionConfig::default(),
        );
        s.record_round(record(true, 10));
        s.record_round(record(false, 20));
        s.record_round(record(true, 30));
        let t = s.finish(SimTime::from_secs(70));
        assert_eq!(t.duration(), SimDuration::from_secs(60));
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.matched_count(), 2);
        assert!((t.match_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.candidate_outputs(), 2);
        assert_eq!(t.total_points, [205, 205]);
        assert_eq!(t.players, [PlayerId::new(1), PlayerId::new(2)]);
    }

    #[test]
    fn empty_session_transcript() {
        let s = Session::new(
            SessionId::new(1),
            [PlayerId::new(1), PlayerId::new(2)],
            SimTime::ZERO,
            SessionConfig::default(),
        );
        let t = s.finish(SimTime::ZERO);
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.match_rate(), 0.0);
        assert_eq!(t.duration(), SimDuration::ZERO);
    }

    #[test]
    fn finish_clamps_backwards_clock() {
        let s = Session::new(
            SessionId::new(1),
            [PlayerId::new(1), PlayerId::new(2)],
            SimTime::from_secs(100),
            SessionConfig::default(),
        );
        let t = s.finish(SimTime::from_secs(50)); // clock anomaly
        assert_eq!(t.duration(), SimDuration::ZERO);
    }

    #[test]
    fn accessors() {
        let cfg = SessionConfig::default();
        let s = Session::new(
            SessionId::new(3),
            [PlayerId::new(4), PlayerId::new(5)],
            SimTime::from_secs(1),
            cfg,
        );
        assert_eq!(s.id(), SessionId::new(3));
        assert_eq!(s.players(), [PlayerId::new(4), PlayerId::new(5)]);
        assert_eq!(s.started(), SimTime::from_secs(1));
        assert_eq!(s.config().max_rounds, 15);
        assert_eq!(s.rounds_played(), 0);
    }
}
