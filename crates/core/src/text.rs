//! Text normalization and approximate matching.
//!
//! Output-agreement games hinge on deciding whether two freely-typed strings
//! "agree". The deployed systems normalize aggressively (case, whitespace,
//! punctuation, trivial plurals) and reCAPTCHA additionally tolerates small
//! typos when comparing a user's transcription against the control word.
//! This module centralizes those rules so every template, game and the
//! captcha crate agree on what agreement means.

/// Normalizes a raw player string into canonical label form:
/// lowercase, trimmed, punctuation stripped, internal whitespace collapsed
/// to single spaces, and a trivial English plural reduction (`dogs` → `dog`,
/// `boxes` → `box`, but `glass` stays `glass`).
///
/// Normalization is **idempotent**: `normalize_label(normalize_label(s)) ==
/// normalize_label(s)` (property-tested).
///
/// # Examples
///
/// ```
/// use hc_core::text::normalize_label;
/// assert_eq!(normalize_label("  Dogs!! "), "dog");
/// assert_eq!(normalize_label("Hot   Dog"), "hot dog");
/// assert_eq!(normalize_label("GLASS"), "glass");
/// ```
#[must_use]
pub fn normalize_label(raw: &str) -> String {
    let mut cleaned = String::with_capacity(raw.len());
    for c in raw.chars() {
        if c.is_alphanumeric() {
            // Full Unicode lowercasing (may expand, e.g. 'İ' → "i\u{307}");
            // expansion products that are not themselves alphanumeric
            // (combining marks) are dropped to keep normalization
            // idempotent.
            cleaned.extend(c.to_lowercase().filter(|lc| lc.is_alphanumeric()));
        } else {
            cleaned.push(' ');
        }
    }
    cleaned
        .split_whitespace()
        .map(singularize)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Reduces a trivial English plural. Deliberately conservative: only the
/// unambiguous `-ies`→`-y`, `-xes/-ses/-shes/-ches`→ drop `es`, and a
/// trailing `-s` (not `-ss`, not `-us`, not `-is`) → drop `s`.
#[must_use]
pub fn singularize(word: &str) -> String {
    let w = word;
    if w.len() > 3 && w.ends_with("ies") {
        return format!("{}y", &w[..w.len() - 3]); // hc-analyze: allow(P1): ends_with("ies") guarantees an ASCII suffix at least 3 bytes long
    }
    if w.len() > 3
        && (w.ends_with("xes") || w.ends_with("ses") || w.ends_with("shes") || w.ends_with("ches"))
    {
        return w[..w.len() - 2].to_string(); // hc-analyze: allow(P1): ends_with guarantees an ASCII suffix at least 2 bytes long
    }
    if w.len() > 2
        && w.ends_with('s')
        && !w.ends_with("ss")
        && !w.ends_with("us")
        && !w.ends_with("is")
    {
        return w[..w.len() - 1].to_string(); // hc-analyze: allow(P1): trailing ASCII s checked; len > 2
    }
    w.to_string()
}

/// Classic dynamic-programming Levenshtein edit distance (two-row variant,
/// `O(|a|·|b|)` time, `O(min)` space). Operates on Unicode scalar values.
///
/// # Examples
///
/// ```
/// use hc_core::text::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
#[must_use]
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Ensure b is the shorter side to bound memory.
    let (long, short) = if a.len() >= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub_cost = if lc == sc { 0 } else { 1 };
            // hc-analyze: allow(P1): j + 1 <= short.len(), the row width
            curr[j + 1] = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Normalized similarity in `[0, 1]`: `1 - distance / max_len`, with two
/// empty strings defined as identical (1.0).
///
/// # Examples
///
/// ```
/// use hc_core::text::similarity;
/// assert_eq!(similarity("abc", "abc"), 1.0);
/// assert_eq!(similarity("", ""), 1.0);
/// assert!(similarity("cat", "car") > 0.6);
/// assert_eq!(similarity("abc", "xyz"), 0.0);
/// ```
#[must_use]
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Whether two raw strings agree after normalization, tolerating up to
/// `max_edits` edit operations between the normalized forms. `max_edits = 0`
/// is exact normalized equality; reCAPTCHA-style matching uses 1.
#[must_use]
pub fn fuzzy_agree(a: &str, b: &str, max_edits: usize) -> bool {
    let na = normalize_label(a);
    let nb = normalize_label(b);
    if na == nb {
        return true;
    }
    if max_edits == 0 {
        return false;
    }
    levenshtein(&na, &nb) <= max_edits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_handles_case_space_punct() {
        assert_eq!(normalize_label("  HELLO,   World! "), "hello world");
        assert_eq!(normalize_label("sky-scraper"), "sky scraper");
        assert_eq!(normalize_label(""), "");
        assert_eq!(normalize_label("!!!"), "");
    }

    #[test]
    fn plural_reduction_is_conservative() {
        assert_eq!(singularize("dogs"), "dog");
        assert_eq!(singularize("boxes"), "box");
        assert_eq!(singularize("churches"), "church");
        assert_eq!(singularize("dishes"), "dish");
        assert_eq!(singularize("cities"), "city");
        assert_eq!(singularize("glass"), "glass");
        assert_eq!(singularize("bus"), "bus");
        assert_eq!(singularize("tennis"), "tennis");
        assert_eq!(singularize("is"), "is");
        assert_eq!(singularize("as"), "as");
    }

    #[test]
    fn normalization_is_idempotent_on_samples() {
        for s in ["Dogs!!", "hot  DOGS", "churches", "a-b-c", "", "ﬁsh"] {
            let once = normalize_label(s);
            assert_eq!(normalize_label(&once), once, "not idempotent on {s:?}");
        }
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("a", ""), 1);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abcdef", "azced"), 3);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        let pairs = [("kitten", "sitting"), ("abc", ""), ("xy", "yx")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn levenshtein_unicode_is_per_scalar() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn similarity_bounds() {
        assert!((similarity("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        assert_eq!(similarity("", "abcd"), 0.0);
    }

    #[test]
    fn fuzzy_agree_tolerance() {
        assert!(fuzzy_agree("Dogs", "dog", 0)); // normalization alone
        assert!(!fuzzy_agree("dog", "fog", 0));
        assert!(fuzzy_agree("dog", "fog", 1));
        assert!(fuzzy_agree("overlooked", "overlook", 2));
        assert!(!fuzzy_agree("completely", "different", 2));
    }
}
