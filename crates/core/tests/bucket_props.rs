//! Partition-boundary properties for sharded matchmaking.
//!
//! Two equivalences pin the bucketed design:
//!
//! 1. **Pool vs hub-global matchmaker** — fed the same arrivals and the same
//!    RNG stream, a single [`BucketPool`] reproduces the hub-global
//!    [`Matchmaker`]'s pairing sequence exactly (decisions, timeouts, stats).
//! 2. **Sharded vs serial reduction** — distributing buckets over any
//!    `--shards` layout, stepping shards only when they hold arrivals or a
//!    sweep deadline is due (the engine's wake discipline), produces the
//!    exact per-bucket pair/timeout sequences of a serial hub-global run
//!    that owns every bucket and sweeps every window. This is the property
//!    that makes campaign results byte-identical at any layout.

use hc_core::bucket::{BucketLayout, BucketPool};
use hc_core::matchmaker::{MatchDecision, Matchmaker, MatchmakerConfig};
use hc_core::PlayerId;
use hc_sim::{RngFactory, SimDuration, SimTime};
use proptest::prelude::*;
use rand::SeedableRng;

const WINDOW_SECS: u64 = 10;

#[derive(Debug, Clone, PartialEq)]
enum PoolEvent {
    Paired {
        at: SimTime,
        player: PlayerId,
        partner: PlayerId,
        waited: SimDuration,
    },
    Queued {
        at: SimTime,
        player: PlayerId,
    },
    TimedOut {
        at: SimTime,
        player: PlayerId,
    },
}

/// One arrival after generation: delivery-windowed and bucketed.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    at: SimTime,
    player: PlayerId,
    bucket: u32,
}

fn window_of(at: SimTime) -> u64 {
    at.ticks() / SimDuration::from_secs(WINDOW_SECS).ticks()
}

fn last_tick(window: u64) -> SimTime {
    SimTime::from_ticks((window + 1) * SimDuration::from_secs(WINDOW_SECS).ticks() - 1)
}

/// Runs `arrivals` through `buckets` pools hosted on `shards` shards.
///
/// `serial` mode models the hub-global reference: every bucket lives on one
/// "shard" that is stepped (and swept) every window. Sharded mode steps a
/// shard only when it has deliveries or a previously-reported pool deadline
/// falls inside the window — the engine's wake discipline — so divergence
/// here would mean sweep timing depends on co-scheduled work.
fn run_layout(
    arrivals: &[Arrival],
    cfg: MatchmakerConfig,
    buckets: u32,
    shards: usize,
    seed: u64,
    serial: bool,
) -> Vec<Vec<PoolEvent>> {
    let factory = RngFactory::new(seed);
    let mut pools: Vec<BucketPool> = (0..buckets).map(|_| BucketPool::new(cfg)).collect();
    let mut draws: Vec<u64> = vec![0; buckets as usize];
    let mut events: Vec<Vec<PoolEvent>> = vec![Vec::new(); buckets as usize];
    let mut scratch: Vec<PlayerId> = Vec::new();

    // Deliveries grouped by (delivery window, bucket), in (time, player) key
    // order — the exchange guarantees exactly this order per destination.
    let mut deliveries: Vec<(u64, Arrival)> =
        arrivals.iter().map(|&a| (window_of(a.at) + 1, a)).collect();
    deliveries.sort_by_key(|&(w, a)| (w, a.at, a.player.raw()));
    let last_window = deliveries.iter().map(|&(w, _)| w).max().unwrap_or(0) + 64;

    // Per-shard wake (next deadline over its pools), None = idle.
    let mut wakes: Vec<Option<SimTime>> = vec![Some(SimTime::ZERO); shards];
    let mut cursor = 0usize;
    for window in 0..=last_window {
        let end = last_tick(window);
        let mut delivered: Vec<Vec<Arrival>> = vec![Vec::new(); shards];
        while cursor < deliveries.len() && deliveries[cursor].0 == window {
            let a = deliveries[cursor].1;
            delivered[a.bucket as usize % shards].push(a);
            cursor += 1;
        }
        for shard in 0..shards {
            let due = wakes[shard].is_some_and(|w| w <= end);
            if !serial && delivered[shard].is_empty() && !due {
                continue;
            }
            for &a in &delivered[shard] {
                let b = a.bucket as usize;
                let mut rng =
                    factory.indexed_stream("match", (u64::from(a.bucket) << 40) | draws[b]);
                draws[b] += 1;
                match pools[b].on_arrival(a.at, a.player, &mut rng) {
                    MatchDecision::Paired { partner, waited } => {
                        events[b].push(PoolEvent::Paired {
                            at: a.at,
                            player: a.player,
                            partner,
                            waited,
                        });
                    }
                    MatchDecision::Queued => {
                        events[b].push(PoolEvent::Queued {
                            at: a.at,
                            player: a.player,
                        });
                    }
                }
            }
            let mut wake: Option<SimTime> = None;
            for b in (0..buckets as usize).filter(|b| b % shards == shard) {
                scratch.clear();
                pools[b].take_timed_out_into(end, &mut scratch);
                for &p in &scratch {
                    events[b].push(PoolEvent::TimedOut { at: end, player: p });
                }
                if let Some(d) = pools[b].next_deadline() {
                    wake = Some(wake.map_or(d, |w| w.min(d)));
                }
            }
            wakes[shard] = wake;
        }
    }
    events
}

proptest! {
    #[test]
    fn sharded_layouts_match_the_serial_reference(
        seed in 0u64..1_000,
        buckets in 1u32..5,
        shards_a in 1usize..5,
        shards_b in 1usize..5,
        raw in prop::collection::vec((0u64..240, 1u64..40, 0u32..1_000), 1..120),
    ) {
        let layout = BucketLayout::new(buckets);
        let mut arrivals: Vec<Arrival> = raw
            .iter()
            .map(|&(sec, id, skill_raw)| Arrival {
                at: SimTime::from_secs(sec),
                player: PlayerId::new(id),
                bucket: layout.bucket_of(f64::from(skill_raw) / 1_000.0),
            })
            .collect();
        arrivals.sort_by_key(|a| (a.at, a.player.raw()));
        let cfg = MatchmakerConfig {
            bot_fallback_wait: SimDuration::from_secs(15),
            avoid_rematch: true,
        };
        let reference = run_layout(&arrivals, cfg, buckets, 1, seed, true);
        let lay_a = run_layout(&arrivals, cfg, buckets, shards_a, seed, false);
        let lay_b = run_layout(&arrivals, cfg, buckets, shards_b, seed, false);
        prop_assert_eq!(&lay_a, &reference);
        prop_assert_eq!(&lay_b, &reference);
    }

    #[test]
    fn single_pool_reproduces_hub_global_matchmaker(
        seed in 0u64..1_000,
        raw in prop::collection::vec((0u64..120, 1u64..25), 1..150),
    ) {
        let cfg = MatchmakerConfig::default();
        let mut pool = BucketPool::new(cfg);
        let mut hub = Matchmaker::new(cfg);
        let mut r_pool = rand::rngs::StdRng::seed_from_u64(seed);
        let mut r_hub = rand::rngs::StdRng::seed_from_u64(seed);
        let mut arrivals = raw.clone();
        arrivals.sort_unstable();
        for (i, &(sec, id)) in arrivals.iter().enumerate() {
            let at = SimTime::from_secs(sec);
            let p = PlayerId::new(id);
            prop_assert_eq!(
                pool.on_arrival(at, p, &mut r_pool),
                hub.on_arrival(at, p, &mut r_hub)
            );
            // Interleave sweeps so timeout paths are compared too.
            if i % 7 == 6 {
                let mut spill = Vec::new();
                pool.take_timed_out_into(at, &mut spill);
                prop_assert_eq!(spill, hub.take_timed_out(at));
            }
        }
        let horizon = SimTime::from_secs(10_000);
        let mut spill = Vec::new();
        pool.take_timed_out_into(horizon, &mut spill);
        prop_assert_eq!(spill, hub.take_timed_out(horizon));
        prop_assert_eq!(pool.stats(), hub.stats());
        prop_assert_eq!(pool.queue_len(), hub.queue_len());
        prop_assert_eq!(pool.wait_stats().count(), hub.wait_stats().count());
    }
}
