//! Property tests over the template state machines and verification
//! layers beyond what the root-level suite covers: input-agreement and
//! inversion rounds under arbitrary submission orders.

use hc_core::prelude::*;
use proptest::prelude::*;

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

proptest! {
    // ---------- input-agreement ----------

    #[test]
    fn input_agreement_success_requires_both_correct_votes(
        left_vote in any::<bool>(),
        right_vote in any::<bool>(),
        same in any::<bool>(),
    ) {
        let right_task = if same { TaskId::new(1) } else { TaskId::new(2) };
        let mut round =
            InputAgreementRound::new(TaskId::new(1), right_task, SimDuration::from_secs(100));
        round.submit(Seat::Left, Answer::text("desc"), t(0));
        round.submit(Seat::Left, Answer::verdict(left_vote), t(1));
        round.submit(Seat::Right, Answer::verdict(right_vote), t(2));
        let result = round.finish(t(3));
        let expected = (left_vote == same) && (right_vote == same);
        prop_assert_eq!(result.succeeded, expected);
        // Tags only flow on success.
        prop_assert_eq!(result.validated_tags().is_empty(), !expected || result.descriptions[0].is_empty() && result.descriptions[1].is_empty());
    }

    #[test]
    fn input_agreement_tags_attach_to_the_right_task(
        left_words in prop::collection::vec("[a-z]{2,6}", 0..4),
        right_words in prop::collection::vec("[a-z]{2,6}", 0..4),
    ) {
        let (lt, rt) = (TaskId::new(10), TaskId::new(20));
        let mut round = InputAgreementRound::new(lt, rt, SimDuration::from_secs(100));
        for w in &left_words {
            round.submit(Seat::Left, Answer::text(w), t(0));
        }
        for w in &right_words {
            round.submit(Seat::Right, Answer::text(w), t(1));
        }
        round.submit(Seat::Left, Answer::verdict(false), t(2));
        round.submit(Seat::Right, Answer::verdict(false), t(3));
        let result = round.finish(t(4));
        prop_assert!(result.succeeded, "different tasks, correct votes");
        for (task, tag) in result.validated_tags() {
            if left_words.iter().any(|w| Label::new(w) == tag) && task == lt {
                continue;
            }
            if right_words.iter().any(|w| Label::new(w) == tag) && task == rt {
                continue;
            }
            // A tag in both word lists may attach to either side.
            let in_both = left_words.iter().any(|w| Label::new(w) == tag)
                && right_words.iter().any(|w| Label::new(w) == tag);
            prop_assert!(in_both, "tag {tag} attached to wrong task {task}");
        }
    }

    // ---------- inversion ----------

    #[test]
    fn inversion_facts_only_flow_after_a_correct_guess(
        hints in prop::collection::vec("[a-z]{2,6}", 1..5),
        guesses in prop::collection::vec("[a-z]{2,6}", 0..5),
        include_secret in any::<bool>(),
    ) {
        let secret = "zzsecret";
        let mut round =
            InversionRound::new(TaskId::new(1), Label::new(secret), SimDuration::from_secs(500));
        let mut clock = 0;
        for h in &hints {
            round.submit(Seat::Left, Answer::text(h), t(clock));
            clock += 1;
        }
        for g in &guesses {
            round.submit(Seat::Right, Answer::text(g), t(clock));
            clock += 1;
        }
        if include_secret {
            round.submit(Seat::Right, Answer::text(secret), t(clock));
        }
        let result = round.finish(t(clock + 1));
        prop_assert_eq!(result.guessed, include_secret);
        if include_secret {
            // Every validated fact pairs the secret with a sent hint.
            for (s, clue) in result.validated_facts() {
                prop_assert_eq!(s, Label::new(secret));
                prop_assert!(hints.iter().any(|h| Label::new(h) == clue));
            }
        } else {
            prop_assert!(result.validated_facts().is_empty());
        }
    }

    #[test]
    fn inversion_never_accepts_leaky_hints(secret in "[a-z]{3,8}") {
        let mut round = InversionRound::new(
            TaskId::new(1),
            Label::new(&secret),
            SimDuration::from_secs(100),
        );
        // The secret itself and sentences containing it are rejected.
        prop_assert_eq!(
            round.submit(Seat::Left, Answer::text(&secret), t(0)),
            SubmitOutcome::TabooViolation
        );
        let leaky = format!("it is {secret} yes");
        prop_assert_eq!(
            round.submit(Seat::Left, Answer::text(&leaky), t(0)),
            SubmitOutcome::TabooViolation
        );
        prop_assert!(round.hints().is_empty());
    }

    // ---------- gold bank ----------

    #[test]
    fn gold_trust_gate_is_threshold_exact(
        hits in 0u32..20,
        misses in 0u32..20,
        min_acc in 0.0f64..1.0,
    ) {
        let evidence = 1;
        let mut bank = GoldBank::new(min_acc, evidence);
        bank.add_gold(TaskId::new(1), [Label::new("good")]);
        let p = PlayerId::new(1);
        for _ in 0..hits {
            bank.check(p, TaskId::new(1), &Label::new("good"));
        }
        for _ in 0..misses {
            bank.check(p, TaskId::new(1), &Label::new("bad"));
        }
        let total = hits + misses;
        let trusted = bank.is_trusted(p);
        if total == 0 {
            prop_assert!(trusted, "no evidence keeps trust");
        } else {
            let acc = f64::from(hits) / f64::from(total);
            prop_assert_eq!(trusted, acc >= min_acc);
        }
    }

    // ---------- leaderboard ----------

    #[test]
    fn leaderboard_is_sorted_and_truncated(
        scores in prop::collection::vec((0u64..50, any::<bool>()), 0..60),
        top_n in 0usize..20,
    ) {
        let mut board = Scoreboard::new(ScoreRule::default());
        for (p, matched) in &scores {
            board.record_round(PlayerId::new(*p), *matched, 30.0);
        }
        let lb = board.leaderboard(top_n);
        prop_assert!(lb.len() <= top_n);
        let entries = lb.entries();
        for w in entries.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "not sorted: {entries:?}");
        }
    }
}
