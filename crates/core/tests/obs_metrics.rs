//! Regression: the `hc-obs` counters the [`ContributionLedger`] mirrors
//! into a trace must equal the ledger's own totals exactly, so
//! `hc-bench trace summary` can report throughput and ALP live without
//! re-running the experiment.

use hc_core::{ContributionLedger, PlayerId};
use hc_sim::SimDuration;

#[test]
fn ledger_totals_equal_trace_counters() {
    let mut expected_play_ticks = 0u64;
    let (ledger, trace) = hc_obs::record_scope(0, || {
        let mut ledger = ContributionLedger::new();
        for i in 0..10u64 {
            let time = SimDuration::from_mins(10 + i);
            expected_play_ticks += time.ticks();
            ledger.record_play(PlayerId::new(i % 4), time);
        }
        ledger.record_outputs(123);
        ledger.record_outputs(77);
        ledger
    });
    assert_eq!(
        trace.metrics.counter("metrics.outputs"),
        ledger.total_outputs()
    );
    assert_eq!(
        trace.metrics.counter("metrics.players"),
        ledger.player_count()
    );
    assert_eq!(
        trace.metrics.counter("metrics.play_us"),
        expected_play_ticks
    );
    // Human-hours derived from the counter match the ledger's own sum.
    let hours_from_counter = trace.metrics.counter("metrics.play_us") as f64 / 3_600_000_000.0;
    assert!((hours_from_counter - ledger.total_human_hours()).abs() < 1e-9);
}

#[test]
fn merging_ledgers_does_not_double_count() {
    let ((merged, standalone), trace) = hc_obs::record_scope(0, || {
        let mut a = ContributionLedger::new();
        a.record_play(PlayerId::new(1), SimDuration::from_mins(30));
        a.record_outputs(5);
        let mut b = ContributionLedger::new();
        b.record_play(PlayerId::new(1), SimDuration::from_mins(30));
        b.record_play(PlayerId::new(2), SimDuration::from_mins(60));
        b.record_outputs(7);
        let standalone = b.clone();
        a.merge(&b);
        (a, standalone)
    });
    // Every record_play/record_outputs call was counted exactly once;
    // merge() itself emitted nothing.
    assert_eq!(
        trace.metrics.counter("metrics.outputs"),
        merged.total_outputs()
    );
    assert_eq!(
        trace.metrics.counter("metrics.play_us"),
        SimDuration::from_mins(120).ticks()
    );
    // `metrics.players` counts first-sightings per ledger (player 1 was
    // new to both), which is why the counter is compared against the
    // per-ledger sum, not the merged ledger's distinct-player count.
    assert_eq!(trace.metrics.counter("metrics.players"), 3);
    assert_eq!(merged.player_count(), 2);
    assert_eq!(standalone.player_count(), 2);
}

#[test]
fn no_counters_without_a_recording_scope() {
    // Emitting outside a scope is a no-op; a later scope must start empty.
    let mut outside = ContributionLedger::new();
    outside.record_play(PlayerId::new(9), SimDuration::from_mins(5));
    outside.record_outputs(42);
    let (_, trace) = hc_obs::record_scope(0, || {});
    assert_eq!(trace.metrics.counter("metrics.outputs"), 0);
    assert_eq!(trace.metrics.counter("metrics.play_us"), 0);
    assert!(trace.records.is_empty());
}
