//! Micro-benchmark: reCAPTCHA challenge issue + answer processing — the
//! per-request cost of the digitization service.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_captcha::{HumanReader, OcrEngine, ReCaptcha, ReCaptchaConfig, ScannedCorpus};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_recaptcha(c: &mut Criterion) {
    c.bench_function("recaptcha/issue_and_answer", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let corpus = ScannedCorpus::generate(20_000, 0.5, 1.0, &mut rng);
        let mut service = ReCaptcha::new(
            corpus,
            OcrEngine::commercial(),
            // Threshold high enough that the pool never drains mid-bench.
            ReCaptchaConfig {
                promote_votes: 1.0e9,
                ..ReCaptchaConfig::default()
            },
            &mut rng,
        );
        let reader = HumanReader::typical();
        b.iter(|| {
            let ch = service.issue(&mut rng).expect("pending pool non-empty");
            let control = reader.read(&ch.control_text, ch.control_distortion, &mut rng);
            let unknown = reader.read(&ch.unknown_truth, ch.unknown_distortion, &mut rng);
            black_box(service.answer(&ch, &control, &unknown))
        });
    });

    c.bench_function("recaptcha/service_construction_5k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let corpus = ScannedCorpus::generate(5_000, 0.5, 1.0, &mut rng);
        b.iter(|| {
            black_box(ReCaptcha::new(
                corpus.clone(),
                OcrEngine::commercial(),
                ReCaptchaConfig::default(),
                &mut rng,
            ))
        });
    });
}

criterion_group!(benches, bench_recaptcha);
criterion_main!(benches);
