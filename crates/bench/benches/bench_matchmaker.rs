//! Micro-benchmark: matchmaker arrival handling (pairing decision cost)
//! at several standing queue depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_core::{Matchmaker, MatchmakerConfig, PlayerId};
use hc_sim::SimTime;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matchmaker(c: &mut Criterion) {
    let mut group = c.benchmark_group("matchmaker");
    for &waiting in &[2usize, 64, 1024] {
        group.bench_with_input(
            BenchmarkId::new("arrival", waiting),
            &waiting,
            |b, &waiting| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                let mut mm = Matchmaker::new(MatchmakerConfig {
                    avoid_rematch: false,
                    ..MatchmakerConfig::default()
                });
                for i in 0..waiting {
                    mm.on_arrival(SimTime::ZERO, PlayerId::new(i as u64), &mut rng);
                }
                let mut next = waiting as u64;
                b.iter(|| {
                    // One pairing + one refill keeps the pool size stable.
                    let d = mm.on_arrival(SimTime::from_secs(1), PlayerId::new(next), &mut rng);
                    next += 1;
                    mm.on_arrival(SimTime::from_secs(1), PlayerId::new(next), &mut rng);
                    next += 1;
                    black_box(d)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matchmaker);
criterion_main!(benches);
