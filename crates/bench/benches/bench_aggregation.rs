//! Micro-benchmark: aggregation strategies over a synthetic label matrix
//! (majority vs agreement threshold vs Dawid–Skene EM).

use criterion::{criterion_group, criterion_main, Criterion};
use hc_aggregate::prelude::*;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_aggregation(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let world = SyntheticCrowd::new(500, 4, 50, 0.75)
        .with_adversarial_share(0.1)
        .generate(5, &mut rng);

    c.bench_function("aggregate/majority_500x5", |b| {
        b.iter(|| black_box(MajorityVote.aggregate(&world.matrix)));
    });
    c.bench_function("aggregate/threshold_500x5", |b| {
        let agg = AgreementThreshold::new(3);
        b.iter(|| black_box(agg.aggregate(&world.matrix)));
    });
    c.bench_function("aggregate/dawid_skene_500x5", |b| {
        let ds = DawidSkene {
            max_iters: 20,
            ..DawidSkene::default()
        };
        b.iter(|| black_box(ds.aggregate(&world.matrix)));
    });
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
