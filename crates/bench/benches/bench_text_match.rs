//! Micro-benchmark: label normalization and edit-distance matching — the
//! per-guess cost of every output-agreement round and reCAPTCHA check.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_core::text::{fuzzy_agree, levenshtein, normalize_label};
use std::hint::black_box;

fn bench_text(c: &mut Criterion) {
    c.bench_function("normalize_label/short", |b| {
        b.iter(|| normalize_label(black_box("  Hot DOGS!! ")));
    });
    c.bench_function("normalize_label/sentence", |b| {
        b.iter(|| {
            normalize_label(black_box(
                "It is a Kind of Animal, found on FARMS (usually).",
            ))
        });
    });
    c.bench_function("levenshtein/6x7", |b| {
        b.iter(|| levenshtein(black_box("kitten"), black_box("sitting")));
    });
    c.bench_function("levenshtein/20x20", |b| {
        b.iter(|| {
            levenshtein(
                black_box("abcdefghijklmnopqrst"),
                black_box("abcdefghijklmnopqrsu"),
            )
        });
    });
    c.bench_function("fuzzy_agree/tolerant", |b| {
        b.iter(|| fuzzy_agree(black_box("Overlooked"), black_box("overlook"), 2));
    });
}

criterion_group!(benches, bench_text);
criterion_main!(benches);
