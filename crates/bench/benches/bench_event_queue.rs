//! Micro-benchmark: the DES kernel's event queue (push/pop throughput at
//! several queue depths) — the hot loop of every campaign simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_sim::{EventQueue, SimTime};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &depth in &[100usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("push_pop_cycle", depth),
            &depth,
            |b, &depth| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                let mut q: EventQueue<u64> = EventQueue::with_capacity(depth);
                for i in 0..depth {
                    q.push(SimTime::from_ticks(u64::from(rng.gen::<u32>())), i as u64);
                }
                b.iter(|| {
                    let (t, ev) = q.pop().expect("non-empty");
                    q.push(t + hc_sim::SimDuration::from_secs(1), black_box(ev));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
