//! Micro-benchmark: one full ESP session through the round state machine,
//! verification pipeline and platform bookkeeping — the unit of work the
//! campaign simulator repeats hundreds of thousands of times.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, PopulationBuilder};
use hc_games::{esp::play_esp_session, EspWorld, SessionParams, WorldConfig};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_session(c: &mut Criterion) {
    c.bench_function("esp/full_session", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let world = EspWorld::generate(&WorldConfig::small(), &mut rng);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .unwrap();
        world.register_tasks(&mut platform);
        let mut pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .build(&mut rng);
        platform.register_player();
        platform.register_player();
        let mut sid = 0u64;
        let mut t0 = 0u64;
        b.iter(|| {
            sid += 1;
            t0 += 1_000;
            black_box(play_esp_session(
                &mut platform,
                &world,
                &mut pop,
                SessionParams::pair(
                    PlayerId::new(0),
                    PlayerId::new(1),
                    SessionId::new(sid),
                    SimTime::from_secs(t0),
                ),
                &mut rng,
            ))
        });
    });
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
