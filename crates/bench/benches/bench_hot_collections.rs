//! Micro-benchmarks: the four collection hot paths that PR 5 moved from
//! `BTreeMap`/`BTreeSet` to `hc_collect`'s deterministic open-addressing
//! types. Every group runs the *same* operation sequence twice — once on
//! the old std B-tree structure ("btree") and once on the new structure
//! ("det") — so `det` vs `btree` per group is a direct speedup readout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hc_collect::{DetMap, DetSet, Interner, Sym};
use std::collections::{BTreeMap, BTreeSet};
use std::hint::black_box;

/// Deterministic xorshift id stream, so both variants replay identical
/// key sequences without pulling in an RNG crate.
fn id_stream(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push(x);
    }
    out
}

/// Matchmaker rematch storm: every arrival does one `get` on the
/// last-partner map and every pairing two inserts — keyed by player id
/// over a bounded population, exactly the `Matchmaker::on_arrival` shape.
fn bench_matchmaker_rematch(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_matchmaker_rematch");
    const POP: u64 = 512;
    let arrivals: Vec<(u64, u64)> = id_stream(0xA5A5, 4096)
        .iter()
        .map(|&x| (x % POP, (x >> 32) % POP))
        .collect();
    group.bench_with_input(BenchmarkId::new("btree", POP), &arrivals, |b, arrivals| {
        b.iter(|| {
            let mut last: BTreeMap<u64, u64> = BTreeMap::new();
            let mut hits = 0u64;
            for &(p, q) in arrivals {
                if last.get(&p) == Some(&q) {
                    hits += 1;
                }
                last.insert(p, q);
                last.insert(q, p);
            }
            black_box(hits)
        });
    });
    group.bench_with_input(BenchmarkId::new("det", POP), &arrivals, |b, arrivals| {
        b.iter(|| {
            let mut last: DetMap<u64, u64> = DetMap::with_capacity(POP as usize);
            let mut hits = 0u64;
            for &(p, q) in arrivals {
                if last.get(&p) == Some(&q) {
                    hits += 1;
                }
                last.insert(p, q);
                last.insert(q, p);
            }
            black_box(hits)
        });
    });
    group.finish();
}

/// ESP session: taboo-list membership plus cross-seat agreement checks
/// on a label vocabulary — one `contains` + one `insert` per guess.
fn bench_esp_tags(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_esp_tags");
    let vocab: Vec<String> = (0..256).map(|i| format!("label-{i:03}")).collect();
    let guesses: Vec<&str> = id_stream(0x1234, 4096)
        .iter()
        .map(|&x| vocab[(x % 256) as usize].as_str())
        .collect();
    group.bench_with_input(BenchmarkId::new("btree", vocab.len()), &guesses, |b, gs| {
        b.iter(|| {
            let mut taboo: BTreeSet<String> = BTreeSet::new();
            let mut agreed = 0u64;
            for g in gs {
                if taboo.contains(*g) {
                    agreed += 1;
                } else {
                    taboo.insert((*g).to_string());
                }
            }
            black_box(agreed)
        });
    });
    group.bench_with_input(BenchmarkId::new("det", vocab.len()), &guesses, |b, gs| {
        b.iter(|| {
            let mut taboo: DetSet<String> = DetSet::new();
            let mut agreed = 0u64;
            for g in gs {
                if taboo.contains(*g) {
                    agreed += 1;
                } else {
                    taboo.insert((*g).to_string());
                }
            }
            black_box(agreed)
        });
    });
    group.finish();
}

/// reCAPTCHA tally: per-word vote maps keyed by transcription strings —
/// entry-or-insert plus an f64 accumulate per vote.
fn bench_recaptcha_tally(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_recaptcha_tally");
    const WORDS: usize = 256;
    let votes: Vec<(usize, String)> = id_stream(0xBEEF, 4096)
        .iter()
        .map(|&x| {
            (
                (x % WORDS as u64) as usize,
                format!("w{:04}", (x >> 16) % 6),
            )
        })
        .collect();
    // The service builds its per-word tallies once at construction and
    // votes on them for the rest of its life; build outside the timed
    // loop and clear per iteration to measure the steady state.
    group.bench_with_input(BenchmarkId::new("btree", WORDS), &votes, |b, votes| {
        let mut tallies: Vec<BTreeMap<String, f64>> = vec![BTreeMap::new(); WORDS];
        b.iter(|| {
            for t in &mut tallies {
                t.clear();
            }
            let mut promoted = 0u64;
            for (w, vote) in votes {
                let mass = tallies[*w].entry(vote.clone()).or_insert(0.0);
                *mass += 1.0;
                if *mass >= 2.5 {
                    promoted += 1;
                }
            }
            black_box(promoted)
        });
    });
    group.bench_with_input(BenchmarkId::new("det", WORDS), &votes, |b, votes| {
        let mut tallies: Vec<DetMap<String, f64>> = vec![DetMap::with_capacity(4); WORDS];
        b.iter(|| {
            for t in &mut tallies {
                t.clear();
            }
            let mut promoted = 0u64;
            for (w, vote) in votes {
                let mass = tallies[*w].entry(vote.clone()).or_insert(0.0);
                *mass += 1.0;
                if *mass >= 2.5 {
                    promoted += 1;
                }
            }
            black_box(promoted)
        });
    });
    group.finish();
}

/// Metrics increment: the registry's counter path. The old shape clones
/// the `String` name into a B-tree entry per record; the new shape
/// interns the name to a `Sym` and bumps a symbol-keyed slot.
fn bench_metrics_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_metrics_increment");
    let names: Vec<String> = (0..24).map(|i| format!("metrics.counter_{i:02}")).collect();
    let stream: Vec<&str> = id_stream(0x77, 8192)
        .iter()
        .map(|&x| names[(x % 24) as usize].as_str())
        .collect();
    group.bench_with_input(BenchmarkId::new("btree", names.len()), &stream, |b, st| {
        b.iter(|| {
            let mut counters: BTreeMap<String, u64> = BTreeMap::new();
            for name in st {
                let slot = counters.entry((*name).to_string()).or_insert(0);
                *slot = slot.saturating_add(1);
            }
            black_box(counters.len())
        });
    });
    group.bench_with_input(BenchmarkId::new("det", names.len()), &stream, |b, st| {
        b.iter(|| {
            let mut interner = Interner::new();
            let mut counters: DetMap<Sym, u64> = DetMap::new();
            for name in st {
                let sym = interner.intern(name);
                let slot = counters.entry(sym).or_insert(0);
                *slot = slot.saturating_add(1);
            }
            black_box(counters.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matchmaker_rematch,
    bench_esp_tags,
    bench_recaptcha_tally,
    bench_metrics_increment
);
criterion_main!(benches);
