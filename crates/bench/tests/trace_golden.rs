//! Golden-file tests for the trace-analysis outputs surfaced by
//! `hc-bench trace`: critical path, flame (folded stacks + top table),
//! timeseries (text + JSON), the derived-metrics summary, and the
//! trace-diff verdict. The rendered bytes of a fixed fixture trace are
//! frozen under `tests/golden/`, so any accidental format change shows
//! up as a reviewable diff. Regenerate after an *intentional* change
//! with
//!
//! ```text
//! cargo test -p hc-bench --test trace_golden -- --ignored regenerate
//! ```

use hc_obs::analyze::{diff, DeriveAcc, DerivedMetrics, SpanTree, TimeSeriesAcc};
use std::path::PathBuf;

/// A fixture exercising span-tree nesting, auxiliary tracks, the
/// `layout.` exclusion, every metric kind, and the machine section.
fn fixture_trace() -> hc_obs::Trace {
    let ((), trace) = hc_obs::record_scope(0, || {
        hc_obs::name_track(0, "main");
        hc_obs::name_track(7, "shard-0");
        let run = hc_obs::enter("sim", "run", 0);
        for w in 0u64..3 {
            let start = w * 2_000;
            let win = hc_obs::enter("sim.shard", "window", start);
            hc_obs::span(
                "games",
                "session",
                start + 100,
                start + 900,
                &[("window", w.into())],
            );
            hc_obs::span(
                "serve",
                "submit_answer",
                start + 1_000,
                start + 1_000,
                &[("seq", w.into())],
            );
            hc_obs::span_on_track(
                7,
                "layout.shard",
                "window",
                start,
                start + 1_800,
                &[("work", (3 + w).into())],
            );
            hc_obs::counter("shard.exchange.sent", start + 1_800, 2 + w);
            hc_obs::gauge("layout.shard.skew", start + 1_800, 1.0 + w as f64 / 10.0);
            #[allow(clippy::cast_precision_loss)]
            hc_obs::observe(
                "shard.exchange.wait_us",
                start + 1_800,
                500.0 * (w + 1) as f64,
            );
            win.exit(start + 2_000, &[("window", w.into())]);
        }
        run.exit(6_000, &[("windows", 3u64.into())]);
        hc_obs::machine_stat("par.workers", 4.0);
    });
    trace
}

fn fixture_tree() -> SpanTree {
    SpanTree::from_records(&fixture_trace().records)
}

fn fixture_derived() -> DerivedMetrics {
    let mut acc = DeriveAcc::new();
    for r in &fixture_trace().records {
        acc.add(r);
    }
    acc.finish()
}

/// The fixture with one slower window — the "current" side of the diff.
fn perturbed_derived() -> DerivedMetrics {
    let mut acc = DeriveAcc::new();
    for r in &fixture_trace().records {
        acc.add(r);
    }
    let ((), extra) = hc_obs::record_scope(0, || {
        hc_obs::span("games", "session", 6_000, 7_400, &[]);
        hc_obs::counter("shard.exchange.sent", 7_400, 5);
    });
    for r in &extra.records {
        acc.add(r);
    }
    acc.finish()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

fn timeseries_acc() -> TimeSeriesAcc {
    let mut acc = TimeSeriesAcc::new(2_000);
    for r in &fixture_trace().records {
        acc.add(r);
    }
    acc
}

#[test]
fn critical_path_matches_golden() {
    assert_eq!(
        hc_obs::analyze::render_critical_path(&fixture_tree()),
        include_str!("golden/critical_path.txt"),
        "critical-path format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn folded_stacks_match_golden() {
    assert_eq!(
        hc_obs::analyze::render_folded(&fixture_tree()),
        include_str!("golden/flame.folded"),
        "folded-stack format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn flame_top_matches_golden() {
    assert_eq!(
        hc_obs::analyze::render_flame_top(&fixture_tree(), 5),
        include_str!("golden/flame_top.txt"),
        "flame top-N format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn timeseries_text_matches_golden() {
    assert_eq!(
        timeseries_acc().render_text(),
        include_str!("golden/timeseries.txt"),
        "timeseries text format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn timeseries_json_matches_golden() {
    assert_eq!(
        timeseries_acc().render_json(),
        include_str!("golden/timeseries.json"),
        "timeseries JSON format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn derived_summary_matches_golden_and_round_trips() {
    let rendered = fixture_derived().to_json();
    assert_eq!(
        rendered,
        include_str!("golden/derived.json"),
        "derived-summary format drifted; regenerate the golden file if intentional"
    );
    let parsed = DerivedMetrics::from_json(&rendered).expect("derived summary parses");
    assert_eq!(parsed.to_json(), rendered);
}

#[test]
fn derived_summary_excludes_layout_records() {
    let rendered = fixture_derived().to_json();
    assert!(
        !rendered.contains("layout."),
        "`layout.` records leaked into the derived summary: {rendered}"
    );
}

#[test]
fn diff_report_matches_golden() {
    let report = diff(&fixture_derived(), &perturbed_derived(), 0.1);
    assert!(
        !report.passed(),
        "perturbation should trip the 10% threshold"
    );
    assert_eq!(
        report.render_text(),
        include_str!("golden/diff.txt"),
        "diff text format drifted; regenerate the golden file if intentional"
    );
    assert_eq!(
        report.render_json(),
        include_str!("golden/diff.json"),
        "diff JSON format drifted; regenerate the golden file if intentional"
    );
}

#[test]
fn diff_against_itself_passes() {
    let report = diff(&fixture_derived(), &fixture_derived(), 0.0);
    assert!(report.passed(), "a summary must diff clean against itself");
}

/// Not a test: rewrites the golden files from the current output. Run
/// explicitly (`-- --ignored regenerate`) after an intentional format
/// change, then review the diff.
#[test]
#[ignore = "regenerates the golden files; run explicitly after intentional format changes"]
fn regenerate() {
    std::fs::create_dir_all(golden_path("")).expect("golden dir");
    let write = |name: &str, content: String| {
        std::fs::write(golden_path(name), content).expect("write golden");
    };
    write(
        "critical_path.txt",
        hc_obs::analyze::render_critical_path(&fixture_tree()),
    );
    write(
        "flame.folded",
        hc_obs::analyze::render_folded(&fixture_tree()),
    );
    write(
        "flame_top.txt",
        hc_obs::analyze::render_flame_top(&fixture_tree(), 5),
    );
    write("timeseries.txt", timeseries_acc().render_text());
    write("timeseries.json", timeseries_acc().render_json());
    write("derived.json", fixture_derived().to_json());
    let report = diff(&fixture_derived(), &perturbed_derived(), 0.1);
    write("diff.txt", report.render_text());
    write("diff.json", report.render_json());
}
