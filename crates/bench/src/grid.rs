//! `run_grid` — the shared parallel experiment harness.
//!
//! An experiment is a **grid**: a list of named cells (parameter
//! configurations) times `reps` seed-replications per cell. The harness
//! flattens the grid into independent tasks, fans them across the
//! deterministic replication pool (`hc_sim::par`), and regroups results
//! cell-major / rep-minor — so the output is **byte-identical for every
//! `--threads` value**. Each task's RNG comes from a per-index SplitMix
//! derivation (`RngFactory::indexed_child(cell_id, rep)`), so no task
//! can perturb another's stream.
//!
//! The harness also produces the **bench JSON**: a machine-readable
//! record with two top-level sections —
//!
//! * `results` (+ `experiment`, `seed`, `reps`): deterministic, byte
//!   identical across thread counts and machines — this is what CI's
//!   determinism diff compares;
//! * `timing` + `threads`: wall-clock per task and total, plus a
//!   single-threaded `calibration_secs` spin so perf comparisons can be
//!   normalized across machines of different speeds.

use crate::cli::RunOpts;
use hc_sim::{run_replications, ReplicationError, RngFactory, SimRng};
use serde::Serialize;
use serde_json::Value;
use std::time::Instant;

/// One grid cell: a human-readable id and the experiment's own config.
#[derive(Debug, Clone)]
pub struct Cell<C> {
    /// Stable identifier used for RNG derivation and in the bench JSON
    /// (e.g. `players=64` or `share=0.25/defense=+gold`).
    pub id: String,
    /// Experiment-specific cell configuration.
    pub config: C,
}

impl<C> Cell<C> {
    /// Builds a cell.
    pub fn new(id: impl Into<String>, config: C) -> Self {
        Cell {
            id: id.into(),
            config,
        }
    }
}

/// Per-task context handed to the grid job.
#[derive(Debug)]
pub struct TaskCtx {
    /// Replication index within the cell (`0..reps`).
    pub rep: usize,
    /// A derived scalar seed, for APIs that build their own `RngFactory`.
    pub seed: u64,
    /// The task's own SplitMix-derived RNG stream.
    pub rng: SimRng,
}

/// One cell's results, rep-minor.
#[derive(Debug, Clone, Serialize)]
pub struct CellResults<T> {
    /// Cell id.
    pub id: String,
    /// One entry per replication, in rep order.
    pub reps: Vec<T>,
}

/// Wall-clock record for one task.
#[derive(Debug, Clone, Serialize)]
pub struct TaskTiming {
    /// Cell id.
    pub cell: String,
    /// Replication index.
    pub rep: usize,
    /// Wall seconds spent inside the job closure.
    pub wall_secs: f64,
}

/// Machine-dependent timing section of the bench JSON.
#[derive(Debug, Clone, Serialize)]
pub struct GridTiming {
    /// Seconds for a fixed single-threaded spin, measured just before
    /// the grid ran — a unit of "this machine's speed" that perf
    /// comparisons divide by.
    pub calibration_secs: f64,
    /// Wall seconds for the whole grid (pool setup to last merge).
    pub total_wall_secs: f64,
    /// Per-task wall times, task-index order.
    pub tasks: Vec<TaskTiming>,
}

/// Everything a grid run produced.
#[derive(Debug, Clone)]
pub struct GridOutcome<T> {
    /// Experiment name (the binary's stable id).
    pub experiment: String,
    /// Master seed.
    pub seed: u64,
    /// Thread count the run used (timing context only).
    pub threads: usize,
    /// Replications per cell.
    pub reps: usize,
    /// Per-cell results, cell-major / rep-minor.
    pub cells: Vec<CellResults<T>>,
    /// Wall-clock measurements.
    pub timing: GridTiming,
    /// The `hc-obs` trace recorded during the run (`Some` iff
    /// `opts.trace` was set). Everything except its machine section is
    /// byte-identical across `--threads` values.
    pub trace: Option<hc_obs::Trace>,
}

/// Runs `cells × reps` independent tasks on the replication pool and
/// regroups the results deterministically.
///
/// # Errors
///
/// Propagates [`ReplicationError`] when a task panics (lowest task
/// index) or the pool fails.
pub fn run_grid<C, T, F>(
    opts: &RunOpts,
    experiment: &str,
    cells: Vec<Cell<C>>,
    reps: usize,
    job: F,
) -> Result<GridOutcome<T>, ReplicationError>
where
    C: Sync,
    T: Send,
    F: Fn(&C, TaskCtx) -> T + Sync,
{
    let reps = reps.max(1);
    let total = cells.len() * reps;
    let factory = RngFactory::new(opts.seed).child(experiment);
    let calibration_secs = calibrate();
    let started = Instant::now();
    let run = || {
        run_replications(total, opts.threads, |index| {
            let cell = &cells[index / reps];
            let rep = index % reps;
            let task_factory = factory.indexed_child(&cell.id, rep as u64);
            let ctx = TaskCtx {
                rep,
                seed: task_factory.master_seed(),
                rng: task_factory.stream("task"),
            };
            let clock = Instant::now();
            let data = job(&cell.config, ctx);
            (data, clock.elapsed().as_secs_f64())
        })
    };
    // `--trace` installs the recording scope around the whole grid; the
    // replication pool nests one scope per task and merges them back in
    // index order, so the records below are thread-count-invariant.
    let (raw, trace) = if opts.trace.is_some() {
        let (raw, trace) = hc_obs::record_scope(0, || {
            hc_obs::name_track(0, "main");
            hc_obs::event(
                "bench",
                "grid",
                0,
                &[
                    ("experiment", experiment.into()),
                    ("cells", cells.len().into()),
                    ("reps", reps.into()),
                ],
            );
            run()
        });
        (raw?, Some(trace))
    } else {
        (run()?, None)
    };
    let total_wall_secs = started.elapsed().as_secs_f64();

    let mut tasks = Vec::with_capacity(total);
    let mut grouped: Vec<CellResults<T>> = cells
        .iter()
        .map(|c| CellResults {
            id: c.id.clone(),
            reps: Vec::with_capacity(reps),
        })
        .collect();
    for (index, (data, wall_secs)) in raw.into_iter().enumerate() {
        let cell_index = index / reps;
        tasks.push(TaskTiming {
            cell: cells[cell_index].id.clone(),
            rep: index % reps,
            wall_secs,
        });
        if let Some(slot) = grouped.get_mut(cell_index) {
            slot.reps.push(data);
        }
    }

    Ok(GridOutcome {
        experiment: experiment.to_string(),
        seed: opts.seed,
        threads: opts.threads,
        reps,
        cells: grouped,
        timing: GridTiming {
            calibration_secs,
            total_wall_secs,
            tasks,
        },
        trace,
    })
}

impl<T: Serialize> GridOutcome<T> {
    /// Renders the full bench JSON (deterministic sections first).
    ///
    /// # Errors
    ///
    /// Returns a message when a result row fails to serialize.
    pub fn to_bench_json(&self) -> Result<Value, String> {
        let mut results = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let reps = serde_json::to_value(&cell.reps)
                .map_err(|e| format!("serialize cell `{}`: {e}", cell.id))?;
            results.push(Value::Object(vec![
                ("id".to_string(), Value::String(cell.id.clone())),
                ("reps".to_string(), reps),
            ]));
        }
        let timing =
            serde_json::to_value(&self.timing).map_err(|e| format!("serialize timing: {e}"))?;
        Ok(Value::Object(vec![
            (
                "experiment".to_string(),
                Value::String(self.experiment.clone()),
            ),
            (
                "seed".to_string(),
                serde_json::to_value(&self.seed).map_err(|e| e.to_string())?,
            ),
            (
                "reps".to_string(),
                serde_json::to_value(&self.reps).map_err(|e| e.to_string())?,
            ),
            ("results".to_string(), Value::Array(results)),
            (
                "threads".to_string(),
                serde_json::to_value(&self.threads).map_err(|e| e.to_string())?,
            ),
            ("timing".to_string(), timing),
        ]))
    }

    /// Writes the bench JSON to `opts.bench_json`, if requested, and
    /// prints where it went. Exits with status 2 on IO/serialization
    /// failure (tool-crate semantics: a bench run that cannot record
    /// its results is dead).
    pub fn write_bench_json(&self, opts: &RunOpts) {
        let Some(path) = &opts.bench_json else {
            return;
        };
        let rendered = match self.to_bench_json() {
            Ok(v) => v.to_string(),
            Err(e) => {
                eprintln!("bench-json: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = std::fs::write(path, rendered + "\n") {
            eprintln!("bench-json: write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("bench JSON written to {}", path.display());
    }

    /// Writes the recorded JSONL trace to `opts.trace`, if both the flag
    /// and a recorded trace exist. Exits with status 2 on IO failure
    /// (same tool-crate semantics as [`GridOutcome::write_bench_json`]).
    pub fn write_trace(&self, opts: &RunOpts) {
        let (Some(path), Some(trace)) = (&opts.trace, &self.trace) else {
            return;
        };
        let rendered = hc_obs::sink::jsonl::render(trace);
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("trace: write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("trace written to {}", path.display());
    }
}

/// Measures a fixed single-threaded spin (~10⁷ LCG steps) as this
/// machine's speed unit. Deliberately small next to any real grid.
///
/// Takes the minimum over several spins: scheduler preemption and
/// frequency scaling only ever make a spin *slower*, so the minimum is
/// the robust estimate of the machine's true speed — a single sample
/// can be off by 3× under load, which would poison the normalized
/// perf-regression comparison.
#[must_use]
pub fn calibrate() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let clock = Instant::now();
        let mut acc = 0u64;
        for i in 0..20_000_000u64 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        best = best.min(clock.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn opts(threads: usize) -> RunOpts {
        RunOpts {
            seed: 7,
            threads,
            shards: None,
            reps: None,
            smoke: false,
            players: None,
            bench_json: None,
            trace: None,
        }
    }

    fn demo_cells() -> Vec<Cell<u64>> {
        vec![
            Cell::new("a=1", 1u64),
            Cell::new("a=2", 2u64),
            Cell::new("a=3", 3u64),
        ]
    }

    fn draw_job(config: &u64, mut ctx: TaskCtx) -> Vec<u64> {
        (0..*config + ctx.rep as u64 + 1)
            .map(|_| ctx.rng.gen())
            .collect()
    }

    #[test]
    fn grid_groups_cell_major_rep_minor() {
        let out = run_grid(&opts(1), "demo", demo_cells(), 2, draw_job).expect("grid runs");
        assert_eq!(out.cells.len(), 3);
        assert!(out.cells.iter().all(|c| c.reps.len() == 2));
        assert_eq!(out.cells[0].id, "a=1");
        assert_eq!(out.timing.tasks.len(), 6);
        assert_eq!(out.timing.tasks[0].cell, "a=1");
        assert_eq!(out.timing.tasks[1].rep, 1);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let serial = run_grid(&opts(1), "demo", demo_cells(), 3, draw_job).expect("serial");
        for threads in [2, 4, 7] {
            let par = run_grid(&opts(threads), "demo", demo_cells(), 3, draw_job).expect("par");
            let a = serial.to_bench_json().expect("json");
            let b = par.to_bench_json().expect("json");
            // The deterministic sections must match bit for bit.
            assert_eq!(a.get("results"), b.get("results"), "threads={threads}");
            assert_eq!(a.get("seed"), b.get("seed"));
            assert_eq!(a.get("reps"), b.get("reps"));
        }
    }

    #[test]
    fn distinct_cells_and_reps_get_distinct_streams() {
        let out = run_grid(&opts(2), "demo", demo_cells(), 2, |_c, mut ctx| {
            ctx.rng.gen::<u64>()
        })
        .expect("grid runs");
        let mut all: Vec<u64> = out.cells.iter().flat_map(|c| c.reps.clone()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "every (cell, rep) stream must differ");
    }

    #[test]
    fn bench_json_has_the_contract_sections() {
        let out = run_grid(&opts(1), "demo", demo_cells(), 1, draw_job).expect("grid runs");
        let json = out.to_bench_json().expect("render");
        for key in ["experiment", "seed", "reps", "results", "threads", "timing"] {
            assert!(json.get(key).is_some(), "missing `{key}`");
        }
        let timing = json.get("timing").expect("timing");
        assert!(timing
            .get("calibration_secs")
            .and_then(Value::as_f64)
            .is_some());
        assert!(timing
            .get("total_wall_secs")
            .and_then(Value::as_f64)
            .is_some());
    }

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate() > 0.0);
    }

    #[test]
    fn tracing_never_changes_results_and_is_thread_invariant() {
        let traced = |threads: usize| {
            let mut o = opts(threads);
            o.trace = Some(std::path::PathBuf::from("unused.jsonl"));
            o
        };
        let plain = run_grid(&opts(1), "demo", demo_cells(), 2, draw_job).expect("plain");
        let t1 = run_grid(&traced(1), "demo", demo_cells(), 2, draw_job).expect("traced t1");
        let t4 = run_grid(&traced(4), "demo", demo_cells(), 2, draw_job).expect("traced t4");
        assert!(plain.trace.is_none());
        // Recording must not perturb the deterministic results…
        assert_eq!(
            plain.to_bench_json().expect("json").get("results"),
            t1.to_bench_json().expect("json").get("results"),
        );
        // …and the deterministic part of the trace must not depend on
        // the thread count (only the machine line may differ).
        let r1 = hc_obs::sink::jsonl::render_deterministic(t1.trace.as_ref().expect("trace"));
        let r4 = hc_obs::sink::jsonl::render_deterministic(t4.trace.as_ref().expect("trace"));
        assert_eq!(r1, r4);
        assert!(!r1.is_empty());
    }
}
