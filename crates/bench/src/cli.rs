//! Shared CLI options for experiment binaries.
//!
//! Every grid-based experiment accepts the same flags:
//!
//! ```text
//! exp_* [SEED] [--seed N] [--threads N] [--shards K] [--reps N] [--smoke] [--players N] [--bench-json PATH] [--trace PATH]
//! ```
//!
//! * `SEED` / `--seed N` — master seed (default 42; the bare positional
//!   form is the pre-grid invocation style and still works);
//! * `--threads N` — worker threads for the replication pool (default:
//!   all available cores). **Never changes output bytes**, only wall
//!   time — see `hc_sim::par`'s determinism contract;
//! * `--reps N` — seed-replications per grid cell (each experiment has
//!   its own default);
//! * `--shards K` — shard count for experiments built on the sharded
//!   single-run engine (`hc_sim::shard`; currently `exp_scale`).
//!   **Never changes output bytes** either — the shard exchange merges
//!   in a layout-independent order;
//! * `--smoke` — reduced grid for CI smoke runs;
//! * `--players N` — population override for experiments with a
//!   population axis (currently `exp_scale`): run the single cell at
//!   `N` players on a reduced sim horizon — the CI-friendly way to
//!   smoke the full million-player workload in release mode;
//! * `--bench-json PATH` — write the machine-readable bench JSON
//!   (deterministic `results` + machine-dependent `timing`) to `PATH`;
//! * `--trace PATH` — record the run under an `hc-obs` subscriber and
//!   write the JSONL trace to `PATH`. Recording **never changes result
//!   bytes** (CI asserts this); the trace's machine-dependent line is
//!   the only part that varies across `--threads`.

use std::path::PathBuf;
use std::process::exit;

/// Parsed experiment options; see the module docs for flag semantics.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Master seed for the experiment's `RngFactory`.
    pub seed: u64,
    /// Worker threads for the replication pool.
    pub threads: usize,
    /// Shard count for sharded-engine experiments; `None` uses the
    /// experiment default.
    pub shards: Option<usize>,
    /// Seed-replications per grid cell; `None` uses the experiment default.
    pub reps: Option<usize>,
    /// Run the reduced CI smoke grid instead of the full grid.
    pub smoke: bool,
    /// Population override for population-axis experiments; `None`
    /// runs the experiment's own grid.
    pub players: Option<usize>,
    /// Where to write the bench JSON, if anywhere.
    pub bench_json: Option<PathBuf>,
    /// Where to write the `hc-obs` JSONL trace; `Some` also turns the
    /// recording subscriber on for the grid run.
    pub trace: Option<PathBuf>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            seed: 42,
            threads: default_threads(),
            shards: None,
            reps: None,
            smoke: false,
            players: None,
            bench_json: None,
            trace: None,
        }
    }
}

/// All available cores (tool crates may ask the OS; the answer affects
/// wall time only, never output bytes).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

const USAGE: &str =
    "usage: exp_* [SEED] [--seed N] [--threads N] [--shards K] [--reps N] [--smoke] [--players N] [--bench-json PATH] [--trace PATH]";

impl RunOpts {
    /// Parses options from `std::env::args`, exiting with status 2 and a
    /// usage message on malformed input.
    #[must_use]
    pub fn from_args() -> Self {
        let mut opts = RunOpts::default();
        let mut args = std::env::args().skip(1);
        let mut positional_seed_taken = false;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seed" => opts.seed = parse_flag(&arg, args.next()),
                "--threads" => opts.threads = parse_flag::<usize>(&arg, args.next()).max(1),
                "--shards" => opts.shards = Some(parse_flag::<usize>(&arg, args.next()).max(1)),
                "--reps" => opts.reps = Some(parse_flag::<usize>(&arg, args.next()).max(1)),
                "--smoke" => opts.smoke = true,
                "--players" => opts.players = Some(parse_flag::<usize>(&arg, args.next()).max(1)),
                "--bench-json" => match args.next() {
                    Some(p) => opts.bench_json = Some(PathBuf::from(p)),
                    None => die(&format!("--bench-json requires a path\n{USAGE}")),
                },
                "--trace" => match args.next() {
                    Some(p) => opts.trace = Some(PathBuf::from(p)),
                    None => die(&format!("--trace requires a path\n{USAGE}")),
                },
                other if !positional_seed_taken && !other.starts_with('-') => match other.parse() {
                    Ok(s) => {
                        opts.seed = s;
                        positional_seed_taken = true;
                    }
                    Err(_) => die(&format!("bad positional seed `{other}`\n{USAGE}")),
                },
                other => die(&format!("unknown argument `{other}`\n{USAGE}")),
            }
        }
        opts
    }

    /// Replications per cell: the explicit `--reps`, else the
    /// experiment's smoke or full default.
    #[must_use]
    pub fn reps_or(&self, full_default: usize, smoke_default: usize) -> usize {
        self.reps.unwrap_or(if self.smoke {
            smoke_default
        } else {
            full_default
        })
    }
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        die(&format!("{flag} requires a value\n{USAGE}"));
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => die(&format!("bad value `{raw}` for {flag}\n{USAGE}")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("{message}");
    exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = RunOpts::default();
        assert_eq!(o.seed, 42);
        assert!(o.threads >= 1);
        assert!(o.shards.is_none());
        assert!(!o.smoke);
        assert!(o.players.is_none());
        assert!(o.reps.is_none());
        assert!(o.bench_json.is_none());
        assert!(o.trace.is_none());
    }

    #[test]
    fn reps_or_prefers_explicit_then_mode_default() {
        let mut o = RunOpts::default();
        assert_eq!(o.reps_or(3, 2), 3);
        o.smoke = true;
        assert_eq!(o.reps_or(3, 2), 2);
        o.reps = Some(7);
        assert_eq!(o.reps_or(3, 2), 7);
    }
}
