//! `hc-load` — deterministic request-traffic generation against the
//! `hc-serve` core.
//!
//! The harness replays `hc-crowd` behavior as request traffic: `clients`
//! simulated workers drive one [`hc_serve::Service`] through `steps`
//! waves. Each wave generates at most one request per client on the
//! deterministic replication pool (`hc_sim::par::run_replications`) —
//! every client's decision is a pure function of its state snapshot and
//! a per-`(client, step)` indexed RNG stream — and the generated
//! requests are merged in client-index order before being applied to
//! the service serially. The response log is therefore **byte-identical
//! at any `--threads` value**; only the wall-clock numbers move.
//!
//! The run records:
//!
//! * a JSONL response log (`--response-log`), one
//!   `{"request":…,"response":…}` object per line — the artifact CI
//!   diffs across thread counts;
//! * a bench JSON (`--bench-json`) with the standard section contract:
//!   deterministic `results` (traffic counts + an FNV-1a digest of the
//!   response log), machine-dependent `timing` (per-request p50/p99
//!   latency plus a per-wave saturation curve) and `machine` sections.
//!
//! Latency numbers are per-request minima over three identical replays
//! of the scenario (the run is deterministic, so the replays are free),
//! which keeps the µs-scale p99 stable enough to gate in CI.

use hc_core::jobs::JobGoal;
use hc_core::session::SessionConfig;
use hc_core::{Answer, Label, PlatformConfig, PlayerId, SessionId, Stimulus, TabooList, TaskId};
use hc_crowd::{Behavior, LabelDistribution, Vocabulary};
use hc_serve::{Request, Response, RoundOutcome, ServeError, Service, ServiceConfig, SessionPhase};
use hc_sim::{run_replications, RngFactory, SimDuration, SimTime};
use serde_json::Value;
use std::path::PathBuf;
use std::time::Instant;

/// Options for one load run.
#[derive(Debug, Clone)]
pub struct LoadOpts {
    /// Master seed for the service and every client stream.
    pub seed: u64,
    /// Worker threads for the request-generation pool.
    pub threads: usize,
    /// Simulated clients driving the service.
    pub clients: usize,
    /// Traffic waves (at most one request per client per wave).
    pub steps: usize,
    /// Rounds a client plays before closing its session.
    pub rounds_per_session: u32,
    /// Where to write the bench JSON, if anywhere.
    pub bench_json: Option<PathBuf>,
    /// Where to write the JSONL response log, if anywhere.
    pub response_log: Option<PathBuf>,
    /// Where to write an `hc-obs` JSONL trace of the request/response
    /// lifecycle, if anywhere. Only the first measurement rep records
    /// (the replays are byte-identical, so one trace describes all
    /// three), and recording cannot perturb the run — the rep-divergence
    /// check proves it on every traced run.
    pub trace: Option<PathBuf>,
}

impl Default for LoadOpts {
    fn default() -> Self {
        LoadOpts {
            seed: 42,
            threads: 1,
            clients: 32,
            steps: 200,
            rounds_per_session: 4,
            bench_json: None,
            response_log: None,
            trace: None,
        }
    }
}

impl LoadOpts {
    /// The fixed scenario CI smokes at several thread counts: small
    /// enough to finish in well under a second, large enough (~4k
    /// requests) that the wall-clock gates are not dominated by noise.
    #[must_use]
    pub fn smoke(self) -> Self {
        LoadOpts {
            clients: 16,
            steps: 240,
            rounds_per_session: 3,
            ..self
        }
    }
}

/// One simulated client's view of its own lifecycle.
#[derive(Debug, Clone)]
enum ClientState {
    Unregistered,
    Idle(PlayerId),
    Waiting(PlayerId),
    Seated {
        player: PlayerId,
        session: SessionId,
        /// `(round, task, taboo)` of the current assignment, if polled.
        assignment: Option<(u32, TaskId, Vec<Label>)>,
        /// Whether this seat already answered the stored round.
        answered: bool,
        /// Rounds this client has seen resolve in this session.
        rounds: u32,
        /// Set on `SessionOver`/`NoTaskAvailable`: close next wave.
        must_close: bool,
    },
}

/// Deterministic traffic summary — the bench `results` payload.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct LoadSummary {
    /// Requests issued (setup + waves).
    pub requests: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Rounds that resolved (both seats answered).
    pub rounds_resolved: u64,
    /// Resolved rounds where the seats agreed.
    pub matched: u64,
    /// Agreements that promoted a verified label.
    pub promoted: u64,
    /// Error responses (all kinds).
    pub errors: u64,
    /// Verified labels on the platform after the run.
    pub verified_labels: u64,
    /// FNV-1a 64 digest of the response-log bytes.
    pub response_log_fnv64: String,
    /// Response-log line count.
    pub response_log_lines: u64,
}

/// Machine-dependent measurements of one run.
#[derive(Debug, Clone)]
pub struct LoadTiming {
    /// Machine-speed unit (min-of-5 spin), for portable comparisons.
    pub calibration_secs: f64,
    /// Whole-run wall time.
    pub total_wall_secs: f64,
    /// Per-request service latencies, seconds, request order.
    pub latencies: Vec<f64>,
    /// Per-wave `(requests, wall_secs)` — the saturation curve.
    pub waves: Vec<(u64, f64)>,
}

/// Everything one load run produced.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// The deterministic summary.
    pub summary: LoadSummary,
    /// The rendered JSONL response log.
    pub response_log: String,
    /// Wall-clock measurements.
    pub timing: LoadTiming,
}

/// The service config the harness drives: promote on first agreement,
/// no gold injection, no rematch avoidance, and session limits wide
/// enough that clients decide when to close.
fn service_config(seed: u64) -> ServiceConfig {
    let mut platform = PlatformConfig {
        agreement_threshold: 1,
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    };
    platform.matchmaker.avoid_rematch = false;
    platform.session = SessionConfig {
        max_rounds: 10_000,
        round_time_limit: SimDuration::from_secs(1_000_000),
        session_time_limit: SimDuration::from_secs(1_000_000),
        ..SessionConfig::default()
    };
    ServiceConfig { platform, seed }
}

/// Ground-truth label distribution for a task: three vocabulary words
/// picked by task id, weighted 0.6/0.3/0.1 — enough overlap that two
/// honest clients agree roughly half the time.
fn truth_for(task: TaskId, vocab: &Vocabulary) -> LabelDistribution {
    let base = task.raw() as usize;
    let pick = |k: usize| {
        vocab
            .label((base * 3 + k * 7) % vocab.len())
            .cloned()
            .unwrap_or_else(|| Label::new("fallback"))
    };
    LabelDistribution::new(vec![(pick(0), 0.6), (pick(1), 0.3), (pick(2), 0.1)]).unwrap_or_else(
        |_| {
            LabelDistribution::uniform(vec![Label::new("fallback")])
                .expect("one-label uniform is valid")
        },
    )
}

/// The behavior mix: every fourth client is noisy, the rest honest —
/// the `hc-crowd` archetypes replayed as traffic.
fn behavior_for(client: usize) -> Behavior {
    if client.is_multiple_of(4) {
        Behavior::Noisy { error_rate: 0.2 }
    } else {
        Behavior::Honest
    }
}

/// Decides one client's request for this wave. Pure function of the
/// state snapshot and the `(client, step)` RNG stream — safe to run on
/// the pool in any thread order.
fn generate(
    client: usize,
    step: usize,
    state: &ClientState,
    at: SimTime,
    factory: &RngFactory,
    vocab: &Vocabulary,
) -> Option<Request> {
    match state {
        ClientState::Unregistered => Some(Request::RegisterWorker),
        ClientState::Idle(player) => Some(Request::OpenSession {
            player: *player,
            at,
        }),
        ClientState::Waiting(player) => Some(Request::PollSession { player: *player }),
        ClientState::Seated {
            player,
            session,
            assignment,
            answered,
            must_close,
            ..
        } => {
            if *must_close {
                return Some(Request::CloseSession {
                    session: *session,
                    at,
                });
            }
            match assignment {
                Some((_, task, taboo)) if !answered => {
                    let mut rng = factory
                        .indexed_child("client", client as u64)
                        .indexed_stream("step", step as u64);
                    let truth = truth_for(*task, vocab);
                    let taboo = TabooList::from_labels(taboo.iter().cloned());
                    let answer = behavior_for(client).next_answer(&truth, vocab, &taboo, &mut rng);
                    // The wire rejects non-text answers; fold exotic
                    // behavior outputs into a pass.
                    let answer = match answer {
                        Answer::Text(l) if !l.is_empty() => Answer::Text(l),
                        _ => Answer::Pass,
                    };
                    Some(Request::SubmitAnswer {
                        session: *session,
                        player: *player,
                        answer,
                        at,
                    })
                }
                _ => Some(Request::RequestTask {
                    session: *session,
                    player: *player,
                    at,
                }),
            }
        }
    }
}

/// Folds one response into the issuing client's state and the
/// deterministic counters.
fn observe(
    state: &mut ClientState,
    response: &Response,
    rounds_per_session: u32,
    summary: &mut LoadSummary,
) {
    if response.is_error() {
        summary.errors += 1;
    }
    match response {
        Response::WorkerRegistered { player } => {
            *state = ClientState::Idle(*player);
        }
        Response::SessionQueued { player, .. } => {
            *state = ClientState::Waiting(*player);
        }
        Response::SessionOpened { session, players } => {
            summary.sessions_opened += 1;
            let player = match state {
                ClientState::Idle(p) | ClientState::Waiting(p) => *p,
                _ => players[1],
            };
            *state = ClientState::Seated {
                player,
                session: *session,
                assignment: None,
                answered: false,
                rounds: 0,
                must_close: false,
            };
        }
        Response::SessionStatus { player, phase } => match phase {
            SessionPhase::Seated { session } => {
                if matches!(state, ClientState::Waiting(_)) {
                    *state = ClientState::Seated {
                        player: *player,
                        session: *session,
                        assignment: None,
                        answered: false,
                        rounds: 0,
                        must_close: false,
                    };
                }
            }
            SessionPhase::Idle => {
                if matches!(state, ClientState::Waiting(_)) {
                    *state = ClientState::Idle(*player);
                }
            }
            SessionPhase::Waiting => {}
        },
        Response::TaskAssigned {
            round, task, taboo, ..
        } => {
            if let ClientState::Seated {
                assignment,
                answered,
                ..
            } = state
            {
                let new_round = assignment.as_ref().map(|(r, ..)| *r) != Some(*round);
                if new_round {
                    *answered = false;
                }
                *assignment = Some((*round, *task, taboo.clone()));
            }
        }
        Response::AnswerRecorded { outcome, .. } => {
            if let ClientState::Seated {
                assignment,
                answered,
                rounds,
                must_close,
                ..
            } = state
            {
                match outcome {
                    RoundOutcome::Waiting => *answered = true,
                    resolved => {
                        summary.rounds_resolved += 1;
                        if let RoundOutcome::Matched { promoted, .. } = resolved {
                            summary.matched += 1;
                            if *promoted {
                                summary.promoted += 1;
                            }
                        }
                        *assignment = None;
                        *answered = false;
                        *rounds += 1;
                        if *rounds >= rounds_per_session {
                            *must_close = true;
                        }
                    }
                }
            }
        }
        Response::SessionClosed { .. } => {
            summary.sessions_closed += 1;
            if let ClientState::Seated { player, .. } = state {
                *state = ClientState::Idle(*player);
            }
        }
        Response::Error { error } => match error {
            ServeError::UnknownSession { .. } | ServeError::NotInSession { .. } => {
                // Partner closed the session first; resync to idle.
                if let ClientState::Seated { player, .. } = state {
                    *state = ClientState::Idle(*player);
                }
            }
            ServeError::SessionOver { .. } | ServeError::NoTaskAvailable { .. } => {
                if let ClientState::Seated { must_close, .. } = state {
                    *must_close = true;
                }
            }
            ServeError::DuplicateAnswer { .. } => {
                if let ClientState::Seated { answered, .. } = state {
                    *answered = true;
                }
            }
            _ => {}
        },
        _ => {}
    }
}

/// FNV-1a 64 over a byte string, rendered as fixed-width hex.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

fn log_line(request: &Request, response: &Response) -> String {
    let record = Value::Object(vec![
        (
            "request".to_string(),
            serde_json::to_value(request).unwrap_or(Value::Null),
        ),
        (
            "response".to_string(),
            serde_json::to_value(response).unwrap_or(Value::Null),
        ),
    ]);
    record.to_string()
}

/// Latency floors come from replaying the identical scenario this many
/// times and keeping the elementwise minimum per request — scheduling
/// spikes on a shared machine would otherwise dominate a single run's
/// µs-scale p99 and make the CI latency gate flaky.
const MEASURE_REPS: usize = 3;

/// One full pass over the scenario: the deterministic artifacts plus
/// this pass's wall-clock measurements.
struct ScenarioRun {
    summary: LoadSummary,
    log: String,
    latencies: Vec<f64>,
    waves: Vec<(u64, f64)>,
    wall_secs: f64,
}

/// Runs the load scenario [`MEASURE_REPS`] times and collects logs,
/// counters, and per-request minimum latencies.
///
/// # Errors
///
/// Returns a message when the service config is rejected, the
/// generation pool fails, or the replays diverge (a determinism bug).
pub fn run_load(opts: &LoadOpts) -> Result<LoadOutcome, String> {
    let calibration_secs = crate::grid::calibrate();
    let mut best: Option<ScenarioRun> = None;
    for rep in 0..MEASURE_REPS {
        // Only the designated first rep records; later reps replay the
        // identical scenario untraced, and the divergence check below
        // then proves recording never perturbed the run.
        let run = if rep == 0 && opts.trace.is_some() {
            let (run, trace) = hc_obs::record_scope(0, || execute(opts));
            if let Some(path) = &opts.trace {
                std::fs::write(path, hc_obs::sink::jsonl::render(&trace))
                    .map_err(|e| format!("write trace {}: {e}", path.display()))?;
            }
            run?
        } else {
            execute(opts)?
        };
        best = Some(match best {
            None => run,
            Some(mut acc) => {
                if acc.log != run.log {
                    return Err("scenario replay diverged between measurement reps".to_string());
                }
                for (a, b) in acc.latencies.iter_mut().zip(&run.latencies) {
                    *a = a.min(*b);
                }
                for (a, b) in acc.waves.iter_mut().zip(&run.waves) {
                    a.1 = a.1.min(b.1);
                }
                acc.wall_secs = acc.wall_secs.min(run.wall_secs);
                acc
            }
        });
    }
    let run = best.ok_or_else(|| "no measurement reps ran".to_string())?;
    Ok(LoadOutcome {
        summary: run.summary,
        response_log: run.log,
        timing: LoadTiming {
            calibration_secs,
            total_wall_secs: run.wall_secs,
            latencies: run.latencies,
            waves: run.waves,
        },
    })
}

/// One measured pass over the whole scenario.
fn execute(opts: &LoadOpts) -> Result<ScenarioRun, String> {
    let clients = opts.clients.max(2);
    let steps = opts.steps.max(1);
    let mut service =
        Service::new(service_config(opts.seed)).map_err(|e| format!("service config: {e}"))?;
    let factory = RngFactory::new(opts.seed).child("load");
    let vocab = Vocabulary::new(50, 1.07);

    let run_clock = Instant::now();

    // Tree instrumentation: the run scope parents every wave scope,
    // which in turn parents the per-request-type spans the service
    // emits — all keyed on sim-time, so the trace is a pure function of
    // the scenario.
    let run_scope = hc_obs::active().then(|| {
        hc_obs::name_track(0, "main");
        hc_obs::enter("load", "run", 0)
    });

    let mut summary = LoadSummary::default();
    let mut log = String::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut waves: Vec<(u64, f64)> = Vec::new();

    let apply = |service: &mut Service,
                 request: &Request,
                 summary: &mut LoadSummary,
                 log: &mut String,
                 latencies: &mut Vec<f64>|
     -> Response {
        let clock = Instant::now();
        let response = service.handle(request);
        latencies.push(clock.elapsed().as_secs_f64());
        summary.requests += 1;
        log.push_str(&log_line(request, &response));
        log.push('\n');
        response
    };

    // Setup: two published batches give the crowd something to label.
    let tasks_per_job = clients.max(8);
    for batch in 0..2u64 {
        let request = Request::PublishBatch {
            name: format!("load-batch-{batch}"),
            goal: JobGoal::OutputsPerTask(2),
            stimuli: (0..tasks_per_job as u64)
                .map(|i| Stimulus::Image(batch * 10_000 + i))
                .collect(),
        };
        let response = apply(
            &mut service,
            &request,
            &mut summary,
            &mut log,
            &mut latencies,
        );
        if response.is_error() {
            return Err(format!("setup failed: {response:?}"));
        }
    }

    let mut states: Vec<ClientState> = vec![ClientState::Unregistered; clients];

    for step in 0..steps {
        let at = SimTime::from_secs(step as u64 + 1);
        // Generation: pure per-client decisions on the pool, merged in
        // client-index order — thread count cannot reorder them.
        let snapshot = states.clone();
        let generated: Vec<Option<Request>> = run_replications(clients, opts.threads, |client| {
            generate(client, step, &snapshot[client], at, &factory, &vocab)
        })
        .map_err(|e| format!("generation pool: {e}"))?;

        // Apply: serial, client-index order, latency per request.
        let wave_scope = hc_obs::active().then(|| hc_obs::enter("load", "wave", at.ticks()));
        let wave_clock = Instant::now();
        let mut wave_requests = 0u64;
        for (client, request) in generated.iter().enumerate() {
            let Some(request) = request else { continue };
            let response = apply(
                &mut service,
                request,
                &mut summary,
                &mut log,
                &mut latencies,
            );
            if let Some(state) = states.get_mut(client) {
                observe(state, &response, opts.rounds_per_session, &mut summary);
            }
            wave_requests += 1;
        }
        waves.push((wave_requests, wave_clock.elapsed().as_secs_f64()));
        if let Some(scope) = wave_scope {
            scope.exit(
                at.ticks(),
                &[
                    ("step", (step as u64).into()),
                    ("requests", wave_requests.into()),
                ],
            );
        }
    }

    if let Some(scope) = run_scope {
        scope.close(&[
            ("requests", summary.requests.into()),
            ("sessions_opened", summary.sessions_opened.into()),
            ("rounds_resolved", summary.rounds_resolved.into()),
        ]);
    }

    summary.verified_labels = service.platform().verified_labels().len() as u64;
    summary.response_log_fnv64 = fnv1a64(log.as_bytes());
    summary.response_log_lines = log.lines().count() as u64;

    Ok(ScenarioRun {
        summary,
        log,
        latencies,
        waves,
        wall_secs: run_clock.elapsed().as_secs_f64(),
    })
}

/// Percentile of a latency sample (nearest-rank); 0.0 for empty input.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted.get(rank).copied().unwrap_or(0.0)
}

impl LoadOutcome {
    /// Renders the bench JSON under the standard section contract:
    /// `experiment`, `seed`, `reps`, `results` are deterministic;
    /// `threads`, `timing`, `machine` are not.
    ///
    /// # Errors
    ///
    /// Returns a message when a section fails to serialize.
    pub fn to_bench_json(&self, opts: &LoadOpts) -> Result<Value, String> {
        let summary =
            serde_json::to_value(&self.summary).map_err(|e| format!("serialize summary: {e}"))?;
        let results = Value::Array(vec![Value::Object(vec![
            ("id".to_string(), Value::String("traffic".to_string())),
            ("reps".to_string(), Value::Array(vec![summary])),
        ])]);

        let mut sorted = self.timing.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let num = |x: f64| serde_json::to_value(&x).map_err(|e| e.to_string());
        let latency = Value::Object(vec![
            (
                "count".to_string(),
                serde_json::to_value(&sorted.len()).map_err(|e| e.to_string())?,
            ),
            ("mean_secs".to_string(), num(mean)?),
            ("p50_secs".to_string(), num(percentile(&sorted, 0.50))?),
            ("p90_secs".to_string(), num(percentile(&sorted, 0.90))?),
            ("p99_secs".to_string(), num(percentile(&sorted, 0.99))?),
            (
                "max_secs".to_string(),
                num(sorted.last().copied().unwrap_or(0.0))?,
            ),
        ]);
        let mut saturation = Vec::with_capacity(self.timing.waves.len());
        for (step, (requests, wall)) in self.timing.waves.iter().enumerate() {
            let rps = if *wall > 0.0 {
                *requests as f64 / wall
            } else {
                0.0
            };
            saturation.push(Value::Object(vec![
                (
                    "step".to_string(),
                    serde_json::to_value(&step).map_err(|e| e.to_string())?,
                ),
                (
                    "requests".to_string(),
                    serde_json::to_value(requests).map_err(|e| e.to_string())?,
                ),
                ("wall_secs".to_string(), num(*wall)?),
                ("rps".to_string(), num(rps)?),
            ]));
        }
        let timing = Value::Object(vec![
            (
                "calibration_secs".to_string(),
                num(self.timing.calibration_secs)?,
            ),
            (
                "total_wall_secs".to_string(),
                num(self.timing.total_wall_secs)?,
            ),
            ("latency".to_string(), latency),
            ("saturation".to_string(), Value::Array(saturation)),
        ]);
        let machine = Value::Object(vec![
            (
                "threads".to_string(),
                serde_json::to_value(&opts.threads).map_err(|e| e.to_string())?,
            ),
            (
                "clients".to_string(),
                serde_json::to_value(&opts.clients).map_err(|e| e.to_string())?,
            ),
            (
                "steps".to_string(),
                serde_json::to_value(&opts.steps).map_err(|e| e.to_string())?,
            ),
        ]);

        Ok(Value::Object(vec![
            (
                "experiment".to_string(),
                Value::String("serve_load".to_string()),
            ),
            (
                "seed".to_string(),
                serde_json::to_value(&opts.seed).map_err(|e| e.to_string())?,
            ),
            (
                "reps".to_string(),
                serde_json::to_value(&1u64).map_err(|e| e.to_string())?,
            ),
            ("results".to_string(), results),
            (
                "threads".to_string(),
                serde_json::to_value(&opts.threads).map_err(|e| e.to_string())?,
            ),
            ("timing".to_string(), timing),
            ("machine".to_string(), machine),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts(threads: usize) -> LoadOpts {
        LoadOpts {
            threads,
            ..LoadOpts::default()
        }
        .smoke()
    }

    #[test]
    fn smoke_run_produces_traffic_and_promotions() {
        let out = run_load(&smoke_opts(1)).expect("runs");
        assert!(out.summary.requests > 0);
        assert!(out.summary.sessions_opened > 0, "no sessions opened");
        assert!(out.summary.rounds_resolved > 0, "no rounds resolved");
        assert!(out.summary.promoted > 0, "no labels promoted");
        assert_eq!(
            out.summary.response_log_lines,
            out.response_log.lines().count() as u64
        );
        assert_eq!(out.summary.requests, out.timing.latencies.len() as u64);
    }

    #[test]
    fn response_log_is_thread_count_invariant() {
        let serial = run_load(&smoke_opts(1)).expect("runs");
        for threads in [2, 4] {
            let par = run_load(&smoke_opts(threads)).expect("runs");
            assert_eq!(
                serial.response_log, par.response_log,
                "response log diverged at threads={threads}"
            );
            assert_eq!(
                serde_json::to_string(&serial.summary).expect("encodes"),
                serde_json::to_string(&par.summary).expect("encodes"),
                "summary diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn bench_json_keeps_the_section_contract() {
        let opts = smoke_opts(1);
        let out = run_load(&opts).expect("runs");
        let json = out.to_bench_json(&opts).expect("renders");
        for key in [
            "experiment",
            "seed",
            "reps",
            "results",
            "threads",
            "timing",
            "machine",
        ] {
            assert!(json.get(key).is_some(), "missing `{key}`");
        }
        assert_eq!(
            json.get("experiment").and_then(Value::as_str),
            Some("serve_load")
        );
        let timing = json.get("timing").expect("timing");
        assert!(timing
            .get("latency")
            .and_then(|l| l.get("p99_secs"))
            .and_then(Value::as_f64)
            .is_some());
        assert!(timing
            .get("saturation")
            .and_then(Value::as_array)
            .is_some_and(|a| !a.is_empty()));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(b""), "cbf29ce484222325");
        assert_eq!(fnv1a64(b"a"), "af63dc4c8601ec8c");
    }
}
