//! # hc-bench — the experiment harness
//!
//! One binary per table/figure of the surveyed evaluation (see DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for paper-vs-measured records),
//! plus Criterion micro-benchmarks of the platform's own compute cost.
//!
//! Run an experiment with e.g.
//!
//! ```text
//! cargo run -p hc-bench --release --bin exp_t1_gwap_metrics
//! ```
//!
//! Every binary prints a human-readable table to stdout **and** one JSON
//! line per row (prefixed `JSON:`) so results can be scraped
//! programmatically. All experiments are deterministic for a fixed
//! `--seed` (default 42, first CLI argument).
//!
//! Grid-based experiments additionally accept `--threads N` (parallel
//! replication pool; output bytes never change, see [`grid`]), `--reps`,
//! `--smoke`, `--bench-json PATH`, and `--trace PATH` (record an
//! `hc-obs` trace of the run); the `hc-bench` binary compares two bench
//! JSONs for determinism or performance and summarizes or converts
//! recorded traces (see [`trace`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod compare;
pub mod grid;
pub mod load;
pub mod trace;

pub use cli::RunOpts;
pub use grid::{run_grid, Cell, GridOutcome, TaskCtx};

use serde::Serialize;

/// Paper-reported reference values from the line of work the DAC 2009
/// invited paper surveys (CHI'04, CACM'08, Science'08). Recorded here so
/// experiment binaries can print paper-vs-measured side by side.
pub mod paper {
    /// ESP Game throughput, labels per human-hour (CACM'08 Table 1).
    pub const ESP_THROUGHPUT: f64 = 233.0;
    /// ESP Game average lifetime play, hours (≈ 91 minutes).
    pub const ESP_ALP_HOURS: f64 = 91.0 / 60.0;
    /// ESP expected contribution, labels per recruit.
    pub const ESP_EXPECTED_CONTRIBUTION: f64 = 233.0 * 91.0 / 60.0;
    /// Fraction of ESP labels judged useful by human raters (CHI'04).
    pub const ESP_LABEL_PRECISION: f64 = 0.85;
    /// reCAPTCHA word-level accuracy (Science'08).
    pub const RECAPTCHA_WORD_ACCURACY: f64 = 0.99;
    /// Standalone OCR word accuracy on hard scans (Science'08).
    pub const OCR_WORD_ACCURACY: f64 = 0.835;
    /// Human CAPTCHA pass rate, deployed systems (approx.).
    pub const HUMAN_CAPTCHA_PASS: f64 = 0.90;
    /// Bot CAPTCHA pass rate the paper's premise requires ("programs
    /// fail").
    pub const BOT_CAPTCHA_PASS: f64 = 0.01;
}

/// Reads the experiment seed from argv (first arg, default 42).
#[must_use]
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A fixed-width console table that also emits `JSON:` lines per row.
#[derive(Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    json_rows: Vec<serde_json::Value>,
}

impl Table {
    /// Starts a table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            json_rows: Vec::new(),
        }
    }

    /// Adds a row from display strings plus a serializable record for the
    /// `JSON:` stream.
    pub fn row<T: Serialize>(&mut self, cells: &[String], record: &T) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self.json_rows
            .push(serde_json::to_value(record).expect("records serialize"));
    }

    /// Renders the table and JSON stream to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
        for j in &self.json_rows {
            println!("JSON: {j}");
        }
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats a float with 1 decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Rec {
        a: u32,
    }

    #[test]
    fn table_accumulates_rows() {
        let mut t = Table::new("demo", &["x", "y"]);
        assert!(t.is_empty());
        t.row(&["1".into(), "2".into()], &Rec { a: 1 });
        assert_eq!(t.len(), 1);
        t.print(); // smoke: must not panic
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["only-one".into()], &Rec { a: 1 });
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.856), "85.6%");
    }

    #[test]
    fn paper_constants_are_consistent() {
        assert!(
            (paper::ESP_EXPECTED_CONTRIBUTION - paper::ESP_THROUGHPUT * paper::ESP_ALP_HOURS).abs()
                < 1e-9
        );
    }
}
