//! `hc-bench trace` — load, summarize, analyze, and convert recorded
//! traces.
//!
//! An experiment run with `--trace PATH` writes an `hc-obs` JSONL trace;
//! this module turns that file back into numbers a human can read:
//!
//! * [`summarize`] — per-span aggregates (count / total / mean / max
//!   sim-time), event counts, the metrics registry, and — when the run
//!   recorded the `metrics.*` counters — the paper's live throughput and
//!   ALP derived *from the trace alone*;
//! * [`load_trace`] — parse a JSONL trace file into a full [`Trace`]
//!   (fine for small inputs; `export-chrome` needs the whole thing);
//! * [`stream_trace`] — fold a JSONL trace record by record without
//!   materializing the record vector, for the analysis passes
//!   (`critical-path`, `flame`, `timeseries`, `derive`, `diff` in the
//!   `hc-bench` binary) whose accumulators are all streaming;
//! * [`derive_summary`] / [`load_summary`] — the derived-metrics
//!   summary behind the CI trace-regression gate.
//!
//! Everything here reports **sim-time**; the only wall-clock numbers are
//! the machine-dependent stats, which are labelled as such.

use hc_obs::analyze::{DeriveAcc, DerivedMetrics};
use hc_obs::sink::jsonl::Line;
use hc_obs::{MetricsRegistry, Record, RecordData, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::BufRead as _;
use std::path::Path;

/// Loads and parses a JSONL trace file.
///
/// # Errors
///
/// Returns a message naming the file on IO or parse failure.
pub fn load_trace(path: &Path) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    hc_obs::sink::jsonl::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The trailing (non-record) sections of a streamed trace.
#[derive(Debug, Default)]
pub struct TraceTail {
    /// Track names from the `tracks` line (empty when absent).
    pub track_names: BTreeMap<u32, String>,
    /// The metrics-registry section.
    pub metrics: MetricsRegistry,
    /// Machine-dependent stats (wall-clock, worker counts).
    pub machine: BTreeMap<String, f64>,
}

/// Streams a JSONL trace file line by line, feeding each record to
/// `on_record` in file order, and returns the trailing sections. Peak
/// memory is one line plus whatever `on_record` retains — the analysis
/// accumulators are all streaming, so million-record traces never need
/// a `Vec<Record>` in memory.
///
/// # Errors
///
/// Returns a message naming the file (and line on parse failures).
pub fn stream_trace(path: &Path, mut on_record: impl FnMut(&Record)) -> Result<TraceTail, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let reader = std::io::BufReader::new(file);
    let mut tail = TraceTail::default();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read {}: {e}", path.display()))?;
        match hc_obs::sink::jsonl::parse_line(&line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?
        {
            None => {}
            Some(Line::Record(r)) => on_record(&r),
            Some(Line::Tracks(names)) => tail.track_names = names,
            Some(Line::Metrics(m)) => tail.metrics = m,
            Some(Line::Machine(m)) => tail.machine = m,
        }
    }
    Ok(tail)
}

/// Streams a JSONL trace into its derived-metrics summary.
///
/// # Errors
///
/// Propagates [`stream_trace`] failures.
pub fn derive_summary(path: &Path) -> Result<DerivedMetrics, String> {
    let mut acc = DeriveAcc::new();
    stream_trace(path, |r| acc.add(r))?;
    Ok(acc.finish())
}

/// Loads a derived-metrics summary from either a summary JSON written
/// by `trace derive` (sniffed by its schema marker on the first line)
/// or a raw JSONL trace, which is derived on the fly.
///
/// # Errors
///
/// Returns a message naming the file on IO or parse failure.
pub fn load_summary(path: &Path) -> Result<DerivedMetrics, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut first = String::new();
    let mut reader = std::io::BufReader::new(file);
    reader
        .read_line(&mut first)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    if first.contains("\"hc-trace-derived-v1\"") {
        DerivedMetrics::from_json(&first).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        derive_summary(path)
    }
}

/// Aggregate over all spans sharing one `(target, name)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanAgg {
    /// Number of spans.
    pub count: u64,
    /// Summed duration, sim-µs.
    pub total_us: u64,
    /// Longest single span, sim-µs.
    pub max_us: u64,
}

impl SpanAgg {
    /// Mean duration in sim-µs (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Folds a trace's spans into per-`(target, name)` aggregates.
#[must_use]
pub fn span_aggregates(trace: &Trace) -> BTreeMap<(String, String), SpanAgg> {
    let mut spans: BTreeMap<(String, String), SpanAgg> = BTreeMap::new();
    for r in &trace.records {
        if let RecordData::Span {
            target,
            name,
            dur_us,
            ..
        } = &r.data
        {
            let agg = spans.entry((target.clone(), name.clone())).or_default();
            agg.count += 1;
            agg.total_us += dur_us;
            agg.max_us = agg.max_us.max(*dur_us);
        }
    }
    spans
}

/// Live GWAP metrics derived from the `metrics.*` counters the
/// `ContributionLedger` mirrors into every trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveGwap {
    /// Verified outputs per human-hour.
    pub throughput_per_human_hour: f64,
    /// Average lifetime play per player, hours.
    pub alp_hours: f64,
    /// Total verified outputs counted.
    pub outputs: u64,
    /// Total human-hours counted.
    pub human_hours: f64,
    /// Distinct players counted.
    pub players: u64,
}

/// Derives [`LiveGwap`] from a trace's counters, or `None` when the run
/// recorded no play time.
#[must_use]
pub fn live_gwap(trace: &Trace) -> Option<LiveGwap> {
    let play_us = trace.metrics.counter("metrics.play_us");
    if play_us == 0 {
        return None;
    }
    let outputs = trace.metrics.counter("metrics.outputs");
    let players = trace.metrics.counter("metrics.players");
    let human_hours = play_us as f64 / 3_600_000_000.0;
    let throughput = if human_hours > 0.0 {
        outputs as f64 / human_hours
    } else {
        0.0
    };
    let alp = if players > 0 {
        human_hours / players as f64
    } else {
        0.0
    };
    Some(LiveGwap {
        throughput_per_human_hour: throughput,
        alp_hours: alp,
        outputs,
        human_hours,
        players,
    })
}

/// Renders a human-readable summary of a trace.
#[must_use]
pub fn summarize(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} records over {} sim-µs",
        trace.records.len(),
        trace.max_t_us()
    );

    let spans = span_aggregates(trace);
    if !spans.is_empty() {
        let _ = writeln!(out, "\nspans (sim-time):");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>14} {:>12} {:>12}",
            "target/name", "count", "total µs", "mean µs", "max µs"
        );
        for ((target, name), agg) in &spans {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>14} {:>12.1} {:>12}",
                format!("{target}/{name}"),
                agg.count,
                agg.total_us,
                agg.mean_us(),
                agg.max_us
            );
        }
    }

    let mut events: BTreeMap<(String, String), u64> = BTreeMap::new();
    for r in &trace.records {
        if let RecordData::Event { target, name, .. } = &r.data {
            *events.entry((target.clone(), name.clone())).or_insert(0) += 1;
        }
    }
    if !events.is_empty() {
        let _ = writeln!(out, "\nevents:");
        for ((target, name), n) in &events {
            let _ = writeln!(out, "  {:<28} {n:>8}", format!("{target}/{name}"));
        }
    }

    if !trace.metrics.counters().is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, v) in trace.metrics.counters() {
            let _ = writeln!(out, "  {name:<28} {v:>12}");
        }
    }
    if !trace.metrics.gauges().is_empty() {
        let _ = writeln!(out, "\ngauges (last / min / max):");
        for (name, g) in trace.metrics.gauges() {
            let _ = writeln!(out, "  {name:<28} {:>10} / {} / {}", g.last, g.min, g.max);
        }
    }
    if !trace.metrics.histograms().is_empty() {
        let _ = writeln!(out, "\nhistograms (count / mean / min / max):");
        for (name, h) in trace.metrics.histograms() {
            let _ = writeln!(
                out,
                "  {name:<28} {} / {:.3} / {} / {}",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
    }

    if let Some(gwap) = live_gwap(trace) {
        let _ = writeln!(out, "\nlive GWAP metrics (from counters):");
        let _ = writeln!(
            out,
            "  throughput {:.1}/human-hour   ALP {:.1} min   outputs {}   human-hours {:.2}   players {}",
            gwap.throughput_per_human_hour,
            gwap.alp_hours * 60.0,
            gwap.outputs,
            gwap.human_hours,
            gwap.players
        );
    }

    if !trace.machine.is_empty() {
        let _ = writeln!(out, "\nmachine-dependent stats (vary across runs/hosts):");
        for (name, v) in &trace.machine {
            let _ = writeln!(out, "  {name:<28} {v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> Trace {
        let ((), trace) = hc_obs::record_scope(0, || {
            hc_obs::span("sim", "run", 0, 2_000, &[]);
            hc_obs::span("sim", "run", 2_000, 6_000, &[]);
            hc_obs::event("core", "pair", 100, &[]);
            hc_obs::counter("metrics.outputs", 3_600, 200);
            hc_obs::counter("metrics.play_us", 3_600, 7_200_000_000);
            hc_obs::counter("metrics.players", 3_600, 2);
            hc_obs::machine_stat("par.steals", 5.0);
        });
        trace
    }

    #[test]
    fn span_aggregates_fold_by_target_and_name() {
        let aggs = span_aggregates(&demo_trace());
        let run = aggs
            .get(&("sim".to_string(), "run".to_string()))
            .expect("sim/run present");
        assert_eq!(run.count, 2);
        assert_eq!(run.total_us, 6_000);
        assert_eq!(run.max_us, 4_000);
        assert!((run.mean_us() - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn live_gwap_derives_the_paper_metrics() {
        // 200 outputs over 2 human-hours by 2 players: throughput 100/h,
        // ALP 1 h — the ledger doctest's numbers, now read off the trace.
        let gwap = live_gwap(&demo_trace()).expect("play time recorded");
        assert!((gwap.throughput_per_human_hour - 100.0).abs() < 1e-9);
        assert!((gwap.alp_hours - 1.0).abs() < 1e-9);
        assert_eq!(gwap.players, 2);
    }

    #[test]
    fn live_gwap_absent_without_play_time() {
        assert!(live_gwap(&Trace::new()).is_none());
    }

    #[test]
    fn summary_mentions_every_section() {
        let s = summarize(&demo_trace());
        for needle in [
            "spans (sim-time)",
            "sim/run",
            "events:",
            "core/pair",
            "counters:",
            "metrics.outputs",
            "live GWAP metrics",
            "machine-dependent",
            "par.steals",
        ] {
            assert!(s.contains(needle), "summary missing `{needle}`:\n{s}");
        }
    }

    #[test]
    fn empty_trace_summarizes_to_the_header_only() {
        let s = summarize(&Trace::new());
        assert!(s.starts_with("trace: 0 records"));
        assert!(!s.contains("spans"));
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hc-bench-trace-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn stream_trace_agrees_with_the_full_parse() {
        let trace = demo_trace();
        let path = temp_path("stream");
        std::fs::write(&path, hc_obs::sink::jsonl::render(&trace)).expect("write temp trace");
        let mut records = Vec::new();
        let tail = stream_trace(&path, |r| records.push(r.clone())).expect("stream");
        let _ = std::fs::remove_file(&path);
        assert_eq!(records, trace.records);
        assert_eq!(tail.metrics, trace.metrics);
        assert_eq!(tail.machine, trace.machine);
        assert_eq!(tail.track_names, trace.track_names);
    }

    #[test]
    fn load_summary_sniffs_derived_json_and_raw_traces() {
        let raw = temp_path("raw");
        std::fs::write(&raw, hc_obs::sink::jsonl::render(&demo_trace())).expect("write raw");
        let derived_path = temp_path("derived");
        let derived = derive_summary(&raw).expect("derive");
        std::fs::write(&derived_path, derived.to_json()).expect("write derived");
        let from_raw = load_summary(&raw).expect("summary from raw trace");
        let from_json = load_summary(&derived_path).expect("summary from derived JSON");
        let _ = std::fs::remove_file(&raw);
        let _ = std::fs::remove_file(&derived_path);
        assert_eq!(from_raw.to_json(), from_json.to_json());
        assert!(from_raw.to_json().contains("sim/run"));
    }
}
