//! Bench-JSON comparison: the logic behind `hc-bench compare`.
//!
//! Two comparison modes, both over the JSON written by
//! [`run_grid`](crate::grid):
//!
//! * **determinism** — the deterministic sections (`experiment`, `seed`,
//!   `reps`, `results`) of two runs must be *equal*, byte for byte once
//!   re-rendered. CI runs the same grid at `--threads 1` and
//!   `--threads 4` and diffs them; any drift fails the build.
//! * **perf** — wall-clock comparison. Raw total seconds give the
//!   same-machine speedup (`--min-speedup`); calibration-normalized
//!   totals give a machine-portable slowdown vs a committed baseline
//!   (`--max-slowdown`), so a slower CI runner does not fake a
//!   regression.

use serde_json::Value;
use std::path::Path;

/// Reads and parses a bench JSON file.
///
/// # Errors
///
/// Returns a message naming the path on IO or parse failure.
pub fn load_bench_json(path: &Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Top-level keys that must be identical across thread counts.
const DETERMINISTIC_KEYS: [&str; 4] = ["experiment", "seed", "reps", "results"];

/// Verifies that the deterministic sections of two bench JSONs agree.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn determinism_diff(a: &Value, b: &Value) -> Result<(), String> {
    for key in DETERMINISTIC_KEYS {
        let (va, vb) = (a.get(key), b.get(key));
        if va == vb {
            continue;
        }
        if key == "results" {
            return Err(first_result_divergence(va, vb));
        }
        return Err(format!("`{key}` differs: {} vs {}", render(va), render(vb)));
    }
    Ok(())
}

/// Locates the first differing cell/rep so the CI log says *where*
/// determinism broke, not just that it did.
fn first_result_divergence(a: Option<&Value>, b: Option<&Value>) -> String {
    let (Some(cells_a), Some(cells_b)) = (a.and_then(Value::as_array), b.and_then(Value::as_array))
    else {
        return "`results` section missing or not an array in one file".to_string();
    };
    if cells_a.len() != cells_b.len() {
        return format!(
            "`results` cell count differs: {} vs {}",
            cells_a.len(),
            cells_b.len()
        );
    }
    for (ca, cb) in cells_a.iter().zip(cells_b) {
        if ca == cb {
            continue;
        }
        let id = ca.get("id").and_then(Value::as_str).unwrap_or("<unnamed>");
        let (reps_a, reps_b) = (
            ca.get("reps").and_then(Value::as_array),
            cb.get("reps").and_then(Value::as_array),
        );
        if let (Some(ra), Some(rb)) = (reps_a, reps_b) {
            for (rep, (xa, xb)) in ra.iter().zip(rb).enumerate() {
                if xa != xb {
                    return format!("cell `{id}` rep {rep} differs: {xa} vs {xb}");
                }
            }
        }
        return format!("cell `{id}` differs");
    }
    "`results` differ but no differing cell was found (ordering?)".to_string()
}

fn render(v: Option<&Value>) -> String {
    v.map_or_else(|| "<missing>".to_string(), ToString::to_string)
}

/// The numbers a perf comparison is judged on.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfComparison {
    /// Baseline raw wall seconds.
    pub baseline_secs: f64,
    /// Current raw wall seconds.
    pub current_secs: f64,
    /// Baseline wall time in calibration units (machine-portable).
    pub baseline_norm: f64,
    /// Current wall time in calibration units (machine-portable).
    pub current_norm: f64,
    /// `current_norm / baseline_norm` — >1 means the current run is
    /// slower per unit of machine speed.
    pub slowdown: f64,
    /// `baseline_secs / current_secs` — same-machine speedup of the
    /// current run over the baseline run.
    pub speedup: f64,
}

fn timing_pair(v: &Value, which: &str) -> Result<(f64, f64), String> {
    let timing = v
        .get("timing")
        .ok_or_else(|| format!("{which}: no `timing` section"))?;
    let total = timing
        .get("total_wall_secs")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{which}: no `timing.total_wall_secs`"))?;
    let calibration = timing
        .get("calibration_secs")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{which}: no `timing.calibration_secs`"))?;
    if total <= 0.0 || calibration <= 0.0 {
        return Err(format!(
            "{which}: non-positive timing (total {total}, calibration {calibration})"
        ));
    }
    Ok((total, calibration))
}

/// Computes the perf comparison between two bench JSONs.
///
/// # Errors
///
/// Returns a message when either file lacks usable timing.
pub fn perf_compare(baseline: &Value, current: &Value) -> Result<PerfComparison, String> {
    let (base_total, base_cal) = timing_pair(baseline, "baseline")?;
    let (cur_total, cur_cal) = timing_pair(current, "current")?;
    let baseline_norm = base_total / base_cal;
    let current_norm = cur_total / cur_cal;
    Ok(PerfComparison {
        baseline_secs: base_total,
        current_secs: cur_total,
        baseline_norm,
        current_norm,
        slowdown: current_norm / baseline_norm,
        speedup: base_total / cur_total,
    })
}

/// Reads `timing.latency.p99_secs` from a load-harness bench JSON.
fn p99_secs(v: &Value, which: &str) -> Result<f64, String> {
    let p99 = v
        .get("timing")
        .and_then(|t| t.get("latency"))
        .and_then(|l| l.get("p99_secs"))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{which}: no `timing.latency.p99_secs`"))?;
    if p99 <= 0.0 {
        return Err(format!("{which}: non-positive p99 ({p99})"));
    }
    Ok(p99)
}

/// Calibration-normalized p99-latency slowdown of `current` over
/// `baseline` — >1 means requests got slower per unit of machine
/// speed. Both files need the load harness's `timing.latency` section.
///
/// # Errors
///
/// Returns a message when either file lacks usable latency or
/// calibration numbers.
pub fn p99_compare(baseline: &Value, current: &Value) -> Result<f64, String> {
    let (_, base_cal) = timing_pair(baseline, "baseline")?;
    let (_, cur_cal) = timing_pair(current, "current")?;
    let base_p99 = p99_secs(baseline, "baseline")?;
    let cur_p99 = p99_secs(current, "current")?;
    Ok((cur_p99 / cur_cal) / (base_p99 / base_cal))
}

/// Merges one grid run per thread count into a single sweep JSON.
///
/// The deterministic sections must agree across every run (the whole
/// point of the sweep is that only wall clock moves); the merged record
/// keeps them once and adds a `sweep` array with per-thread-count
/// timing and the raw speedup over the first (slowest-threaded) run.
///
/// # Errors
///
/// Returns a message when fewer than one run is given, when any run's
/// deterministic sections diverge from the first, or when timing is
/// missing.
pub fn merge_sweep(runs: &[(usize, Value)]) -> Result<Value, String> {
    let [(first_threads, first), rest @ ..] = runs else {
        return Err("sweep needs at least one run".to_string());
    };
    for (threads, run) in rest {
        determinism_diff(first, run)
            .map_err(|e| format!("threads={threads} diverges from threads={first_threads}: {e}"))?;
    }
    let (first_total, _) = timing_pair(first, &format!("threads={first_threads}"))?;
    let mut sweep = Vec::with_capacity(runs.len());
    for (threads, run) in runs {
        let which = format!("threads={threads}");
        let (total, calibration) = timing_pair(run, &which)?;
        let field = |v: f64| serde_json::to_value(&v).map_err(|e| e.to_string());
        sweep.push(Value::Object(vec![
            (
                "threads".to_string(),
                serde_json::to_value(threads).map_err(|e| e.to_string())?,
            ),
            ("total_wall_secs".to_string(), field(total)?),
            ("calibration_secs".to_string(), field(calibration)?),
            ("speedup_vs_first".to_string(), field(first_total / total)?),
        ]));
    }
    let mut merged: Vec<(String, Value)> = Vec::new();
    for key in DETERMINISTIC_KEYS {
        if let Some(v) = first.get(key) {
            merged.push((key.to_string(), v.clone()));
        }
    }
    merged.push(("sweep".to_string(), Value::Array(sweep)));
    Ok(Value::Object(merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(threads: u64, total: f64, cal: f64, payload: u64) -> Value {
        serde_json::from_str(&format!(
            r#"{{"experiment":"e","seed":42,"reps":2,
                 "results":[{{"id":"c","reps":[{payload},2]}}],
                 "threads":{threads},
                 "timing":{{"calibration_secs":{cal},"total_wall_secs":{total},"tasks":[]}}}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn identical_results_pass_determinism_even_with_different_threads_and_timing() {
        let a = bench(1, 10.0, 0.05, 1);
        let b = bench(4, 3.0, 0.04, 1);
        assert_eq!(determinism_diff(&a, &b), Ok(()));
    }

    #[test]
    fn differing_results_fail_with_a_cell_level_message() {
        let a = bench(1, 10.0, 0.05, 1);
        let b = bench(1, 10.0, 0.05, 9);
        let err = determinism_diff(&a, &b).expect_err("must differ");
        assert!(err.contains("cell `c` rep 0"), "got: {err}");
    }

    #[test]
    fn differing_seed_fails() {
        let a = bench(1, 10.0, 0.05, 1);
        let mut b = bench(1, 10.0, 0.05, 1);
        if let Value::Object(fields) = &mut b {
            for (k, v) in fields.iter_mut() {
                if k == "seed" {
                    *v = serde_json::to_value(&43u64).expect("value");
                }
            }
        }
        let err = determinism_diff(&a, &b).expect_err("must differ");
        assert!(err.contains("`seed` differs"), "got: {err}");
    }

    #[test]
    fn perf_numbers_normalize_by_calibration() {
        // Baseline machine is 2x slower (calibration 0.10 vs 0.05): a raw
        // 10s baseline and 6s current is a normalized slowdown of 1.2.
        let base = bench(1, 10.0, 0.10, 1);
        let cur = bench(1, 6.0, 0.05, 1);
        let p = perf_compare(&base, &cur).expect("timing present");
        assert!((p.baseline_norm - 100.0).abs() < 1e-9);
        assert!((p.current_norm - 120.0).abs() < 1e-9);
        assert!((p.slowdown - 1.2).abs() < 1e-9);
        assert!((p.speedup - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_merges_timing_and_keeps_results_once() {
        let runs = vec![
            (1usize, bench(1, 10.0, 0.05, 1)),
            (2, bench(2, 6.0, 0.05, 1)),
            (4, bench(4, 4.0, 0.05, 1)),
        ];
        let merged = merge_sweep(&runs).expect("merges");
        assert_eq!(
            merged.get("results"),
            runs[0].1.get("results"),
            "deterministic sections kept once"
        );
        let sweep = merged
            .get("sweep")
            .and_then(Value::as_array)
            .expect("sweep array");
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[2].get("threads").and_then(Value::as_u64), Some(4));
        let speedup = sweep[2]
            .get("speedup_vs_first")
            .and_then(Value::as_f64)
            .expect("speedup");
        assert!((speedup - 2.5).abs() < 1e-9);
    }

    #[test]
    fn sweep_rejects_diverging_results() {
        let runs = vec![
            (1usize, bench(1, 10.0, 0.05, 1)),
            (4, bench(4, 4.0, 0.05, 9)),
        ];
        let err = merge_sweep(&runs).expect_err("must diverge");
        assert!(err.contains("threads=4 diverges"), "got: {err}");
    }

    fn with_latency(mut v: Value, p99: f64) -> Value {
        let latency: Value = serde_json::from_str(&format!(r#"{{"p99_secs":{p99}}}"#))
            .expect("latency fixture parses");
        if let Value::Object(fields) = &mut v {
            for (k, t) in fields.iter_mut() {
                if k == "timing" {
                    if let Value::Object(tf) = t {
                        tf.push(("latency".to_string(), latency));
                        return v;
                    }
                }
            }
        }
        panic!("fixture has no timing object");
    }

    #[test]
    fn p99_slowdown_normalizes_by_calibration() {
        // Baseline machine 2x slower: raw p99 2ms vs 1.5ms is a
        // normalized slowdown of 1.5.
        let base = with_latency(bench(1, 10.0, 0.10, 1), 0.002);
        let cur = with_latency(bench(1, 10.0, 0.05, 1), 0.0015);
        let slowdown = p99_compare(&base, &cur).expect("latency present");
        assert!((slowdown - 1.5).abs() < 1e-9, "got {slowdown}");
    }

    #[test]
    fn p99_missing_latency_is_an_error() {
        let base = with_latency(bench(1, 10.0, 0.05, 1), 0.002);
        let plain = bench(1, 10.0, 0.05, 1);
        assert!(p99_compare(&base, &plain).is_err());
        assert!(p99_compare(&plain, &base).is_err());
    }

    #[test]
    fn missing_timing_is_an_error() {
        let a = bench(1, 10.0, 0.05, 1);
        let no_timing: Value = serde_json::from_str(r#"{"experiment":"e"}"#).expect("parses");
        assert!(perf_compare(&a, &no_timing).is_err());
        assert!(perf_compare(&no_timing, &a).is_err());
    }
}
