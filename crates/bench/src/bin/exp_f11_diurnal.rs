//! Experiment F11 — time-of-day pairing dynamics.
//!
//! Real GWAP portals breathe with the day: traffic swings by multiples
//! between peak evening and dead night, and since output-agreement needs
//! *simultaneous* strangers, the replay-bot fallback rate swings with it
//! — the live-pairing fraction is a super-linear function of
//! instantaneous arrival rate. We drive a 24-hour non-homogeneous Poisson
//! arrival stream (sinusoidal profile) through epoch-based random
//! matching and report, per hour of day: arrivals, live pairs, and the
//! share of players who gave up unpaired (the replay-bot demand curve),
//! averaged over seed replications fanned out on the parallel pool.
//!
//! (The waiting-pool bookkeeping uses `BTreeMap`, not `HashMap`: the
//! pool rebuild iterates the map, and hash iteration order would leak
//! process-level nondeterminism into the pairing sequence.)

use hc_bench::{f1, pct, run_grid, Cell, RunOpts, Table};
use hc_core::prelude::*;
use hc_sim::prelude::*;
use hc_sim::OnlineStats;
use serde::Serialize;
use std::collections::BTreeMap;

/// Matching epoch length.
const EPOCH: SimDuration = SimDuration::from_secs(30);
/// Epochs a player waits before giving up (≈ the replay-bot threshold).
const PATIENCE_EPOCHS: u32 = 2;

#[derive(Serialize, Clone)]
struct HourRep {
    hour: u64,
    arrivals: u64,
    live_pairs: u64,
    gave_up: u64,
    replay_share: f64,
}

#[derive(Serialize)]
struct HourRow {
    hour: u64,
    reps: usize,
    arrivals_mean: f64,
    live_pairs_mean: f64,
    gave_up_mean: f64,
    replay_share_mean: f64,
}

/// One full simulated day; returns the 24 per-hour records.
fn one_day(mut rng: SimRng) -> Vec<HourRep> {
    // Peak at hour 6 of the cycle, trough at hour 18; traffic swings 19:1.
    let arrivals_process = DiurnalProcess::new(0.05, 0.9, SimDuration::ZERO);
    let day = SimTime::from_secs(86_400);
    let arrivals = arrivals_process.arrivals_between(SimTime::ZERO, day, &mut rng);

    let mut matcher = BatchMatcher::new(PairingPolicy::Random);
    let mut waited_epochs: BTreeMap<PlayerId, u32> = BTreeMap::new();
    let mut arrivals_series = RateSeries::new(SimDuration::from_hours(1));
    let mut pairs_series = RateSeries::new(SimDuration::from_hours(1));
    let mut giveup_series = RateSeries::new(SimDuration::from_hours(1));

    let mut next_id = 0u64;
    let mut arrival_iter = arrivals.iter().peekable();
    let mut epoch_end = SimTime::ZERO + EPOCH;
    while epoch_end <= day {
        // Admit this epoch's arrivals.
        while let Some(&&at) = arrival_iter.peek() {
            if at <= epoch_end {
                let p = PlayerId::new(next_id);
                next_id += 1;
                matcher.join(p);
                waited_epochs.insert(p, 0);
                arrivals_series.record(at, 1);
                arrival_iter.next();
            } else {
                break;
            }
        }
        // Pair the epoch.
        let pairs = matcher.pair_epoch(&mut rng);
        for (a, b) in &pairs {
            waited_epochs.remove(a);
            waited_epochs.remove(b);
            pairs_series.record(epoch_end, 1);
        }
        // Age the leftover; evict the impatient (they get a replay bot).
        let mut gave_up = Vec::new();
        for (p, w) in waited_epochs.iter_mut() {
            *w += 1;
            if *w > PATIENCE_EPOCHS {
                gave_up.push(*p);
            }
        }
        for p in gave_up {
            waited_epochs.remove(&p);
            giveup_series.record(epoch_end, 1);
        }
        // Rebuild the matcher pool from still-waiting players (the
        // BatchMatcher would otherwise retain evicted ids).
        let waiting: Vec<PlayerId> = waited_epochs.keys().copied().collect();
        matcher = rebuilt(matcher, &waiting);
        epoch_end += EPOCH;
    }

    (0..24u64)
        .map(|hour| {
            let i = hour as usize;
            let arr = arrivals_series.window_count(i);
            let pairs = pairs_series.window_count(i);
            let gave = giveup_series.window_count(i);
            let served_live = pairs * 2;
            let total = served_live + gave;
            HourRep {
                hour,
                arrivals: arr,
                live_pairs: pairs,
                gave_up: gave,
                replay_share: if total == 0 {
                    0.0
                } else {
                    gave as f64 / total as f64
                },
            }
        })
        .collect()
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut stats = OnlineStats::new();
    for v in values {
        stats.push(v);
    }
    stats.mean()
}

fn main() {
    let opts = RunOpts::from_args();
    let reps = opts.reps_or(4, 2);
    let outcome = run_grid(
        &opts,
        "exp_f11_diurnal",
        vec![Cell::new("day", ())],
        reps,
        |(), ctx| one_day(ctx.rng),
    )
    .unwrap_or_else(|e| {
        eprintln!("exp_f11_diurnal: {e}");
        std::process::exit(1);
    });
    let days: Vec<&Vec<HourRep>> = outcome.cells.iter().flat_map(|c| c.reps.iter()).collect();

    let mut table = Table::new(
        "F11 — diurnal traffic: live pairing vs replay demand by hour",
        &["hour", "arrivals", "live pairs", "gave up", "replay share"],
    );
    for hour in 0..24usize {
        let at_hour: Vec<&HourRep> = days.iter().filter_map(|d| d.get(hour)).collect();
        let row = HourRow {
            hour: hour as u64,
            reps: at_hour.len(),
            arrivals_mean: mean(at_hour.iter().map(|h| h.arrivals as f64)),
            live_pairs_mean: mean(at_hour.iter().map(|h| h.live_pairs as f64)),
            gave_up_mean: mean(at_hour.iter().map(|h| h.gave_up as f64)),
            replay_share_mean: mean(at_hour.iter().map(|h| h.replay_share)),
        };
        table.row(
            &[
                f1(row.hour as f64),
                f1(row.arrivals_mean),
                f1(row.live_pairs_mean),
                f1(row.gave_up_mean),
                pct(row.replay_share_mean),
            ],
            &row,
        );
    }
    table.print();
    println!("\nexpected shape: replay share is lowest at the traffic peak (hour ~6) and highest in the dead of night (hour ~18) — live pairing is super-linear in arrival rate");
    outcome.write_bench_json(&opts);
    outcome.write_trace(&opts);
}

/// Rebuilds a matcher containing exactly `waiting` (preserving policy and
/// counters' semantics for this experiment's purposes).
fn rebuilt(old: BatchMatcher, waiting: &[PlayerId]) -> BatchMatcher {
    let mut m = BatchMatcher::new(old.policy());
    for p in waiting {
        m.join(*p);
    }
    m
}
