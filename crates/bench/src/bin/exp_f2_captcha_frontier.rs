//! Experiment F2 — the CAPTCHA security/usability frontier.
//!
//! The paper's premise: a CAPTCHA is useful only in the regime where
//! humans pass (~90%+) and programs fail (≪1%). We sweep distortion and
//! fire three respondent models at a two-word challenge: a typical human,
//! a commercial OCR engine, and a stronger research attacker — tracing
//! the frontier and the security margin left against better OCR.

use hc_bench::{f3, paper, pct, seed_from_args, Table};
use hc_captcha::corpus::pseudo_word;
use hc_captcha::{Captcha, HumanReader, OcrEngine};
use hc_sim::RngFactory;
use rand::Rng;
use serde::Serialize;

const TRIALS: usize = 4_000;

#[derive(Serialize)]
struct Row {
    distortion: f64,
    human_pass: f64,
    ocr_pass: f64,
    advanced_ocr_pass: f64,
}

fn pass_rate<F: FnMut(&Captcha, &mut rand::rngs::StdRng) -> Vec<String>>(
    distortion: f64,
    rng: &mut rand::rngs::StdRng,
    mut respond: F,
) -> f64 {
    let mut passes = 0;
    for _ in 0..TRIALS {
        let words = vec![pseudo_word(rng), pseudo_word(rng)];
        // Strict matching (no edit tolerance): the original CAPTCHA's
        // check. The reCAPTCHA protocol's 1-edit tolerance is measured
        // separately in F1/F7.
        let captcha = Captcha::new(words, distortion, 0);
        let answers = respond(&captcha, rng);
        if captcha.check(&answers).is_pass() {
            passes += 1;
        }
    }
    passes as f64 / TRIALS as f64
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "F2 — CAPTCHA frontier: pass rates vs distortion (two-word challenge)",
        &["distortion", "human", "OCR (commercial)", "OCR (advanced)"],
    );

    let human = HumanReader::typical();
    let ocr = OcrEngine::commercial();
    let advanced = OcrEngine::advanced_attacker();

    for step in 0..=10 {
        let d = f64::from(step) / 10.0;
        let mut rng = factory.indexed_stream("f2", step as u64);
        let human_pass = pass_rate(d, &mut rng, |c, r| {
            c.words()
                .iter()
                .map(|w| human.read(w, c.distortion, r))
                .collect()
        });
        let ocr_pass = pass_rate(d, &mut rng, |c, r| {
            c.words()
                .iter()
                .map(|w| ocr.read(w, c.distortion, r))
                .collect()
        });
        let advanced_pass = pass_rate(d, &mut rng, |c, r| {
            c.words()
                .iter()
                .map(|w| advanced.read(w, c.distortion, r))
                .collect()
        });
        // Sanity on the monotone structure as we sweep.
        let _ = rng.gen::<u64>();
        table.row(
            &[f3(d), pct(human_pass), pct(ocr_pass), pct(advanced_pass)],
            &Row {
                distortion: d,
                human_pass,
                ocr_pass,
                advanced_ocr_pass: advanced_pass,
            },
        );
    }
    table.print();
    println!(
        "\npaper reference: humans ≈ {:.0}%+, bots ≪ {:.0}% in the deployable regime",
        paper::HUMAN_CAPTCHA_PASS * 100.0,
        paper::BOT_CAPTCHA_PASS * 100.0
    );
}
