//! Experiment F10 — verified-label rate over a deployment's lifetime.
//!
//! The deployed ESP Game's production curve has a characteristic shape:
//! output per hour climbs as the player base warms up, then bends as the
//! image world saturates — every image carries taboo words for its
//! obvious labels, so each new verified label costs more guesses. We run
//! a 48-hour campaign and bucket verified labels into 2-hour windows,
//! together with cumulative world coverage, to regenerate that curve.

use hc_bench::{f1, pct, seed_from_args, Table};
use hc_games::{EspCampaign, EspCampaignConfig};
use hc_sim::{RateSeries, SimDuration, SimTime};
use serde::Serialize;
use std::collections::HashSet;

const HORIZON_HOURS: u64 = 48;
const WINDOW_HOURS: u64 = 2;

#[derive(Serialize)]
struct Row {
    window_start_hours: f64,
    labels_per_hour: f64,
    cumulative_labels: u64,
    cumulative_coverage: f64,
}

fn main() {
    let seed = seed_from_args();
    let mut config = EspCampaignConfig::small();
    config.players = 100;
    config.world.stimuli = 12_000;
    config.horizon = SimTime::from_secs(HORIZON_HOURS * 3600);
    config.arrival_spread = SimDuration::from_hours(2);

    let world_size = config.world.stimuli;
    let mut campaign = EspCampaign::new(config, seed);
    let report = campaign.run();

    // Bucket promotions by their platform timestamps.
    let mut series = RateSeries::new(SimDuration::from_hours(WINDOW_HOURS));
    for v in campaign.platform().verified_labels() {
        series.record(v.at, 1);
    }

    let mut table = Table::new(
        "F10 — verified labels per hour over a 48h ESP deployment",
        &["t (h)", "labels/h", "cumulative", "coverage"],
    );
    let mut cumulative = 0u64;
    let mut covered: HashSet<hc_core::TaskId> = HashSet::new();
    let mut label_iter = campaign.platform().verified_labels().iter().peekable();
    for (start, count) in series.iter() {
        cumulative += count;
        let window_end = start + SimDuration::from_hours(WINDOW_HOURS);
        while let Some(v) = label_iter.peek() {
            if v.at < window_end {
                covered.insert(v.task);
                label_iter.next();
            } else {
                break;
            }
        }
        let coverage = covered.len() as f64 / world_size as f64;
        let row = Row {
            window_start_hours: start.as_hours_f64(),
            labels_per_hour: count as f64 / WINDOW_HOURS as f64,
            cumulative_labels: cumulative,
            cumulative_coverage: coverage,
        };
        table.row(
            &[
                f1(row.window_start_hours),
                f1(row.labels_per_hour),
                cumulative.to_string(),
                pct(coverage),
            ],
            &row,
        );
    }
    table.print();
    println!(
        "\ncampaign totals: {} live + {} replay sessions, precision {:.3}",
        report.live_sessions,
        report.replay_sessions,
        report.precision_rate()
    );
    println!("expected shape: rate climbs during warm-up, coverage saturates toward 100%, and the marginal label rate bends as taboo lists deepen");
}
