//! Experiment F5 — platform scaling with concurrency.
//!
//! Output-agreement games need *pairs* of simultaneous players. This
//! experiment runs the full event-driven ESP campaign at increasing
//! population sizes and reports pairing wait, the replay-bot fallback
//! share, and verified-label throughput — the queueing story behind the
//! paper's observation that GWAPs live on busy portals (and why the
//! deployed ESP Game shipped a recorded-partner fallback at all).

use hc_bench::{f1, f3, pct, seed_from_args, Table};
use hc_games::{EspCampaign, EspCampaignConfig};
use hc_sim::{SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    players: usize,
    live_sessions: u64,
    replay_sessions: u64,
    replay_share: f64,
    mean_wait_secs: f64,
    labels_per_hour: f64,
    precision: f64,
}

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "F5 — pairing latency, replay fallback and throughput vs population",
        &[
            "players",
            "live",
            "replay",
            "replay share",
            "wait(s)",
            "labels/hh",
            "precision",
        ],
    );

    for players in [4usize, 8, 16, 32, 64, 128] {
        let mut config = EspCampaignConfig::small();
        config.players = players;
        config.horizon = SimTime::from_secs(6 * 3600);
        config.world.stimuli = 600;
        config.arrival_spread = SimDuration::from_mins(45);
        let mut campaign = EspCampaign::new(config, seed);
        let report = campaign.run();
        let row = Row {
            players,
            live_sessions: report.live_sessions,
            replay_sessions: report.replay_sessions,
            replay_share: report.matchmaker.replay_share(),
            mean_wait_secs: report.mean_wait_secs,
            labels_per_hour: report.metrics.throughput_per_human_hour,
            precision: report.precision_rate(),
        };
        table.row(
            &[
                players.to_string(),
                report.live_sessions.to_string(),
                report.replay_sessions.to_string(),
                pct(row.replay_share),
                f1(row.mean_wait_secs),
                f1(row.labels_per_hour),
                f3(row.precision),
            ],
            &row,
        );
    }
    table.print();
    println!("\nexpected shape: replay share and wait fall as the population grows; per-human-hour throughput stabilizes once live pairing dominates");
}
