//! Experiment F5 — platform scaling with concurrency.
//!
//! Output-agreement games need *pairs* of simultaneous players. This
//! experiment runs the full event-driven ESP campaign at increasing
//! population sizes and reports pairing wait, the replay-bot fallback
//! share, and verified-label throughput — the queueing story behind the
//! paper's observation that GWAPs live on busy portals (and why the
//! deployed ESP Game shipped a recorded-partner fallback at all).
//!
//! Grid-based: population cells × seed replications run on the parallel
//! replication pool (`--threads N`; outputs are byte-identical at any
//! thread count). This is the heaviest experiment binary, so it doubles
//! as CI's perf-smoke workload: `--smoke --bench-json` at `--threads 1`
//! and `--threads 4` demonstrates the pool's wall-clock speedup while
//! the determinism diff proves the bytes never moved.

use hc_bench::{f1, f3, pct, run_grid, Cell, RunOpts, Table};
use hc_games::{EspCampaign, EspCampaignConfig};
use hc_sim::{OnlineStats, SimDuration, SimTime};
use serde::Serialize;

#[derive(Serialize)]
struct RepRow {
    players: usize,
    rep: usize,
    live_sessions: u64,
    replay_sessions: u64,
    replay_share: f64,
    mean_wait_secs: f64,
    labels_per_hour: f64,
    precision: f64,
}

#[derive(Serialize)]
struct CellRow {
    players: usize,
    reps: usize,
    live_sessions_mean: f64,
    replay_sessions_mean: f64,
    replay_share_mean: f64,
    mean_wait_secs: f64,
    labels_per_hour_mean: f64,
    precision_mean: f64,
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut stats = OnlineStats::new();
    for v in values {
        stats.push(v);
    }
    stats.mean()
}

fn main() {
    let opts = RunOpts::from_args();
    let reps = opts.reps_or(3, 2);
    // The smoke grid drops the trivial 4-player cell and the heavy
    // 128-player tail; CI's perf-smoke job raises `--reps` on top of it
    // to get a task population large enough for stable speedup numbers.
    let populations: &[usize] = if opts.smoke {
        &[8, 16, 32, 64]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let cells: Vec<Cell<usize>> = populations
        .iter()
        .map(|&p| Cell::new(format!("players={p}"), p))
        .collect();

    let outcome = run_grid(
        &opts,
        "exp_f5_throughput_scaling",
        cells,
        reps,
        |&players, ctx| {
            let mut config = EspCampaignConfig::small();
            config.players = players;
            config.horizon = SimTime::from_secs(24 * 3600);
            config.world.stimuli = 600;
            config.arrival_spread = SimDuration::from_mins(45);
            let mut campaign = EspCampaign::new(config, ctx.seed);
            let report = campaign.run();
            RepRow {
                players,
                rep: ctx.rep,
                live_sessions: report.live_sessions,
                replay_sessions: report.replay_sessions,
                replay_share: report.matchmaker.replay_share(),
                mean_wait_secs: report.mean_wait_secs,
                labels_per_hour: report.metrics.throughput_per_human_hour,
                precision: report.precision_rate(),
            }
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("exp_f5_throughput_scaling: {e}");
        std::process::exit(1);
    });

    let mut table = Table::new(
        "F5 — pairing latency, replay fallback and throughput vs population",
        &[
            "players",
            "live",
            "replay",
            "replay share",
            "wait(s)",
            "labels/hh",
            "precision",
        ],
    );
    for cell in &outcome.cells {
        let rows = &cell.reps;
        let Some(first) = rows.first() else { continue };
        let row = CellRow {
            players: first.players,
            reps: rows.len(),
            live_sessions_mean: mean(rows.iter().map(|r| r.live_sessions as f64)),
            replay_sessions_mean: mean(rows.iter().map(|r| r.replay_sessions as f64)),
            replay_share_mean: mean(rows.iter().map(|r| r.replay_share)),
            mean_wait_secs: mean(rows.iter().map(|r| r.mean_wait_secs)),
            labels_per_hour_mean: mean(rows.iter().map(|r| r.labels_per_hour)),
            precision_mean: mean(rows.iter().map(|r| r.precision)),
        };
        table.row(
            &[
                row.players.to_string(),
                f1(row.live_sessions_mean),
                f1(row.replay_sessions_mean),
                pct(row.replay_share_mean),
                f1(row.mean_wait_secs),
                f1(row.labels_per_hour_mean),
                f3(row.precision_mean),
            ],
            &row,
        );
    }
    table.print();
    // Timing is machine-dependent; stderr keeps `results/*.txt`
    // (stdout captures) bit-for-bit reproducible.
    eprintln!(
        "{} tasks ({} cells x {} reps) on {} threads: {:.2}s wall",
        outcome.cells.len() * outcome.reps,
        outcome.cells.len(),
        outcome.reps,
        outcome.threads,
        outcome.timing.total_wall_secs
    );
    println!("\nexpected shape: replay share and wait fall as the population grows; per-human-hour throughput stabilizes once live pairing dominates");
    outcome.write_bench_json(&opts);
    outcome.write_trace(&opts);
}
