//! Experiment F6 — expected contribution vs ALP (enjoyability).
//!
//! The paper's central design argument: at fixed throughput, a game's
//! total output scales with how long people *choose* to play — expected
//! contribution = throughput × ALP. We sweep the engagement model's churn
//! and session-length parameters, reporting analytic and sampled ALP and
//! the implied expected contribution at the ESP Game's measured
//! throughput.

use hc_bench::{f1, paper, seed_from_args, Table};
use hc_crowd::EngagementModel;
use hc_sim::RngFactory;
use serde::Serialize;

const LIFETIMES: usize = 20_000;

#[derive(Serialize)]
struct Row {
    median_session_mins: f64,
    churn_rate: f64,
    alp_analytic_mins: f64,
    alp_sampled_mins: f64,
    expected_contribution_at_esp_throughput: f64,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "F6 — ALP sensitivity: expected contribution vs engagement",
        &[
            "median session(min)",
            "churn",
            "ALP analytic(min)",
            "ALP sampled(min)",
            "E[contrib] @233/hh",
        ],
    );

    for (mi, median) in [3.0f64, 6.5, 12.0].iter().enumerate() {
        for (ci, churn) in [0.05f64, 0.1, 0.2, 0.4].iter().enumerate() {
            let model = EngagementModel::new(median.ln(), 0.82, *churn).expect("valid model");
            let mut rng = factory.indexed_stream("f6", (mi * 10 + ci) as u64);
            let mut total_hours = 0.0;
            for _ in 0..LIFETIMES {
                total_hours += model.sample_lifetime(&mut rng).total_play().as_hours_f64();
            }
            let sampled = total_hours / LIFETIMES as f64;
            let analytic = model.expected_alp_hours();
            let row = Row {
                median_session_mins: *median,
                churn_rate: *churn,
                alp_analytic_mins: analytic * 60.0,
                alp_sampled_mins: sampled * 60.0,
                expected_contribution_at_esp_throughput: paper::ESP_THROUGHPUT * sampled,
            };
            table.row(
                &[
                    f1(*median),
                    f1(*churn * 100.0) + "%",
                    f1(analytic * 60.0),
                    f1(sampled * 60.0),
                    f1(row.expected_contribution_at_esp_throughput),
                ],
                &row,
            );
        }
    }
    table.print();
    println!(
        "\npaper reference: ESP ALP ≈ {:.0} min ⇒ E[contribution] ≈ {:.0} labels per recruit",
        paper::ESP_ALP_HOURS * 60.0,
        paper::ESP_EXPECTED_CONTRIBUTION
    );
}
