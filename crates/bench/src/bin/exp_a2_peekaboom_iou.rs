//! Ablation A2 — Peekaboom localization quality vs Boom skill.
//!
//! Peekaboom's product is object *locations*: the union of reveals that
//! let Peek guess the word. Location quality (IoU against the true box)
//! depends on how precisely Boom clicks — this ablation sweeps Boom's
//! skill and reports localization IoU, guess success, and reveals needed,
//! regenerating the quality/efficiency trade the deployed game tuned its
//! reveal-size around.

use hc_bench::{f1, f3, seed_from_args, Table};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, PopulationBuilder};
use hc_games::{peekaboom::play_peekaboom_session, PeekaboomWorld, WorldConfig};
use hc_sim::RngFactory;
use serde::Serialize;

const SESSIONS: u64 = 40;

#[derive(Serialize)]
struct Row {
    boom_skill: f64,
    mean_iou: f64,
    localizations: usize,
    match_rate: f64,
    secs_per_round: f64,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "A2 — Peekaboom localization IoU vs Boom skill",
        &[
            "boom skill",
            "mean IoU",
            "localized",
            "match rate",
            "secs/round",
        ],
    );

    for (si, skill) in [0.1f64, 0.3, 0.5, 0.7, 0.9].iter().enumerate() {
        let mut rng = factory.indexed_stream("a2", si as u64);
        let mut cfg = WorldConfig::standard();
        cfg.stimuli = 1_000;
        let world = PeekaboomWorld::generate(&cfg, &mut rng);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .expect("valid config");
        world.register_tasks(&mut platform);
        let mut pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .skill_range(*skill, (*skill + 0.01).min(1.0))
            .build(&mut rng);
        platform.register_player();
        platform.register_player();

        let mut ious = Vec::new();
        let mut matched = 0usize;
        let mut rounds = 0usize;
        let mut secs = 0.0;
        for s in 0..SESSIONS {
            let (t, out) = play_peekaboom_session(
                &mut platform,
                &world,
                &mut pop,
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(s),
                SimTime::from_secs(s * 1_000),
                &mut rng,
            );
            matched += t.matched_count();
            rounds += t.rounds();
            secs += t.duration().as_secs_f64();
            ious.extend(out.locations.iter().map(|(_, _, iou)| *iou));
        }
        let mean_iou = if ious.is_empty() {
            0.0
        } else {
            ious.iter().sum::<f64>() / ious.len() as f64
        };
        let row = Row {
            boom_skill: *skill,
            mean_iou,
            localizations: ious.len(),
            match_rate: matched as f64 / rounds.max(1) as f64,
            secs_per_round: secs / rounds.max(1) as f64,
        };
        table.row(
            &[
                f1(*skill),
                f3(mean_iou),
                ious.len().to_string(),
                f3(row.match_rate),
                f1(row.secs_per_round),
            ],
            &row,
        );
    }
    table.print();
    println!("\nexpected shape: localization IoU and guess success both rise with Boom's skill — precise reveals both locate the object better AND let Peek guess faster");
}
