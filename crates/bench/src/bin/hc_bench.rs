//! `hc-bench` — bench-JSON tooling for CI.
//!
//! ```text
//! hc-bench compare --determinism A.json B.json
//! hc-bench compare --baseline BASE.json --current CUR.json \
//!                  [--max-slowdown X] [--min-speedup Y] [--max-p99-slowdown Z]
//! hc-bench compare --sweep-threads 1,2,4,8 --out OUT.json -- CMD [ARGS...]
//! hc-bench trace summary TRACE.jsonl
//! hc-bench trace critical-path TRACE.jsonl [--top-frames N] [--json]
//! hc-bench trace flame TRACE.jsonl [--top N]
//! hc-bench trace timeseries TRACE.jsonl [--window US] [--json]
//! hc-bench trace derive TRACE.jsonl [OUT.json]
//! hc-bench trace diff BASELINE CURRENT [--max-rel X] [--json]
//! hc-bench trace export-chrome TRACE.jsonl OUT.json
//! ```
//!
//! * `--determinism` verifies that the deterministic sections of two
//!   bench JSONs (same grid at different `--threads`) are identical;
//! * `--baseline/--current` compares timing: `--max-slowdown X` fails
//!   when the calibration-normalized current run is more than `X`×
//!   slower than the baseline (machine-portable, for committed
//!   baselines); `--min-speedup Y` fails when the raw wall-clock
//!   speedup of current over baseline is below `Y` (same-machine, for
//!   `--threads 1` vs `--threads N` runs); `--max-p99-slowdown Z` fails
//!   when the calibration-normalized p99 request latency (from the
//!   `hc-load` harness's `timing.latency` section) is more than `Z`×
//!   the baseline's;
//! * `--sweep-threads` runs the *same* experiment command once per
//!   thread count (appending `--threads N --bench-json TMP` to `CMD`),
//!   verifies every run's deterministic sections agree, and writes one
//!   merged JSON whose `sweep` array holds per-thread-count timing and
//!   the speedup over the first count — the scaling curve in one file;
//! * `trace summary` prints the sim-time span/counter summary of a
//!   recorded trace (from an experiment's `--trace PATH`);
//! * `trace critical-path` prints the longest sim-time chain through
//!   the span tree with per-target self-time attribution;
//!   `--top-frames N` lists only the N hottest steps by self time,
//!   `--json` emits the deterministic `hc-trace-critical-path-v1`
//!   document CI parses for the hub-fraction record;
//! * `trace flame` prints flamegraph folded stacks (or, with
//!   `--top N`, the N hottest frames by self time);
//! * `trace timeseries` prints windowed counter/gauge/histogram
//!   aggregates over sim-time (text or `--json`);
//! * `trace derive` writes the derived-metrics summary JSON — the
//!   deterministic document the CI trace gate freezes and ratchets;
//! * `trace diff` compares two derived summaries (either summary JSONs
//!   or raw traces, sniffed) against a relative threshold and exits 1
//!   on regression — the trace gate's teeth;
//! * `trace export-chrome` converts a trace to Chrome trace-event JSON
//!   loadable in Perfetto or `chrome://tracing`.
//!
//! The analysis subcommands stream the JSONL input record by record, so
//! million-record traces never materialize in memory.
//!
//! Exit status: 0 pass, 1 check failed, 2 usage/IO error.

use hc_bench::compare::{
    determinism_diff, load_bench_json, merge_sweep, p99_compare, perf_compare,
};
use hc_bench::trace::{derive_summary, load_summary, load_trace, stream_trace, summarize};
use hc_obs::analyze::{self, SpanTree, TimeSeriesAcc, TreeBuilder};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: hc-bench compare --determinism A B
       hc-bench compare --baseline BASE --current CUR [--max-slowdown X] [--min-speedup Y] [--max-p99-slowdown Z]
       hc-bench compare --sweep-threads 1,2,4,8 --out OUT -- CMD [ARGS...]
       hc-bench trace summary TRACE
       hc-bench trace critical-path TRACE [--top-frames N] [--json]
       hc-bench trace flame TRACE [--top N]
       hc-bench trace timeseries TRACE [--window US] [--json]
       hc-bench trace derive TRACE [OUT]
       hc-bench trace diff BASELINE CURRENT [--max-rel X] [--json]
       hc-bench trace export-chrome TRACE OUT";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(e: &str) -> ExitCode {
    eprintln!("hc-bench: {e}");
    ExitCode::from(2)
}

/// Streams a trace file into its span tree.
fn build_tree(path: &Path) -> Result<SpanTree, String> {
    let mut builder = TreeBuilder::new();
    stream_trace(path, |r| builder.add(r))?;
    Ok(builder.finish())
}

fn trace_command(args: &[String]) -> ExitCode {
    let Some((cmd, rest)) = args.split_first() else {
        return usage_error("expected a trace subcommand");
    };
    match (cmd.as_str(), rest) {
        ("summary", [path]) => match load_trace(Path::new(path)) {
            Ok(trace) => {
                print!("{}", summarize(&trace));
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e),
        },
        ("critical-path", [path, flags @ ..]) => {
            let mut top: Option<usize> = None;
            let mut json = false;
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--top-frames" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                        Some(n) if n > 0 => top = Some(n),
                        _ => return usage_error("--top-frames requires a positive count"),
                    },
                    "--json" => json = true,
                    other => return usage_error(&format!("unknown critical-path flag `{other}`")),
                }
            }
            match build_tree(Path::new(path)) {
                Ok(tree) => {
                    if json {
                        print!("{}", analyze::critical_path_json(&tree, top));
                    } else {
                        match top {
                            Some(n) => print!("{}", analyze::render_critical_path_top(&tree, n)),
                            None => print!("{}", analyze::render_critical_path(&tree)),
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => io_error(&e),
            }
        }
        ("flame", [path, flags @ ..]) => {
            let top = match flags {
                [] => None,
                [flag, n] if flag == "--top" => match n.parse::<usize>() {
                    Ok(n) if n > 0 => Some(n),
                    _ => return usage_error("--top requires a positive count"),
                },
                _ => return usage_error("expected `trace flame TRACE [--top N]`"),
            };
            match build_tree(Path::new(path)) {
                Ok(tree) => {
                    match top {
                        Some(n) => print!("{}", analyze::render_flame_top(&tree, n)),
                        None => print!("{}", analyze::render_folded(&tree)),
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => io_error(&e),
            }
        }
        ("timeseries", [path, flags @ ..]) => {
            let mut window_us = 60_000_000u64;
            let mut json = false;
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--window" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                        Some(w) if w > 0 => window_us = w,
                        _ => return usage_error("--window requires a positive sim-µs length"),
                    },
                    "--json" => json = true,
                    other => return usage_error(&format!("unknown timeseries flag `{other}`")),
                }
            }
            let mut acc = TimeSeriesAcc::new(window_us);
            match stream_trace(Path::new(path), |r| acc.add(r)) {
                Ok(_) => {
                    if json {
                        print!("{}", acc.render_json());
                    } else {
                        print!("{}", acc.render_text());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => io_error(&e),
            }
        }
        ("derive", [path, out @ ..]) if out.len() <= 1 => match derive_summary(Path::new(path)) {
            Ok(derived) => {
                let doc = derived.to_json();
                match out.first() {
                    Some(out) => {
                        if let Err(e) = std::fs::write(out, doc) {
                            return io_error(&format!("write {out}: {e}"));
                        }
                        println!("derived summary written to {out}");
                    }
                    None => print!("{doc}"),
                }
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e),
        },
        ("diff", [base, cur, flags @ ..]) => {
            let mut max_rel = 0.0f64;
            let mut json = false;
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--max-rel" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(x) if x >= 0.0 => max_rel = x,
                        _ => return usage_error("--max-rel requires a non-negative number"),
                    },
                    "--json" => json = true,
                    other => return usage_error(&format!("unknown diff flag `{other}`")),
                }
            }
            let (baseline, current) =
                match (load_summary(Path::new(base)), load_summary(Path::new(cur))) {
                    (Ok(a), Ok(b)) => (a, b),
                    (Err(e), _) | (_, Err(e)) => return io_error(&e),
                };
            let report = analyze::diff(&baseline, &current, max_rel);
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        ("export-chrome", [input, output]) => {
            let trace = match load_trace(Path::new(input)) {
                Ok(t) => t,
                Err(e) => return io_error(&e),
            };
            let rendered = hc_obs::sink::chrome::render(&trace);
            if let Err(e) = std::fs::write(output, rendered) {
                return io_error(&format!("write {output}: {e}"));
            }
            println!("chrome trace written to {output}");
            ExitCode::SUCCESS
        }
        _ => usage_error("unknown trace subcommand or arguments"),
    }
}

/// Runs `command` once per thread count, appending
/// `--threads N --bench-json TMP`, and merges the per-run JSONs.
fn sweep_threads(counts: &[usize], out: &Path, command: &[String]) -> ExitCode {
    let Some((program, base_args)) = command.split_first() else {
        return usage_error("--sweep-threads needs a command after `--`");
    };
    let mut runs = Vec::with_capacity(counts.len());
    for &threads in counts {
        let tmp = out.with_extension(format!("t{threads}.tmp.json"));
        eprintln!("sweep: {program} --threads {threads}");
        let status = std::process::Command::new(program)
            .args(base_args)
            .arg("--threads")
            .arg(threads.to_string())
            .arg("--bench-json")
            .arg(&tmp)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("hc-bench: `{program}` at --threads {threads} exited with {s}");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("hc-bench: spawn `{program}`: {e}");
                return ExitCode::from(2);
            }
        }
        let loaded = load_bench_json(&tmp);
        let _ = std::fs::remove_file(&tmp);
        match loaded {
            Ok(v) => runs.push((threads, v)),
            Err(e) => {
                eprintln!("hc-bench: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let merged = match merge_sweep(&runs) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("SWEEP FAILED: {e}");
            return ExitCode::from(1);
        }
    };
    if let Err(e) = std::fs::write(out, merged.to_string() + "\n") {
        eprintln!("hc-bench: write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    for (threads, run) in &runs {
        let wall = run
            .get("timing")
            .and_then(|t| t.get("total_wall_secs"))
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(f64::NAN);
        println!("threads={threads}: {wall:.3}s wall");
    }
    println!(
        "sweep OK: {} thread counts, every result byte identical; merged JSON written to {}",
        runs.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

fn parse_thread_counts(raw: &str) -> Option<Vec<usize>> {
    let counts: Vec<usize> = raw
        .split(',')
        .map(|p| p.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .ok()?;
    (!counts.is_empty() && counts.iter().all(|&c| c >= 1)).then_some(counts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return trace_command(&args[1..]);
    }
    if args.first().map(String::as_str) != Some("compare") {
        return usage_error("expected the `compare` or `trace` subcommand");
    }

    let mut determinism: Vec<PathBuf> = Vec::new();
    let mut sweep_counts: Option<Vec<usize>> = None;
    let mut out: Option<PathBuf> = None;
    let mut command: Vec<String> = Vec::new();
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut max_slowdown: Option<f64> = None;
    let mut min_speedup: Option<f64> = None;
    let mut max_p99_slowdown: Option<f64> = None;

    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sweep-threads" => {
                match it.next().map(String::as_str).and_then(parse_thread_counts) {
                    Some(c) => sweep_counts = Some(c),
                    None => {
                        return usage_error("--sweep-threads requires a comma-separated count list")
                    }
                }
            }
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage_error("--out requires a path"),
            },
            "--" => {
                command = it.cloned().collect();
                break;
            }
            "--determinism" => {
                let (Some(a), Some(b)) = (it.next(), it.next()) else {
                    return usage_error("--determinism requires two paths");
                };
                determinism = vec![PathBuf::from(a), PathBuf::from(b)];
            }
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage_error("--baseline requires a path"),
            },
            "--current" => match it.next() {
                Some(p) => current = Some(PathBuf::from(p)),
                None => return usage_error("--current requires a path"),
            },
            "--max-slowdown" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) => max_slowdown = Some(x),
                None => return usage_error("--max-slowdown requires a number"),
            },
            "--min-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_speedup = Some(x),
                None => return usage_error("--min-speedup requires a number"),
            },
            "--max-p99-slowdown" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) => max_p99_slowdown = Some(x),
                None => return usage_error("--max-p99-slowdown requires a number"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(counts) = sweep_counts {
        let Some(out) = out else {
            return usage_error("--sweep-threads requires --out PATH");
        };
        return sweep_threads(&counts, &out, &command);
    }

    if let [a, b] = determinism.as_slice() {
        let (va, vb) = match (load_bench_json(a), load_bench_json(b)) {
            (Ok(va), Ok(vb)) => (va, vb),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("hc-bench: {e}");
                return ExitCode::from(2);
            }
        };
        return match determinism_diff(&va, &vb) {
            Ok(()) => {
                println!(
                    "determinism OK: {} and {} agree on every result byte",
                    a.display(),
                    b.display()
                );
                ExitCode::SUCCESS
            }
            Err(diff) => {
                eprintln!("DETERMINISM BROKEN: {diff}");
                ExitCode::from(1)
            }
        };
    }

    let (Some(base_path), Some(cur_path)) = (baseline, current) else {
        return usage_error("need either --determinism A B or --baseline/--current");
    };
    let (base, cur) = match (load_bench_json(&base_path), load_bench_json(&cur_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("hc-bench: {e}");
            return ExitCode::from(2);
        }
    };
    let perf = match perf_compare(&base, &cur) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("hc-bench: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "baseline {:.3}s ({:.1} cal units)   current {:.3}s ({:.1} cal units)",
        perf.baseline_secs, perf.baseline_norm, perf.current_secs, perf.current_norm
    );
    println!(
        "normalized slowdown {:.3}x   raw speedup {:.2}x",
        perf.slowdown, perf.speedup
    );
    println!(
        "JSON: {{\"baseline_secs\":{},\"current_secs\":{},\"baseline_norm\":{},\"current_norm\":{},\"slowdown\":{},\"speedup\":{}}}",
        perf.baseline_secs,
        perf.current_secs,
        perf.baseline_norm,
        perf.current_norm,
        perf.slowdown,
        perf.speedup
    );

    let mut failed = false;
    if let Some(limit) = max_slowdown {
        if perf.slowdown > limit {
            eprintln!(
                "PERF REGRESSION: normalized slowdown {:.3}x exceeds the {limit}x budget",
                perf.slowdown
            );
            failed = true;
        } else {
            println!("slowdown within the {limit}x budget");
        }
    }
    if let Some(floor) = min_speedup {
        if perf.speedup < floor {
            eprintln!(
                "SPEEDUP TOO LOW: {:.2}x is below the required {floor}x",
                perf.speedup
            );
            failed = true;
        } else {
            println!("speedup meets the {floor}x floor");
        }
    }
    if let Some(limit) = max_p99_slowdown {
        match p99_compare(&base, &cur) {
            Ok(slowdown) => {
                if slowdown > limit {
                    eprintln!(
                        "P99 LATENCY REGRESSION: normalized p99 slowdown {slowdown:.3}x exceeds the {limit}x budget"
                    );
                    failed = true;
                } else {
                    println!("p99 slowdown {slowdown:.3}x within the {limit}x budget");
                }
            }
            Err(e) => {
                eprintln!("hc-bench: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
