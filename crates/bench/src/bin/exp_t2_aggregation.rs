//! Experiment T2 — aggregation quality vs redundancy.
//!
//! Compares the GWAP agreement-threshold rule against the classical
//! aggregation baselines (majority vote, gold-weighted vote, Dawid–Skene
//! EM) on a synthetic crowd with noisy and adversarial workers, sweeping
//! redundancy k ∈ {1, 3, 5, 7, 9}. The expected shape: majority improves
//! with k; Dawid–Skene dominates once adversaries are identifiable;
//! agreement-thresholding trades coverage for near-perfect precision —
//! which is exactly the trade the deployed GWAPs chose.

use hc_aggregate::prelude::*;
use hc_bench::{f3, seed_from_args, Table};
use hc_sim::RngFactory;
use serde::Serialize;

const TASKS: usize = 400;
const CLASSES: usize = 4;
const WORKERS: usize = 60;
const WORKER_ACCURACY: f64 = 0.72;
const ADVERSARIAL_SHARE: f64 = 0.15;

#[derive(Serialize)]
struct Row {
    redundancy: usize,
    method: String,
    accuracy: f64,
    coverage: f64,
    yield_rate: f64,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "T2 — aggregation quality vs redundancy (72% workers, 15% adversarial)",
        &["k", "method", "accuracy", "coverage", "yield"],
    );

    for k in [1usize, 3, 5, 7, 9] {
        let mut rng = factory.indexed_stream("t2", k as u64);
        let world = SyntheticCrowd::new(TASKS, CLASSES, WORKERS, WORKER_ACCURACY)
            .with_adversarial_share(ADVERSARIAL_SHARE)
            .generate(k, &mut rng);

        // Gold-derived weights for the weighted vote: each worker's
        // empirical accuracy on a small gold sample (first 40 tasks).
        let mut hits = vec![0.0f64; world.matrix.n_workers()];
        let mut seen = vec![0.0f64; world.matrix.n_workers()];
        for a in world.matrix.iter().filter(|a| a.task < 40) {
            seen[a.worker] += 1.0;
            if a.class == world.gold[a.task] {
                hits[a.worker] += 1.0;
            }
        }
        let weights: Vec<f64> = hits
            .iter()
            .zip(&seen)
            .map(|(h, s)| if *s > 0.0 { h / s } else { 0.5 })
            .collect();

        let methods: Vec<(String, Vec<Option<usize>>)> = vec![
            ("majority".into(), MajorityVote.aggregate(&world.matrix)),
            (
                "weighted(gold)".into(),
                WeightedVote::new(weights, 0.5).aggregate(&world.matrix),
            ),
            (
                format!("agree>={}", k.div_ceil(2) + 1),
                AgreementThreshold::new(k.div_ceil(2) + 1).aggregate(&world.matrix),
            ),
            (
                "dawid-skene".into(),
                DawidSkene::default().aggregate(&world.matrix),
            ),
        ];
        for (name, estimates) in methods {
            let q = score(&estimates, &world.gold);
            table.row(
                &[
                    k.to_string(),
                    name.clone(),
                    f3(q.accuracy),
                    f3(q.coverage),
                    f3(q.yield_rate),
                ],
                &Row {
                    redundancy: k,
                    method: name,
                    accuracy: q.accuracy,
                    coverage: q.coverage,
                    yield_rate: q.yield_rate,
                },
            );
        }
    }
    table.print();
}
