//! Experiment F8 — input-agreement robustness vs clip confusability.
//!
//! TagATune's verdict mechanism only verifies tags when players can tell
//! same from different through descriptions alone. As clips become more
//! confusable (shared vocabulary concepts), wrong "same" verdicts rise
//! and the validated-tag yield falls — the input-agreement analogue of
//! ESP's taboo saturation. We sweep the world's vocabulary size (smaller
//! vocabulary ⇒ more support overlap between random clips) and report
//! verdict success and tag yield.

use hc_bench::{f1, f3, seed_from_args, Table};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, PopulationBuilder};
use hc_games::{tagatune::play_tagatune_session, TagATuneWorld, WorldConfig};
use hc_sim::RngFactory;
use serde::Serialize;

const PLAYERS: usize = 20;
const SESSIONS: u64 = 120;

#[derive(Serialize)]
struct Row {
    vocabulary: usize,
    mean_overlap: f64,
    verdict_success: f64,
    tags_per_session: f64,
    tag_precision: f64,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "F8 — TagATune verdict success vs clip confusability",
        &[
            "vocab",
            "overlap",
            "verdict ok",
            "tags/session",
            "tag precision",
        ],
    );

    for vocab in [30usize, 100, 400, 2_000] {
        let mut rng = factory.indexed_stream("f8", vocab as u64);
        let mut cfg = WorldConfig::standard();
        cfg.stimuli = 300;
        cfg.vocabulary = vocab;
        let world = TagATuneWorld::generate(&cfg, &mut rng);

        // Mean pairwise support overlap over a sample of clip pairs.
        let mean_overlap = {
            let mut total = 0.0;
            let n = 300;
            for i in 0..n {
                let a = world.truth_for_task(TaskId::new(i % 300)).unwrap();
                let b = world
                    .truth_for_task(TaskId::new((i * 7 + 13) % 300))
                    .unwrap();
                total += a.support_overlap(b);
            }
            total / n as f64
        };

        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .expect("valid config");
        world.register_tasks(&mut platform);
        let mut pop = PopulationBuilder::new(PLAYERS)
            .mix(ArchetypeMix::all_honest())
            .skill_range(0.85, 0.95)
            .build(&mut rng);
        for _ in 0..PLAYERS {
            platform.register_player();
        }
        let mut matched = 0usize;
        let mut rounds = 0usize;
        for s in 0..SESSIONS {
            let a = PlayerId::new((2 * s) % PLAYERS as u64);
            let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
            if a == b {
                b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
            }
            let t = play_tagatune_session(
                &mut platform,
                &world,
                &mut pop,
                a,
                b,
                SessionId::new(s),
                SimTime::from_secs(s * 1_000),
                0.5,
                &mut rng,
            );
            matched += t.matched_count();
            rounds += t.rounds();
        }
        let verified = platform.verified_labels();
        let correct = verified
            .iter()
            .filter(|v| world.is_correct(v.task, &v.label))
            .count();
        let row = Row {
            vocabulary: vocab,
            mean_overlap,
            verdict_success: matched as f64 / rounds.max(1) as f64,
            tags_per_session: verified.len() as f64 / SESSIONS as f64,
            tag_precision: if verified.is_empty() {
                1.0
            } else {
                correct as f64 / verified.len() as f64
            },
        };
        table.row(
            &[
                vocab.to_string(),
                f3(mean_overlap),
                f3(row.verdict_success),
                f1(row.tags_per_session),
                f3(row.tag_precision),
            ],
            &row,
        );
    }
    table.print();
    println!("\nexpected shape: verdict success and tag yield rise as the vocabulary grows (clips become distinguishable)");
}
