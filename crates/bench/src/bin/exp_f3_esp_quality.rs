//! Experiment F3 — ESP label precision vs verification strength.
//!
//! The CHI'04 claim the DAC'09 paper repeats: ≥ 85% of ESP labels are
//! judged useful. We regenerate the quality story with a mixed crowd
//! (honest + noisy + random) and sweep the two verification levers: the
//! k-agreement promotion threshold and the taboo-word mechanism (a real
//! platform flag — with taboo off, pairs keep re-verifying the same
//! obvious label, so coverage depth per image collapses even though raw
//! precision stays similar; with taboo on, each image accumulates many
//! *distinct* correct labels, which is the ESP Game's actual product).

use hc_bench::{f1, f3, paper, seed_from_args, Table};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, Behavior, PopulationBuilder};
use hc_games::{esp::play_esp_session, EspWorld, SessionParams, WorldConfig};
use hc_sim::RngFactory;
use serde::Serialize;

const PLAYERS: usize = 40;
const SESSIONS: u64 = 250;

#[derive(Serialize)]
struct Row {
    agreement_k: u32,
    taboo_enabled: bool,
    precision: f64,
    verified: usize,
    distinct_labels_per_task: f64,
    labels_per_human_hour: f64,
}

fn crowd_mix() -> ArchetypeMix {
    ArchetypeMix::custom()
        .with(Behavior::Honest, 0.6)
        .with(Behavior::Noisy { error_rate: 0.25 }, 0.3)
        .with(Behavior::Random, 0.1)
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "F3 — ESP label precision vs k-agreement and taboo words",
        &[
            "k",
            "taboo",
            "precision",
            "verified",
            "labels/task",
            "labels/hh",
        ],
    );

    let mut world_cfg = WorldConfig::standard();
    world_cfg.stimuli = 120; // small world => tasks are revisited, taboo matters

    for k in [1u32, 2, 3] {
        for taboo in [true, false] {
            let mut rng = factory.indexed_stream("f3", u64::from(k) * 2 + u64::from(taboo));
            let world = EspWorld::generate(&world_cfg, &mut rng);
            let mut platform = Platform::new(PlatformConfig {
                agreement_threshold: k,
                taboo_words_enabled: taboo,
                gold_injection_rate: 0.0,
                ..PlatformConfig::default()
            })
            .expect("valid config");
            world.register_tasks(&mut platform);
            let mut pop = PopulationBuilder::new(PLAYERS)
                .mix(crowd_mix())
                .build(&mut rng);
            for _ in 0..PLAYERS {
                platform.register_player();
            }
            for s in 0..SESSIONS {
                let a = PlayerId::new((2 * s) % PLAYERS as u64);
                let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
                if a == b {
                    b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
                }
                play_esp_session(
                    &mut platform,
                    &world,
                    &mut pop,
                    SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 1_000)),
                    &mut rng,
                );
            }
            let (correct, total) = world.verified_precision(&platform);
            let precision = if total == 0 {
                1.0
            } else {
                correct as f64 / total as f64
            };
            let distinct: f64 = {
                let mut per_task = std::collections::HashMap::new();
                for v in platform.verified_labels() {
                    per_task
                        .entry(v.task)
                        .or_insert_with(std::collections::HashSet::new)
                        .insert(v.label.clone());
                }
                if per_task.is_empty() {
                    0.0
                } else {
                    per_task.values().map(|s| s.len() as f64).sum::<f64>() / per_task.len() as f64
                }
            };
            let hours = platform.metrics().total_human_hours;
            let lhh = if hours > 0.0 {
                total as f64 / hours
            } else {
                0.0
            };
            table.row(
                &[
                    k.to_string(),
                    taboo.to_string(),
                    f3(precision),
                    total.to_string(),
                    f1(distinct),
                    f1(lhh),
                ],
                &Row {
                    agreement_k: k,
                    taboo_enabled: taboo,
                    precision,
                    verified: total,
                    distinct_labels_per_task: distinct,
                    labels_per_human_hour: lhh,
                },
            );
        }
    }
    table.print();
    println!(
        "\npaper reference: ≥ {:.0}% of ESP labels judged useful",
        paper::ESP_LABEL_PRECISION * 100.0
    );
}
