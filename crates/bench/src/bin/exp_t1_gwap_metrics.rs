//! Experiment T1 — the GWAP metrics table.
//!
//! Regenerates the throughput / ALP / expected-contribution comparison
//! across the surveyed games (CACM'08 Table 1, summarized by the DAC'09
//! paper). Throughput is **measured** from simulated sessions; ALP comes
//! from each game's calibrated engagement model (enjoyability is an input
//! of the simulation, not something a simulator can discover); expected
//! contribution is their product, as the paper defines it.

use hc_bench::{f1, paper, seed_from_args, Table};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, EngagementModel, Population, PopulationBuilder};
use hc_games::{
    matchin::{play_matchin_session, BradleyTerryRanking},
    params::SessionParams,
    peekaboom::play_peekaboom_session,
    tagatune::play_tagatune_session,
    verbosity::play_verbosity_session,
    EspWorld, MatchinWorld, PeekaboomWorld, TagATuneWorld, VerbosityWorld, WorldConfig,
};
use hc_sim::{RngFactory, SimRng};
use serde::Serialize;

const PLAYERS: usize = 30;
const SESSIONS: u64 = 150;

#[derive(Serialize)]
struct Row {
    game: String,
    template: String,
    throughput_per_human_hour: f64,
    alp_minutes: f64,
    expected_contribution: f64,
    sessions: u64,
    outputs: u64,
}

fn fresh_platform(players: usize) -> Platform {
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    for _ in 0..players {
        platform.register_player();
    }
    platform
}

fn population(rng: &mut SimRng) -> Population {
    PopulationBuilder::new(PLAYERS)
        .mix(ArchetypeMix::realistic())
        .build(rng)
}

/// Runs `SESSIONS` sessions of one game via the provided session driver;
/// returns `(outputs, human_hours)`.
fn run_game<F>(
    platform: &mut Platform,
    pop: &mut Population,
    rng: &mut SimRng,
    mut drive: F,
) -> (u64, f64)
where
    F: FnMut(
        &mut Platform,
        &mut Population,
        PlayerId,
        PlayerId,
        SessionId,
        SimTime,
        &mut SimRng,
    ) -> SessionTranscript,
{
    let mut outputs = 0u64;
    for s in 0..SESSIONS {
        let a = PlayerId::new((2 * s) % PLAYERS as u64);
        let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
        if a == b {
            b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
        }
        let start = SimTime::from_secs(s * 1_000);
        let t = drive(platform, pop, a, b, SessionId::new(s), start, rng);
        outputs += t.candidate_outputs();
    }
    (outputs, platform.metrics().total_human_hours)
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "T1 — GWAP metrics (throughput, ALP, expected contribution)",
        &[
            "game",
            "template",
            "thr/hh",
            "ALP(min)",
            "E[contrib]",
            "outputs",
        ],
    );

    // Per-game engagement calibrations (mean sitting minutes via the
    // log-normal, churn via the geometric). ESP matches the published
    // 91-minute ALP; the others are plausible relative enjoyabilities.
    let engagement = |median_min: f64, sigma: f64, churn: f64| {
        EngagementModel::new(median_min.ln(), sigma, churn).expect("valid engagement")
    };
    let cfg = WorldConfig::standard();

    // ---- ESP ----
    {
        let mut rng = factory.stream("esp");
        let world = EspWorld::generate(&cfg, &mut rng);
        let mut platform = fresh_platform(PLAYERS);
        world.register_tasks(&mut platform);
        let mut pop = population(&mut rng);
        let (outputs, hours) = run_game(
            &mut platform,
            &mut pop,
            &mut rng,
            |pf, pop, a, b, sid, t0, r| {
                hc_games::esp::play_esp_session(
                    pf,
                    &world,
                    pop,
                    SessionParams::pair(a, b, sid, t0),
                    r,
                )
            },
        );
        emit(
            &mut table,
            "ESP Game",
            "output-agreement",
            outputs,
            hours,
            engagement(6.5, 0.82, 0.1),
        );
    }

    // ---- TagATune ----
    {
        let mut rng = factory.stream("tagatune");
        let world = TagATuneWorld::generate(&cfg, &mut rng);
        let mut platform = fresh_platform(PLAYERS);
        world.register_tasks(&mut platform);
        let mut pop = population(&mut rng);
        let (outputs, hours) = run_game(
            &mut platform,
            &mut pop,
            &mut rng,
            |pf, pop, a, b, sid, t0, r| {
                play_tagatune_session(pf, &world, pop, a, b, sid, t0, 0.5, r)
            },
        );
        emit(
            &mut table,
            "TagATune",
            "input-agreement",
            outputs,
            hours,
            engagement(5.0, 0.8, 0.12),
        );
    }

    // ---- Verbosity ----
    {
        let mut rng = factory.stream("verbosity");
        let world = VerbosityWorld::generate(&cfg, &mut rng);
        let mut platform = fresh_platform(PLAYERS);
        world.register_tasks(&mut platform);
        let mut pop = population(&mut rng);
        let (outputs, hours) = run_game(
            &mut platform,
            &mut pop,
            &mut rng,
            |pf, pop, a, b, sid, t0, r| play_verbosity_session(pf, &world, pop, a, b, sid, t0, r),
        );
        emit(
            &mut table,
            "Verbosity",
            "inversion-problem",
            outputs,
            hours,
            engagement(5.5, 0.8, 0.13),
        );
    }

    // ---- Peekaboom ----
    {
        let mut rng = factory.stream("peekaboom");
        let world = PeekaboomWorld::generate(&cfg, &mut rng);
        let mut platform = fresh_platform(PLAYERS);
        world.register_tasks(&mut platform);
        let mut pop = population(&mut rng);
        let mut outputs = 0u64;
        for s in 0..SESSIONS {
            let a = PlayerId::new((2 * s) % PLAYERS as u64);
            let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
            if a == b {
                b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
            }
            let (t, out) = play_peekaboom_session(
                &mut platform,
                &world,
                &mut pop,
                a,
                b,
                SessionId::new(s),
                SimTime::from_secs(s * 1_000),
                &mut rng,
            );
            let _ = t;
            outputs += out.locations.len() as u64;
        }
        let hours = platform.metrics().total_human_hours;
        emit(
            &mut table,
            "Peekaboom",
            "inversion-problem",
            outputs,
            hours,
            engagement(7.5, 0.85, 0.08),
        );
    }

    // ---- Squigl ----
    {
        let mut rng = factory.stream("squigl");
        let world = hc_games::SquiglWorld::generate(&cfg, &mut rng);
        let mut platform = fresh_platform(PLAYERS);
        world.register_tasks(&mut platform);
        let mut pop = population(&mut rng);
        let mut outputs = 0u64;
        for s in 0..SESSIONS {
            let a = PlayerId::new((2 * s) % PLAYERS as u64);
            let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
            if a == b {
                b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
            }
            let (_, out) = hc_games::squigl::play_squigl_session(
                &mut platform,
                &world,
                &mut pop,
                a,
                b,
                SessionId::new(s),
                SimTime::from_secs(s * 1_000),
                &mut rng,
            );
            outputs += out.segmentations.len() as u64;
        }
        let hours = platform.metrics().total_human_hours;
        emit(
            &mut table,
            "Squigl",
            "output-agreement",
            outputs,
            hours,
            engagement(4.5, 0.8, 0.15),
        );
    }

    // ---- Matchin ----
    {
        let mut rng = factory.stream("matchin");
        let mut cfg_m = cfg;
        cfg_m.stimuli = 300;
        let world = MatchinWorld::generate(&cfg_m, &mut rng);
        let mut platform = fresh_platform(PLAYERS);
        let mut pop = population(&mut rng);
        let mut ranking = BradleyTerryRanking::new(world.len());
        let (outputs, hours) = {
            let mut outputs = 0u64;
            for s in 0..SESSIONS {
                let a = PlayerId::new((2 * s) % PLAYERS as u64);
                let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
                if a == b {
                    b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
                }
                let t = play_matchin_session(
                    &mut platform,
                    &world,
                    &mut pop,
                    a,
                    b,
                    SessionId::new(s),
                    SimTime::from_secs(s * 1_000),
                    &mut ranking,
                    &mut rng,
                );
                outputs += t.candidate_outputs();
            }
            (outputs, platform.metrics().total_human_hours)
        };
        emit(
            &mut table,
            "Matchin",
            "output-agreement*",
            outputs,
            hours,
            engagement(9.0, 0.9, 0.07),
        );
    }

    table.print();
    println!(
        "\npaper reference: ESP throughput ≈ {} labels/human-hour, ALP ≈ {} min, E[contribution] ≈ {:.0}",
        paper::ESP_THROUGHPUT,
        paper::ESP_ALP_HOURS * 60.0,
        paper::ESP_EXPECTED_CONTRIBUTION
    );
}

fn emit(
    table: &mut Table,
    game: &str,
    template: &str,
    outputs: u64,
    hours: f64,
    engagement: EngagementModel,
) {
    let throughput = if hours > 0.0 {
        outputs as f64 / hours
    } else {
        0.0
    };
    let alp_hours = engagement.expected_alp_hours();
    let row = Row {
        game: game.to_string(),
        template: template.to_string(),
        throughput_per_human_hour: throughput,
        alp_minutes: alp_hours * 60.0,
        expected_contribution: throughput * alp_hours,
        sessions: SESSIONS,
        outputs,
    };
    table.row(
        &[
            game.to_string(),
            template.to_string(),
            f1(throughput),
            f1(alp_hours * 60.0),
            f1(throughput * alp_hours),
            outputs.to_string(),
        ],
        &row,
    );
}
