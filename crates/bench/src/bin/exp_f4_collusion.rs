//! Experiment F4 — anti-cheat ablation against collusion.
//!
//! The "always type X" attack: colluders agree out-of-band on a constant
//! label, hoping to be paired and flood the label store. The paper's
//! defenses are layered; we ablate them cumulatively:
//!
//! 1. **none** — k = 1, no gold tasks (every colluder pairing poisons);
//! 2. **+k-agreement** — k = 2 (distinct pairs must repeat the label);
//! 3. **+gold tasks** — colluders answer gold tasks with their strategy
//!    label, fail, and their agreements stop counting;
//! 4. **+entropy detector** — the spam detector flags constant-answer
//!    players (reported as detection recall).
//!
//! Poison rate = fraction of verified labels that are the attack label.

use hc_bench::{f3, pct, seed_from_args, Table};
use hc_core::anticheat::CheatDetector;
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, PopulationBuilder};
use hc_games::{esp::play_esp_session, EspWorld, SessionParams, WorldConfig};
use hc_sim::RngFactory;
use serde::Serialize;

const PLAYERS: usize = 40;
const SESSIONS: u64 = 300;
const ATTACK_LABEL: &str = "attacklabel";

#[derive(Serialize)]
struct Row {
    colluder_share: f64,
    defense: String,
    poisoned_rate: f64,
    verified: usize,
    rejected_agreements: u64,
    detector_recall: f64,
}

struct Defense {
    name: &'static str,
    k: u32,
    gold: bool,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "F4 — collusion attack vs layered defenses",
        &[
            "colluders",
            "defense",
            "poisoned",
            "verified",
            "rejected",
            "detector recall",
        ],
    );

    let defenses = [
        Defense {
            name: "none (k=1)",
            k: 1,
            gold: false,
        },
        Defense {
            name: "+k=2",
            k: 2,
            gold: false,
        },
        Defense {
            name: "+gold",
            k: 2,
            gold: true,
        },
    ];

    for share in [0.1f64, 0.25, 0.4] {
        for (di, d) in defenses.iter().enumerate() {
            let mut rng = factory.indexed_stream("f4", (share * 100.0) as u64 * 10 + di as u64);
            let mut world_cfg = WorldConfig::standard();
            world_cfg.stimuli = 300;
            let mut world = EspWorld::generate(&world_cfg, &mut rng);
            let mut platform = Platform::new(PlatformConfig {
                agreement_threshold: d.k,
                gold_injection_rate: if d.gold { 0.25 } else { 0.0 },
                gold_min_accuracy: 0.5,
                gold_min_evidence: 3,
                ..PlatformConfig::default()
            })
            .expect("valid config");
            world.register_tasks(&mut platform);
            if d.gold {
                world.register_gold_tasks(&mut platform, &world_cfg, 30, &mut rng);
            }
            platform.set_cheat_detector(CheatDetector::new(0.5, 0.8, 15));
            let mix = ArchetypeMix::with_colluders(1.0 - share, share, ATTACK_LABEL);
            let mut pop = PopulationBuilder::new(PLAYERS).mix(mix).build(&mut rng);
            for _ in 0..PLAYERS {
                platform.register_player();
            }
            for s in 0..SESSIONS {
                let a = PlayerId::new((2 * s) % PLAYERS as u64);
                let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
                if a == b {
                    b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
                }
                play_esp_session(
        &mut platform,
        &world,
        &mut pop,
        SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 1_000)),
        &mut rng,
    );
            }
            let attack = Label::new(ATTACK_LABEL);
            let verified = platform.verified_labels().len();
            let poisoned = platform
                .verified_labels()
                .iter()
                .filter(|v| v.label == attack)
                .count();
            let poisoned_rate = if verified == 0 {
                0.0
            } else {
                poisoned as f64 / verified as f64
            };
            // Detector recall over the true colluders.
            let colluders: Vec<PlayerId> = pop
                .players()
                .iter()
                .filter(|p| p.is_adversarial())
                .map(|p| p.id)
                .collect();
            let flagged = colluders
                .iter()
                .filter(|p| platform.cheat_detector().assess(**p).is_suspicious())
                .count();
            let recall = if colluders.is_empty() {
                1.0
            } else {
                flagged as f64 / colluders.len() as f64
            };
            table.row(
                &[
                    pct(share),
                    d.name.to_string(),
                    f3(poisoned_rate),
                    verified.to_string(),
                    platform.rejected_agreements().to_string(),
                    f3(recall),
                ],
                &Row {
                    colluder_share: share,
                    defense: d.name.to_string(),
                    poisoned_rate,
                    verified,
                    rejected_agreements: platform.rejected_agreements(),
                    detector_recall: recall,
                },
            );
        }
    }
    table.print();
    println!("\nexpected shape: poison rate falls with each defense layer; gold + reputation drives it toward zero while honest verification volume survives");
}
