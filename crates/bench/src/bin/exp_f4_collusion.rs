//! Experiment F4 — anti-cheat ablation against collusion.
//!
//! The "always type X" attack: colluders agree out-of-band on a constant
//! label, hoping to be paired and flood the label store. The paper's
//! defenses are layered; we ablate them cumulatively:
//!
//! 1. **none** — k = 1, no gold tasks (every colluder pairing poisons);
//! 2. **+k-agreement** — k = 2 (distinct pairs must repeat the label);
//! 3. **+gold tasks** — colluders answer gold tasks with their strategy
//!    label, fail, and their agreements stop counting;
//! 4. **+entropy detector** — the spam detector flags constant-answer
//!    players (reported as detection recall).
//!
//! Poison rate = fraction of verified labels that are the attack label.
//! The (colluder share × defense) grid runs on the parallel replication
//! pool — each cell is an independent simulation, so `--threads N`
//! changes wall time only, never a byte of output.

use hc_bench::{f3, pct, run_grid, Cell, RunOpts, Table};
use hc_core::anticheat::CheatDetector;
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, PopulationBuilder};
use hc_games::{esp::play_esp_session, EspWorld, SessionParams, WorldConfig};
use hc_sim::{OnlineStats, SimRng};
use serde::Serialize;

const PLAYERS: usize = 40;
const SESSIONS: u64 = 300;
const ATTACK_LABEL: &str = "attacklabel";

#[derive(Serialize)]
struct RepRow {
    colluder_share: f64,
    defense: String,
    rep: usize,
    poisoned_rate: f64,
    verified: usize,
    rejected_agreements: u64,
    detector_recall: f64,
}

#[derive(Serialize)]
struct CellRow {
    colluder_share: f64,
    defense: String,
    reps: usize,
    poisoned_rate_mean: f64,
    verified_mean: f64,
    rejected_agreements_mean: f64,
    detector_recall_mean: f64,
}

#[derive(Clone)]
struct Defense {
    name: &'static str,
    k: u32,
    gold: bool,
}

#[derive(Clone)]
struct CellCfg {
    share: f64,
    defense: Defense,
}

fn run_cell(cfg: &CellCfg, rep: usize, mut rng: SimRng) -> RepRow {
    let d = &cfg.defense;
    let mut world_cfg = WorldConfig::standard();
    world_cfg.stimuli = 300;
    let mut world = EspWorld::generate(&world_cfg, &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        agreement_threshold: d.k,
        gold_injection_rate: if d.gold { 0.25 } else { 0.0 },
        gold_min_accuracy: 0.5,
        gold_min_evidence: 3,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    world.register_tasks(&mut platform);
    if d.gold {
        world.register_gold_tasks(&mut platform, &world_cfg, 30, &mut rng);
    }
    platform.set_cheat_detector(CheatDetector::new(0.5, 0.8, 15));
    let mix = ArchetypeMix::with_colluders(1.0 - cfg.share, cfg.share, ATTACK_LABEL);
    let mut pop = PopulationBuilder::new(PLAYERS).mix(mix).build(&mut rng);
    for _ in 0..PLAYERS {
        platform.register_player();
    }
    for s in 0..SESSIONS {
        let a = PlayerId::new((2 * s) % PLAYERS as u64);
        let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
        if a == b {
            b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
        }
        play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 1_000)),
            &mut rng,
        );
    }
    let attack = Label::new(ATTACK_LABEL);
    let verified = platform.verified_labels().len();
    let poisoned = platform
        .verified_labels()
        .iter()
        .filter(|v| v.label == attack)
        .count();
    let poisoned_rate = if verified == 0 {
        0.0
    } else {
        poisoned as f64 / verified as f64
    };
    // Detector recall over the true colluders.
    let colluders: Vec<PlayerId> = pop
        .players()
        .iter()
        .filter(|p| p.is_adversarial())
        .map(|p| p.id)
        .collect();
    let flagged = colluders
        .iter()
        .filter(|p| platform.cheat_detector().assess(**p).is_suspicious())
        .count();
    let recall = if colluders.is_empty() {
        1.0
    } else {
        flagged as f64 / colluders.len() as f64
    };
    RepRow {
        colluder_share: cfg.share,
        defense: d.name.to_string(),
        rep,
        poisoned_rate,
        verified,
        rejected_agreements: platform.rejected_agreements(),
        detector_recall: recall,
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut stats = OnlineStats::new();
    for v in values {
        stats.push(v);
    }
    stats.mean()
}

fn main() {
    let opts = RunOpts::from_args();
    let reps = opts.reps_or(3, 1);
    let defenses = [
        Defense {
            name: "none (k=1)",
            k: 1,
            gold: false,
        },
        Defense {
            name: "+k=2",
            k: 2,
            gold: false,
        },
        Defense {
            name: "+gold",
            k: 2,
            gold: true,
        },
    ];
    let shares: &[f64] = if opts.smoke {
        &[0.1, 0.4]
    } else {
        &[0.1, 0.25, 0.4]
    };
    let mut cells = Vec::new();
    for &share in shares {
        for d in &defenses {
            cells.push(Cell::new(
                format!("share={share}/defense={}", d.name),
                CellCfg {
                    share,
                    defense: d.clone(),
                },
            ));
        }
    }

    let outcome = run_grid(&opts, "exp_f4_collusion", cells, reps, |cfg, ctx| {
        run_cell(cfg, ctx.rep, ctx.rng)
    })
    .unwrap_or_else(|e| {
        eprintln!("exp_f4_collusion: {e}");
        std::process::exit(1);
    });

    let mut table = Table::new(
        "F4 — collusion attack vs layered defenses",
        &[
            "colluders",
            "defense",
            "poisoned",
            "verified",
            "rejected",
            "detector recall",
        ],
    );
    for cell in &outcome.cells {
        let rows = &cell.reps;
        let Some(first) = rows.first() else { continue };
        let agg = CellRow {
            colluder_share: first.colluder_share,
            defense: first.defense.clone(),
            reps: rows.len(),
            poisoned_rate_mean: mean(rows.iter().map(|r| r.poisoned_rate)),
            verified_mean: mean(rows.iter().map(|r| r.verified as f64)),
            rejected_agreements_mean: mean(rows.iter().map(|r| r.rejected_agreements as f64)),
            detector_recall_mean: mean(rows.iter().map(|r| r.detector_recall)),
        };
        table.row(
            &[
                pct(agg.colluder_share),
                agg.defense.clone(),
                f3(agg.poisoned_rate_mean),
                format!("{:.0}", agg.verified_mean),
                format!("{:.0}", agg.rejected_agreements_mean),
                f3(agg.detector_recall_mean),
            ],
            &agg,
        );
    }
    table.print();
    println!("\nexpected shape: poison rate falls with each defense layer; gold + reputation drives it toward zero while honest verification volume survives");
    outcome.write_bench_json(&opts);
    outcome.write_trace(&opts);
}
