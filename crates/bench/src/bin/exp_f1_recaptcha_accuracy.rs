//! Experiment F1 — reCAPTCHA word accuracy vs agreement threshold.
//!
//! The Science'08 result the DAC'09 paper cites: human-transcribed words
//! reach ≥ 99% accuracy (professional-transcriber grade) once at least
//! two humans must agree, while standalone OCR sits near ~83% on hard
//! scans. We sweep the promotion threshold and report digitized accuracy,
//! answers needed per word, and the OCR-only baseline.

use hc_bench::{f1, f3, paper, seed_from_args, Table};
use hc_captcha::{
    DigitizationPipeline, HumanReader, OcrEngine, ReCaptcha, ReCaptchaConfig, ScannedCorpus,
};
use hc_core::text::normalize_label;
use hc_sim::RngFactory;
use serde::Serialize;

const WORDS: usize = 3_000;

#[derive(Serialize)]
struct Row {
    promote_votes: f64,
    digitized_fraction: f64,
    digitized_accuracy: f64,
    answers_per_word: f64,
    ocr_only_accuracy: f64,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "F1 — reCAPTCHA word accuracy vs agreement threshold",
        &[
            "votes",
            "digitized",
            "accuracy",
            "answers/word",
            "OCR-only acc",
        ],
    );

    // OCR-only baseline: one pass over the same corpus.
    let ocr_only_accuracy = {
        let mut rng = factory.stream("ocr-baseline");
        let corpus = ScannedCorpus::generate(WORDS, 0.0, 0.05, &mut rng);
        let ocr = OcrEngine::commercial();
        let correct = corpus
            .iter()
            .filter(|w| {
                normalize_label(&ocr.read(&w.truth, w.distortion, &mut rng))
                    == normalize_label(&w.truth)
            })
            .count();
        correct as f64 / WORDS as f64
    };

    for promote in [1.0f64, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let mut rng = factory.indexed_stream("f1", (promote * 10.0) as u64);
        let corpus = ScannedCorpus::generate(WORDS, 0.0, 0.05, &mut rng);
        let config = ReCaptchaConfig {
            promote_votes: promote,
            ..ReCaptchaConfig::default()
        };
        let service = ReCaptcha::new(corpus, OcrEngine::commercial(), config, &mut rng);
        let mut pipeline = DigitizationPipeline::new(
            service,
            HumanReader::typical(),
            0.0,
            OcrEngine::commercial(),
        );
        pipeline.run(WORDS as u64 * 12, &mut rng);
        let prog = pipeline.progress();
        let digitized_words = (prog.digitized_fraction * WORDS as f64).max(1.0);
        let row = Row {
            promote_votes: promote,
            digitized_fraction: prog.digitized_fraction,
            digitized_accuracy: prog.digitized_accuracy,
            answers_per_word: prog.answers as f64 / digitized_words,
            ocr_only_accuracy,
        };
        table.row(
            &[
                f1(promote),
                f3(prog.digitized_fraction),
                f3(prog.digitized_accuracy),
                f1(row.answers_per_word),
                f3(ocr_only_accuracy),
            ],
            &row,
        );
    }
    table.print();
    println!(
        "\npaper reference: reCAPTCHA ≥ {:.0}% word accuracy; standalone OCR ≈ {:.1}%",
        paper::RECAPTCHA_WORD_ACCURACY * 100.0,
        paper::OCR_WORD_ACCURACY * 100.0
    );
}
