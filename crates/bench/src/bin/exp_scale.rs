//! Experiment SCALE — one simulation, many cores.
//!
//! Every other experiment scales by running *replications* in parallel;
//! the single run itself was serial, which caps the population one
//! study can simulate. This experiment drives the sharded single-run
//! engine (`hc_sim::shard` under `hc_games::shard`): players are
//! partitioned `id % K`, session play happens on worker threads inside
//! lock-stepped time windows, and the cross-shard exchange merges
//! messages in a layout-independent order — so the results are
//! **byte-identical at any `--shards` × `--threads` combination** while
//! wall-clock drops with cores.
//!
//! That pairing is exactly what CI checks: the same grid at
//! `--shards 1 --threads 1` and `--shards 4 --threads 4` must agree on
//! every result byte (`hc-bench compare --determinism`) while the
//! sharded run clears a wall-clock speedup floor
//! (`--min-speedup`). The full grid climbs to a million players — the
//! scaling-curve table in the README comes from its stdout.
//!
//! Unlike the other grids, the replication pool here is pinned to one
//! task at a time: `--threads` hands the cores to the sharded engine
//! *inside* the run instead of spreading them across reps.
//!
//! `--players N` runs the single cell at `N` players on a reduced sim
//! horizon (20 min instead of 2 h) — the release-mode smoke CI uses to
//! put the full million-player population through the bucketed
//! matchmaker on every PR.

use hc_bench::{f1, f3, run_grid, Cell, RunOpts, Table};
use hc_games::shard::{EspShardGame, ShardedCampaign, ShardedCampaignConfig};
use hc_games::world::WorldConfig;
use hc_sim::{RngFactory, SimDuration, SimTime};
use serde::Serialize;

/// Everything here must be invariant to `--shards`/`--threads`: this
/// struct feeds the bench JSON `results` section that CI diffs across
/// engine layouts.
#[derive(Serialize)]
struct RepRow {
    players: usize,
    live_sessions: u64,
    solo_sessions: u64,
    verified_labels: usize,
    labels_per_hour: f64,
    alp_hours: f64,
    precision: f64,
    mean_wait_secs: f64,
}

fn main() {
    let opts = RunOpts::from_args();
    let reps = opts.reps_or(1, 1);
    let shards = opts.shards.unwrap_or(4);
    // `--players N` is the release-mode population smoke: one cell at
    // full population on a reduced sim horizon, so CI can afford the
    // million-player workload. The grid tiers keep the full horizon.
    let (populations, horizon, spread): (Vec<usize>, SimTime, SimDuration) =
        match (opts.players, opts.smoke) {
            (Some(p), _) => (
                vec![p],
                SimTime::from_secs(20 * 60),
                SimDuration::from_mins(10),
            ),
            (None, true) => (
                vec![50_000],
                SimTime::from_secs(2 * 3600),
                SimDuration::from_mins(45),
            ),
            (None, false) => (
                vec![10_000, 50_000, 200_000, 1_000_000],
                SimTime::from_secs(2 * 3600),
                SimDuration::from_mins(45),
            ),
        };
    let cells: Vec<Cell<usize>> = populations
        .iter()
        .map(|&p| Cell::new(format!("players={p}"), p))
        .collect();

    // The pool stays serial: this experiment measures the engine's own
    // parallelism, so all `--threads` cores belong to the shard phase.
    let mut pool_opts = opts.clone();
    pool_opts.threads = 1;

    let outcome = run_grid(&pool_opts, "exp_scale", cells, reps, |&players, ctx| {
        let factory = RngFactory::new(ctx.seed);
        let mut world_rng = factory.stream("world");
        let mut world_cfg = WorldConfig::small();
        // Enough stimuli that a large population does not starve the
        // task queue (task selection skips fully-verified images).
        world_cfg.stimuli = (players / 10).clamp(600, 20_000);
        let driver = EspShardGame::generate(&world_cfg, &mut world_rng);
        let config = ShardedCampaignConfig {
            players,
            horizon,
            arrival_spread: spread,
            shards,
            threads: opts.threads,
            window: SimDuration::from_secs(10),
            // Skill tiers for the sharded wait pool — a semantic knob
            // (who can pair with whom), deliberately NOT tied to
            // `--shards`, so every layout produces identical pairings.
            match_buckets: 8,
            ..ShardedCampaignConfig::small()
        };
        let mut campaign = ShardedCampaign::new(driver, config, ctx.seed);
        let report = campaign.run().unwrap_or_else(|e| {
            eprintln!("exp_scale: shard engine failed: {e}");
            std::process::exit(1);
        });
        RepRow {
            players,
            live_sessions: report.live_sessions,
            solo_sessions: report.solo_sessions,
            verified_labels: report.precision.1,
            labels_per_hour: report.metrics.throughput_per_human_hour,
            alp_hours: report.metrics.alp_hours,
            precision: report.precision_rate(),
            mean_wait_secs: report.mean_wait_secs,
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("exp_scale: {e}");
        std::process::exit(1);
    });

    let mut table = Table::new(
        "SCALE — sharded single-run engine vs population",
        &[
            "players",
            "live",
            "solo",
            "verified",
            "labels/hh",
            "ALP(h)",
            "precision",
            "wait(s)",
        ],
    );
    for cell in &outcome.cells {
        for row in &cell.reps {
            table.row(
                &[
                    row.players.to_string(),
                    row.live_sessions.to_string(),
                    row.solo_sessions.to_string(),
                    row.verified_labels.to_string(),
                    f1(row.labels_per_hour),
                    f3(row.alp_hours),
                    f3(row.precision),
                    f1(row.mean_wait_secs),
                ],
                row,
            );
        }
    }
    table.print();
    // Timing (and the shard/thread layout that produced it) is
    // machine-dependent context: stderr only, so stdout captures stay
    // bit-for-bit reproducible across layouts.
    eprintln!(
        "{} cells x {} reps, {} shards on {} engine threads: {:.2}s wall",
        outcome.cells.len(),
        outcome.reps,
        shards,
        opts.threads,
        outcome.timing.total_wall_secs
    );
    println!("\nexpected shape: identical bytes at every --shards/--threads; wall-clock falls with engine threads until the serial hub fraction dominates");
    outcome.write_bench_json(&opts);
    outcome.write_trace(&opts);
}
