//! Experiment F7 — digitization progress over time.
//!
//! The reCAPTCHA growth curve: as human answers stream in, the fraction
//! of the scanned corpus resolved climbs while the residual error stays
//! flat and tiny — "books digitized word by word as a side effect of web
//! security". We stream a mixed human/bot crowd and snapshot progress on
//! a log-spaced schedule.

use hc_bench::{f3, seed_from_args, Table};
use hc_captcha::{
    DigitizationPipeline, HumanReader, OcrEngine, ReCaptcha, ReCaptchaConfig, ScannedCorpus,
};
use hc_sim::RngFactory;
use serde::Serialize;

const WORDS: usize = 5_000;
const BOT_SHARE: f64 = 0.15;

#[derive(Serialize)]
struct Row {
    answers: u64,
    resolved_fraction: f64,
    digitized_fraction: f64,
    digitized_accuracy: f64,
    control_pass_rate: f64,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut rng = factory.stream("f7");
    let corpus = ScannedCorpus::generate(WORDS, 0.0, 0.05, &mut rng);
    let service = ReCaptcha::new(
        corpus,
        OcrEngine::commercial(),
        ReCaptchaConfig::default(),
        &mut rng,
    );
    let mut pipeline = DigitizationPipeline::new(
        service,
        HumanReader::typical(),
        BOT_SHARE,
        OcrEngine::commercial(),
    );

    let mut table = Table::new(
        "F7 — reCAPTCHA digitization progress (15% bot traffic)",
        &[
            "answers",
            "resolved",
            "digitized",
            "accuracy",
            "control pass",
        ],
    );
    let checkpoints: Vec<u64> = vec![
        500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000,
    ];
    let mut processed = 0u64;
    for cp in checkpoints {
        let batch = cp - processed;
        pipeline.run(batch, &mut rng);
        processed = cp;
        let p = pipeline.progress();
        table.row(
            &[
                p.answers.to_string(),
                f3(p.resolved_fraction),
                f3(p.digitized_fraction),
                f3(p.digitized_accuracy),
                f3(p.control_pass_rate),
            ],
            &Row {
                answers: p.answers,
                resolved_fraction: p.resolved_fraction,
                digitized_fraction: p.digitized_fraction,
                digitized_accuracy: p.digitized_accuracy,
                control_pass_rate: p.control_pass_rate,
            },
        );
        if pipeline.service().pending_count() == 0 {
            break;
        }
    }
    table.print();
    println!("\nexpected shape: digitized fraction climbs to ~1.0 while accuracy stays ≥ ~0.99 throughout");
}
