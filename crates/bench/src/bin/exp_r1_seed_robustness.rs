//! Robustness R1 — headline claims across independent seeds.
//!
//! Every table in EXPERIMENTS.md is quoted at seed 42; this experiment
//! re-measures the four headline reproductions across independent seed
//! replications (fanned out on the parallel replication pool) and
//! reports mean ± 95% CI, demonstrating that no ordering claim is a
//! seed artifact:
//!
//! 1. reCAPTCHA digitized-word accuracy (claim: ≥ 99%),
//! 2. standalone OCR word accuracy (claim: ~78–84%, clearly below 1),
//! 3. ESP verified-label precision under a mixed crowd (claim: ≥ 85%),
//! 4. CAPTCHA human-vs-bot gap at distortion 0.6 (claim: wide open).

use hc_bench::{f3, run_grid, Cell, RunOpts, Table};
use hc_captcha::corpus::pseudo_word;
use hc_captcha::{
    Captcha, DigitizationPipeline, HumanReader, OcrEngine, ReCaptcha, ReCaptchaConfig,
    ScannedCorpus,
};
use hc_core::prelude::*;
use hc_core::text::normalize_label;
use hc_crowd::{ArchetypeMix, PopulationBuilder};
use hc_games::{esp::play_esp_session, EspWorld, SessionParams, WorldConfig};
use hc_sim::{ConfidenceInterval, OnlineStats, RngFactory};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    metric: String,
    mean: f64,
    ci95_half_width: f64,
    min: f64,
    max: f64,
    claim: String,
}

#[derive(Serialize)]
struct Sample {
    rep: usize,
    recaptcha_acc: f64,
    ocr_acc: f64,
    esp_precision: f64,
    captcha_gap: f64,
}

fn one_seed(rep: usize, seed: u64) -> Sample {
    let factory = RngFactory::new(seed);

    // 1+2: reCAPTCHA vs OCR on a 1500-word book.
    let mut rng = factory.stream("recaptcha");
    let corpus = ScannedCorpus::generate(1_500, 0.0, 0.05, &mut rng);
    let ocr = OcrEngine::commercial();
    let ocr_correct = corpus
        .iter()
        .filter(|w| {
            normalize_label(&ocr.read(&w.truth, w.distortion, &mut rng))
                == normalize_label(&w.truth)
        })
        .count();
    let ocr_acc = ocr_correct as f64 / corpus.len() as f64;
    let service = ReCaptcha::new(corpus, ocr, ReCaptchaConfig::default(), &mut rng);
    let mut pipeline = DigitizationPipeline::new(service, HumanReader::typical(), 0.0, ocr);
    pipeline.run(80_000, &mut rng);
    let recaptcha_acc = pipeline.progress().digitized_accuracy;

    // 3: ESP precision under a mixed crowd.
    let mut rng = factory.stream("esp");
    let mut cfg = WorldConfig::standard();
    cfg.stimuli = 150;
    let world = EspWorld::generate(&cfg, &mut rng);
    let mut platform = Platform::new(PlatformConfig {
        gold_injection_rate: 0.0,
        ..PlatformConfig::default()
    })
    .expect("valid config");
    world.register_tasks(&mut platform);
    const PLAYERS: usize = 16;
    let mut pop = PopulationBuilder::new(PLAYERS)
        .mix(ArchetypeMix::realistic())
        .build(&mut rng);
    for _ in 0..PLAYERS {
        platform.register_player();
    }
    for s in 0..60u64 {
        let a = PlayerId::new((2 * s) % PLAYERS as u64);
        let mut b = PlayerId::new((2 * s + 1 + s / PLAYERS as u64) % PLAYERS as u64);
        if a == b {
            b = PlayerId::new((b.raw() + 1) % PLAYERS as u64);
        }
        play_esp_session(
            &mut platform,
            &world,
            &mut pop,
            SessionParams::pair(a, b, SessionId::new(s), SimTime::from_secs(s * 1_000)),
            &mut rng,
        );
    }
    let (correct, total) = world.verified_precision(&platform);
    let esp_precision = if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    };

    // 4: CAPTCHA gap at distortion 0.6 (human pass − bot pass).
    let mut rng = factory.stream("captcha");
    let human = HumanReader::typical();
    let trials = 1_500;
    let mut human_pass = 0;
    let mut bot_pass = 0;
    for _ in 0..trials {
        let words = vec![pseudo_word(&mut rng), pseudo_word(&mut rng)];
        let c = Captcha::new(words, 0.6, 0);
        let human_ans: Vec<String> = c
            .words()
            .iter()
            .map(|w| human.read(w, c.distortion, &mut rng))
            .collect();
        if c.check(&human_ans).is_pass() {
            human_pass += 1;
        }
        let bot_ans: Vec<String> = c
            .words()
            .iter()
            .map(|w| ocr.read(w, c.distortion, &mut rng))
            .collect();
        if c.check(&bot_ans).is_pass() {
            bot_pass += 1;
        }
    }
    let captcha_gap = (human_pass - bot_pass) as f64 / trials as f64;

    Sample {
        rep,
        recaptcha_acc,
        ocr_acc,
        esp_precision,
        captcha_gap,
    }
}

fn main() {
    let opts = RunOpts::from_args();
    let reps = opts.reps_or(8, 4);
    // Thread count is machine-dependent; stderr keeps `results/*.txt`
    // (stdout captures) bit-for-bit reproducible.
    eprintln!(
        "running {reps} seed replications on {} threads...",
        opts.threads
    );
    let outcome = run_grid(
        &opts,
        "exp_r1_seed_robustness",
        vec![Cell::new("headline", ())],
        reps,
        |(), ctx| one_seed(ctx.rep, ctx.seed),
    )
    .unwrap_or_else(|e| {
        eprintln!("exp_r1_seed_robustness: {e}");
        std::process::exit(1);
    });
    let samples: Vec<&Sample> = outcome.cells.iter().flat_map(|c| c.reps.iter()).collect();

    let mut table = Table::new(
        "R1 — headline claims across independent seeds (mean ± 95% CI)",
        &["metric", "mean", "±95% CI", "min", "max", "claim"],
    );
    type Extract = fn(&Sample) -> f64;
    let metrics: [(&str, Extract, &str); 4] = [
        ("recaptcha accuracy", |s| s.recaptcha_acc, ">= 0.99"),
        ("ocr-only accuracy", |s| s.ocr_acc, "~0.78-0.84"),
        ("esp precision", |s| s.esp_precision, ">= 0.85"),
        ("captcha human-bot gap", |s| s.captcha_gap, ">> 0.8"),
    ];
    for (name, extract, claim) in metrics {
        let mut stats = OnlineStats::new();
        for s in &samples {
            stats.push(extract(s));
        }
        let ci = ConfidenceInterval::for_mean(stats.mean(), stats.std_dev(), stats.count());
        let row = Row {
            metric: name.to_string(),
            mean: stats.mean(),
            ci95_half_width: ci.half_width,
            min: stats.min().unwrap_or(0.0),
            max: stats.max().unwrap_or(0.0),
            claim: claim.to_string(),
        };
        table.row(
            &[
                name.to_string(),
                f3(row.mean),
                f3(row.ci95_half_width),
                f3(row.min),
                f3(row.max),
                claim.to_string(),
            ],
            &row,
        );
    }
    table.print();
    println!("\nevery headline claim must hold at the CI lower bound, not just the seed-42 point estimate");
    outcome.write_bench_json(&opts);
    outcome.write_trace(&opts);
}
