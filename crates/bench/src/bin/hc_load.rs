//! `hc-load` — the deterministic load generator for `hc-serve`.
//!
//! ```text
//! hc-load [--seed N] [--threads N] [--clients N] [--steps N]
//!         [--rounds-per-session N] [--smoke]
//!         [--bench-json PATH] [--response-log PATH] [--trace PATH]
//! ```
//!
//! Replays `hc-crowd` behavior as request traffic against one
//! `hc_serve::Service` (see `hc_bench::load`). The response log and the
//! bench JSON's `results` section are byte-identical at any
//! `--threads`; `timing` records p50/p99 request latency and the
//! per-wave saturation curve. CI runs `--smoke` at 1 and 4 threads,
//! diffs the logs, and gates latency against a frozen baseline.
//!
//! Exit status: 0 success, 1 run failed, 2 usage error.

use hc_bench::load::{run_load, LoadOpts};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hc-load [--seed N] [--threads N] [--clients N] [--steps N]
               [--rounds-per-session N] [--smoke]
               [--bench-json PATH] [--response-log PATH] [--trace PATH]";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n{USAGE}");
    ExitCode::from(2)
}

enum Parsed {
    Opts(Box<LoadOpts>),
    Bad(String),
}

fn parse_args(args: &[String]) -> Parsed {
    let mut opts = LoadOpts::default();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("{name} requires a non-negative integer"))
        };
        match arg.as_str() {
            "--seed" => match num("--seed") {
                Ok(v) => opts.seed = v,
                Err(e) => return Parsed::Bad(e),
            },
            "--threads" => match num("--threads") {
                Ok(v) if v >= 1 => opts.threads = v as usize,
                _ => return Parsed::Bad("--threads requires an integer >= 1".to_string()),
            },
            "--clients" => match num("--clients") {
                Ok(v) if v >= 2 => opts.clients = v as usize,
                _ => return Parsed::Bad("--clients requires an integer >= 2".to_string()),
            },
            "--steps" => match num("--steps") {
                Ok(v) if v >= 1 => opts.steps = v as usize,
                _ => return Parsed::Bad("--steps requires an integer >= 1".to_string()),
            },
            "--rounds-per-session" => match num("--rounds-per-session") {
                Ok(v) if v >= 1 => opts.rounds_per_session = v as u32,
                _ => {
                    return Parsed::Bad("--rounds-per-session requires an integer >= 1".to_string())
                }
            },
            "--smoke" => smoke = true,
            "--bench-json" => match it.next() {
                Some(p) => opts.bench_json = Some(PathBuf::from(p)),
                None => return Parsed::Bad("--bench-json requires a path".to_string()),
            },
            "--response-log" => match it.next() {
                Some(p) => opts.response_log = Some(PathBuf::from(p)),
                None => return Parsed::Bad("--response-log requires a path".to_string()),
            },
            "--trace" => match it.next() {
                Some(p) => opts.trace = Some(PathBuf::from(p)),
                None => return Parsed::Bad("--trace requires a path".to_string()),
            },
            other => return Parsed::Bad(format!("unknown argument `{other}`")),
        }
    }
    if smoke {
        opts = opts.smoke();
    }
    Parsed::Opts(Box::new(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Parsed::Opts(o) => *o,
        Parsed::Bad(e) => return usage_error(&e),
    };

    let outcome = match run_load(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hc-load: {e}");
            return ExitCode::from(1);
        }
    };

    let s = &outcome.summary;
    println!(
        "requests {}   sessions {}/{} opened/closed   rounds {}   matched {}   promoted {}   errors {}",
        s.requests, s.sessions_opened, s.sessions_closed, s.rounds_resolved, s.matched, s.promoted,
        s.errors
    );
    println!(
        "response log: {} lines, fnv64 {}",
        s.response_log_lines, s.response_log_fnv64
    );
    let mut sorted = outcome.timing.latencies.clone();
    sorted.sort_by(f64::total_cmp);
    println!(
        "latency: p50 {:.1}us  p99 {:.1}us  over {} requests   wall {:.3}s",
        hc_bench::load::percentile(&sorted, 0.5) * 1e6,
        hc_bench::load::percentile(&sorted, 0.99) * 1e6,
        sorted.len(),
        outcome.timing.total_wall_secs
    );

    if let Some(path) = &opts.response_log {
        if let Err(e) = std::fs::write(path, &outcome.response_log) {
            eprintln!("hc-load: write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        eprintln!("response log written to {}", path.display());
    }
    if let Some(path) = &opts.trace {
        eprintln!("trace written to {}", path.display());
    }
    if let Some(path) = &opts.bench_json {
        let rendered = match outcome.to_bench_json(&opts) {
            Ok(v) => v.to_string(),
            Err(e) => {
                eprintln!("hc-load: {e}");
                return ExitCode::from(1);
            }
        };
        if let Err(e) = std::fs::write(path, rendered + "\n") {
            eprintln!("hc-load: write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        eprintln!("bench JSON written to {}", path.display());
    }
    ExitCode::SUCCESS
}
