//! Ablation A1 — practice and fatigue dynamics.
//!
//! The paper's skill-ladder mechanic exists because players improve with
//! practice; long sittings also fatigue them. This ablation plays a fixed
//! pair through a marathon of Verbosity sessions under three skill
//! models — static, practice-only, practice+fatigue — and tracks the
//! per-session guess success rate, regenerating the learning curve the
//! deployed games' level systems are built around.

use hc_bench::{f3, seed_from_args, Table};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, PopulationBuilder, SkillDynamics, SkillState};
use hc_games::{verbosity::play_verbosity_session, VerbosityWorld, WorldConfig};
use hc_sim::RngFactory;
use serde::Serialize;

const SESSIONS: u64 = 40;
const BASE_SKILL: f64 = 0.45;

#[derive(Serialize)]
struct Row {
    model: String,
    session_block: u64,
    match_rate: f64,
    secs_per_round: f64,
    effective_skill: f64,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "A1 — guess success over a marathon sitting (practice vs fatigue)",
        &[
            "model",
            "sessions",
            "match rate",
            "secs/round",
            "eff. skill",
        ],
    );

    let models: [(&str, SkillDynamics); 3] = [
        ("static", SkillDynamics::none()),
        (
            "practice",
            SkillDynamics {
                learning_gain: 0.6,
                learning_tau_rounds: 120.0,
                fatigue_onset_mins: f64::INFINITY,
                fatigue_slope_per_min: 0.0,
                fatigue_floor: 1.0,
            },
        ),
        (
            "practice+fatigue",
            SkillDynamics {
                learning_gain: 0.6,
                learning_tau_rounds: 120.0,
                fatigue_onset_mins: 45.0,
                fatigue_slope_per_min: 0.01,
                fatigue_floor: 0.4,
            },
        ),
    ];

    for (mi, (name, dynamics)) in models.iter().enumerate() {
        let mut rng = factory.indexed_stream("a1", mi as u64);
        let mut cfg = WorldConfig::standard();
        cfg.stimuli = 1_500;
        let world = VerbosityWorld::generate(&cfg, &mut rng);
        let mut platform = Platform::new(PlatformConfig {
            gold_injection_rate: 0.0,
            ..PlatformConfig::default()
        })
        .expect("valid config");
        world.register_tasks(&mut platform);
        let mut pop = PopulationBuilder::new(2)
            .mix(ArchetypeMix::all_honest())
            .skill_range(BASE_SKILL, BASE_SKILL + 0.01)
            .build(&mut rng);
        platform.register_player();
        platform.register_player();

        // One continuous marathon sitting: fatigue never resets.
        let mut state = SkillState::default();
        let mut block_matched = 0usize;
        let mut block_rounds = 0usize;
        let mut block_secs = 0.0f64;
        let mut clock = SimTime::ZERO;
        for s in 0..SESSIONS {
            // Apply the dynamics to the guesser's skill before the session.
            let effective =
                dynamics.effective_skill(BASE_SKILL, state.lifetime_rounds, state.sitting_minutes);
            pop.get_mut(PlayerId::new(1)).expect("guesser exists").skill = effective;
            let t = play_verbosity_session(
                &mut platform,
                &world,
                &mut pop,
                PlayerId::new(0),
                PlayerId::new(1),
                SessionId::new(s),
                clock,
                &mut rng,
            );
            clock = t.ended + SimDuration::from_secs(5);
            state.advance(t.rounds() as u64, t.duration().as_mins_f64());
            block_matched += t.matched_count();
            block_rounds += t.rounds();
            block_secs += t.duration().as_secs_f64();
            // Report in blocks of 10 sessions.
            if (s + 1) % 10 == 0 {
                let row = Row {
                    model: (*name).to_string(),
                    session_block: s + 1,
                    match_rate: block_matched as f64 / block_rounds.max(1) as f64,
                    secs_per_round: block_secs / block_rounds.max(1) as f64,
                    effective_skill: effective,
                };
                table.row(
                    &[
                        (*name).to_string(),
                        format!("{}-{}", s + 1 - 9, s + 1),
                        f3(row.match_rate),
                        f3(row.secs_per_round),
                        f3(row.effective_skill),
                    ],
                    &row,
                );
                block_matched = 0;
                block_rounds = 0;
                block_secs = 0.0;
            }
        }
    }
    table.print();
    println!("\nexpected shape: skilled guessers answer FASTER — secs/round falls with practice and rises again under fatigue; the static model stays flat");
}
