//! Experiment F9 — random matching as a collusion defense (ablation).
//!
//! The paper lists *random matching* first among the GWAP verification
//! mechanisms: colluders cannot exploit an out-of-band agreement if they
//! are never paired. We isolate that mechanism with the epoch
//! [`BatchMatcher`]: colluders coordinate their arrivals (always joining
//! back-to-back), and we compare naive arrival-order pairing against
//! randomized pairing across epoch sizes — measuring how often colluders
//! get each other and how much poison reaches the verified store
//! (k = 1, no gold: random matching is the *only* active defense).

use hc_bench::{f3, pct, seed_from_args, Table};
use hc_core::prelude::*;
use hc_crowd::{ArchetypeMix, Behavior, PopulationBuilder};
use hc_games::{esp::play_esp_session, EspWorld, SessionParams, WorldConfig};
use hc_sim::RngFactory;
use serde::Serialize;

const EPOCHS: u64 = 400;
const ATTACK: &str = "poisonword";

#[derive(Serialize)]
struct Row {
    policy: String,
    epoch_size: usize,
    colluder_pair_rate: f64,
    poisoned: usize,
    poisoned_rate: f64,
    verified: usize,
}

fn main() {
    let seed = seed_from_args();
    let factory = RngFactory::new(seed);
    let mut table = Table::new(
        "F9 — random matching vs coordinated colluder arrivals (k=1, no gold)",
        &[
            "policy",
            "epoch",
            "colluder pairs",
            "poison count",
            "poison rate",
            "verified",
        ],
    );

    for &epoch_size in &[4usize, 8, 16] {
        for policy in [PairingPolicy::Adjacent, PairingPolicy::Random] {
            let mut rng = factory.indexed_stream(
                "f9",
                epoch_size as u64 * 10 + u64::from(policy == PairingPolicy::Random),
            );
            let mut world_cfg = WorldConfig::standard();
            world_cfg.stimuli = 2_000;
            let world = EspWorld::generate(&world_cfg, &mut rng);
            let mut platform = Platform::new(PlatformConfig {
                agreement_threshold: 1,
                gold_injection_rate: 0.0,
                matchmaker: MatchmakerConfig {
                    avoid_rematch: false,
                    ..MatchmakerConfig::default()
                },
                ..PlatformConfig::default()
            })
            .expect("valid config");
            world.register_tasks(&mut platform);

            // Population: 2 colluders + honest fill, one epoch's worth.
            let honest = epoch_size - 2;
            let mut pop = PopulationBuilder::new(honest)
                .mix(ArchetypeMix::all_honest())
                .build(&mut rng);
            // Hand-build the colluders with the next ids.
            let mut all = pop.players().to_vec();
            for i in 0..2 {
                all.push(hc_crowd::PlayerProfile::new(
                    PlayerId::new((honest + i) as u64),
                    0.9,
                    Behavior::Colluder {
                        strategy_label: Label::new(ATTACK),
                    },
                    hc_crowd::ResponseTimeModel::default(),
                ));
            }
            pop = hc_crowd::Population::from_profiles(all);
            for _ in 0..epoch_size {
                platform.register_player();
            }
            let colluders = [
                PlayerId::new(honest as u64),
                PlayerId::new((honest + 1) as u64),
            ];

            let mut matcher = BatchMatcher::new(policy);
            let mut colluder_pairs = 0u64;
            let mut sessions = 0u64;
            for e in 0..EPOCHS {
                // Honest players trickle in; the two colluders always join
                // back-to-back (their coordinated-arrival attack).
                for i in 0..honest {
                    matcher.join(PlayerId::new(i as u64));
                }
                matcher.join(colluders[0]);
                matcher.join(colluders[1]);
                for (a, b) in matcher.pair_epoch(&mut rng) {
                    let both_colluders = colluders.contains(&a) && colluders.contains(&b);
                    if both_colluders {
                        colluder_pairs += 1;
                    }
                    play_esp_session(
                        &mut platform,
                        &world,
                        &mut pop,
                        SessionParams::pair(
                            a,
                            b,
                            SessionId::new(sessions),
                            SimTime::from_secs(e * 1_000),
                        ),
                        &mut rng,
                    );
                    sessions += 1;
                }
            }

            let attack = Label::new(ATTACK);
            let verified = platform.verified_labels().len();
            let poisoned = platform
                .verified_labels()
                .iter()
                .filter(|v| v.label == attack)
                .count();
            let row = Row {
                policy: format!("{policy:?}").to_lowercase(),
                epoch_size,
                colluder_pair_rate: colluder_pairs as f64 / EPOCHS as f64,
                poisoned,
                poisoned_rate: poisoned as f64 / verified.max(1) as f64,
                verified,
            };
            table.row(
                &[
                    row.policy.clone(),
                    epoch_size.to_string(),
                    pct(row.colluder_pair_rate),
                    poisoned.to_string(),
                    f3(row.poisoned_rate),
                    verified.to_string(),
                ],
                &row,
            );
        }
    }
    table.print();
    println!("\nexpected shape: adjacent pairing lets coordinated colluders pair ~100% of epochs; random matching cuts that to ~1/(n-1) and the absolute poison volume with it (at tiny epochs the poison *rate* is confounded by mixed colluder-honest sessions also destroying honest throughput)");
}
