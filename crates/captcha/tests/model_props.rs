//! Property tests over the CAPTCHA models: the monotone structure the F1
//! and F2 experiments depend on must hold for *all* parameters, not just
//! the swept grid.

use hc_captcha::{Captcha, HumanReader, OcrEngine, ReCaptcha, ReCaptchaConfig, ScannedCorpus};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #[test]
    fn ocr_word_accuracy_is_monotone_in_distortion(
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
        len in 1usize..12,
    ) {
        let word: String = "abcdefghijkl".chars().take(len).collect();
        let ocr = OcrEngine::commercial();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(ocr.word_accuracy(&word, lo) >= ocr.word_accuracy(&word, hi) - 1e-12);
    }

    #[test]
    fn ocr_word_accuracy_is_monotone_in_length(d in 0.0f64..1.0, len in 1usize..11) {
        let ocr = OcrEngine::commercial();
        let short: String = "abcdefghijkl".chars().take(len).collect();
        let long: String = "abcdefghijkl".chars().take(len + 1).collect();
        prop_assert!(ocr.word_accuracy(&short, d) >= ocr.word_accuracy(&long, d) - 1e-12);
    }

    #[test]
    fn human_beats_ocr_at_high_distortion(d in 0.5f64..1.0) {
        let human = HumanReader::typical();
        let ocr = OcrEngine::commercial();
        // Any word of realistic CAPTCHA length.
        prop_assert!(human.word_accuracy(d) > ocr.word_accuracy("abcdef", d));
    }

    #[test]
    fn human_accuracy_is_monotone_in_distortion(d1 in 0.0f64..1.0, d2 in 0.0f64..1.0) {
        let h = HumanReader::typical();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(h.word_accuracy(lo) >= h.word_accuracy(hi) - 1e-12);
    }

    #[test]
    fn captcha_check_accepts_exact_answers(words in prop::collection::vec("[a-z]{3,9}", 1..4)) {
        let c = Captcha::new(words.clone(), 0.5, 0);
        prop_assert!(c.check(&words).is_pass());
        // Wrong word count always fails.
        let mut extra = words.clone();
        extra.push("extra".to_string());
        prop_assert!(!c.check(&extra).is_pass());
    }

    #[test]
    fn recaptcha_bookkeeping_is_conserved(seed in 0u64..200, n in 10usize..80) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let corpus = ScannedCorpus::generate(n, 0.0, 1.0, &mut rng);
        let mut service = ReCaptcha::new(
            corpus,
            OcrEngine::commercial(),
            ReCaptchaConfig::default(),
            &mut rng,
        );
        // Invariant: ocr_solved + digitized + pending == corpus size.
        prop_assert_eq!(
            service.ocr_solved_count() + service.digitized_count() + service.pending_count(),
            n
        );
        // Drive some perfect answers and re-check the invariant.
        for _ in 0..30 {
            let Some(ch) = service.issue(&mut rng) else { break };
            let control = ch.control_text.clone();
            let truth = ch.unknown_truth.clone();
            service.answer(&ch, &control, &truth);
            prop_assert_eq!(
                service.ocr_solved_count() + service.digitized_count() + service.pending_count(),
                n
            );
        }
        // Accuracy counters never exceed their denominators.
        let (rc, rt) = service.resolved_accuracy();
        prop_assert!(rc <= rt);
        let (dc, dt) = service.digitized_accuracy();
        prop_assert!(dc <= dt);
        prop_assert!(dt <= rt);
    }
}
