//! The human reader model.
//!
//! Humans are the other side of the CAPTCHA gap: their reading accuracy
//! barely degrades with the distortions that destroy OCR. The model used
//! here: word-level accuracy `skill × (1 − mild_penalty × d²)`, so even at
//! full distortion an attentive human reads > 85% of words — matching the
//! usability numbers of deployed CAPTCHAs. Errors are realistic typos:
//! one random character edit (substitute/drop/duplicate), which is what
//! the reCAPTCHA matcher's edit-distance tolerance exists to absorb.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A human transcriber with a skill level.
///
/// # Examples
///
/// ```
/// use hc_captcha::HumanReader;
/// use rand::SeedableRng;
///
/// let reader = HumanReader::typical();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// // Humans keep reading accurately where OCR collapses.
/// assert!(reader.word_accuracy(1.0) > 0.8);
/// let _typed = reader.read("example", 0.9, &mut rng);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HumanReader {
    /// Base word-level accuracy on clean text, in `[0, 1]`.
    pub skill: f64,
    /// Accuracy lost at full distortion (quadratic onset), in `[0, 1]`.
    pub distortion_penalty: f64,
}

impl HumanReader {
    /// A typical attentive web user: ~97% clean, ~89% at full distortion.
    #[must_use]
    pub fn typical() -> Self {
        HumanReader {
            skill: 0.97,
            distortion_penalty: 0.08,
        }
    }

    /// A careless or hurried user.
    #[must_use]
    pub fn careless() -> Self {
        HumanReader {
            skill: 0.88,
            distortion_penalty: 0.15,
        }
    }

    /// Creates a reader with explicit parameters (clamped into `[0, 1]`).
    #[must_use]
    pub fn new(skill: f64, distortion_penalty: f64) -> Self {
        HumanReader {
            skill: if skill.is_finite() {
                skill.clamp(0.0, 1.0)
            } else {
                0.9
            },
            distortion_penalty: if distortion_penalty.is_finite() {
                distortion_penalty.clamp(0.0, 1.0)
            } else {
                0.1
            },
        }
    }

    /// Word-level accuracy at a distortion level.
    #[must_use]
    pub fn word_accuracy(&self, distortion: f64) -> f64 {
        let d = distortion.clamp(0.0, 1.0);
        (self.skill * (1.0 - self.distortion_penalty * d * d)).clamp(0.0, 1.0)
    }

    /// Produces the human's transcription: exact with `word_accuracy`,
    /// otherwise the word with one realistic typo.
    pub fn read<R: Rng + ?Sized>(&self, word: &str, distortion: f64, rng: &mut R) -> String {
        if rng.gen::<f64>() < self.word_accuracy(distortion) {
            word.to_string()
        } else {
            typo(word, rng)
        }
    }
}

/// Applies one random edit: substitution, deletion, or duplication.
fn typo<R: Rng + ?Sized>(word: &str, rng: &mut R) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => {
            // Substitute with a neighbouring letter.
            let c = out[pos];
            out[pos] = if c.is_ascii_lowercase() {
                (((c as u8 - b'a' + rng.gen_range(1..25)) % 26) + b'a') as char
            } else {
                'x'
            };
        }
        1 => {
            if out.len() > 1 {
                out.remove(pos);
            } else {
                out.push('x');
            }
        }
        _ => {
            let c = out[pos];
            out.insert(pos, c);
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::text::levenshtein;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    #[test]
    fn accuracy_degrades_mildly() {
        let h = HumanReader::typical();
        assert!(h.word_accuracy(0.0) > 0.96);
        assert!(h.word_accuracy(1.0) > 0.85);
        assert!(h.word_accuracy(0.0) >= h.word_accuracy(1.0));
    }

    #[test]
    fn constructor_clamps() {
        let h = HumanReader::new(2.0, -1.0);
        assert_eq!(h.skill, 1.0);
        assert_eq!(h.distortion_penalty, 0.0);
        let h = HumanReader::new(f64::NAN, f64::INFINITY);
        assert_eq!(h.skill, 0.9);
        assert_eq!(h.distortion_penalty, 0.1);
    }

    #[test]
    fn empirical_read_rate_matches() {
        let h = HumanReader::typical();
        let mut r = rng();
        let n = 20_000;
        let exact = (0..n)
            .filter(|_| h.read("bramble", 0.8, &mut r) == "bramble")
            .count();
        let rate = exact as f64 / n as f64;
        let expected = h.word_accuracy(0.8);
        assert!(
            (rate - expected).abs() < 0.01,
            "rate {rate:.3} vs {expected:.3}"
        );
    }

    #[test]
    fn errors_are_single_edits() {
        let h = HumanReader::new(0.0, 0.0); // always errs
        let mut r = rng();
        for _ in 0..500 {
            let t = h.read("example", 0.0, &mut r);
            let d = levenshtein("example", &t);
            assert!(d == 1, "typo distance {d} for {t:?}");
        }
    }

    #[test]
    fn careless_reader_is_worse() {
        assert!(
            HumanReader::careless().word_accuracy(0.5) < HumanReader::typical().word_accuracy(0.5)
        );
    }

    #[test]
    fn typo_of_single_char_word_is_nonempty() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(!typo("a", &mut r).is_empty());
        }
        assert_eq!(typo("", &mut r), "x");
    }
}
