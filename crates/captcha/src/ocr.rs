//! The simulated OCR engine — both the digitization helper and the
//! CAPTCHA attacker.
//!
//! The model: per-character read accuracy falls **linearly** with
//! distortion, so whole-word accuracy falls geometrically in word length.
//! On clean text (`d = 0`) the engine reads ≈ 98–99% of characters —
//! matching commercial OCR on good scans — while at full CAPTCHA-level
//! distortion a 6-letter word survives with probability well under 1%,
//! reproducing the paper's "programs fail" premise. Misread characters
//! are substituted from a visual-confusion table (`o`↔`c`, `l`↔`i`, …),
//! the same error structure real OCR exhibits.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Visual confusion substitutes per character (what OCR misreads it as).
fn confusion_of(c: char) -> char {
    match c {
        'o' => 'c',
        'c' => 'o',
        'l' => 'i',
        'i' => 'l',
        'e' => 'c',
        'u' => 'v',
        'v' => 'u',
        'n' => 'h',
        'h' => 'n',
        'a' => 'o',
        't' => 'f',
        'f' => 't',
        's' => 'z',
        'b' => 'h',
        'r' => 'n',
        'm' => 'n',
        'd' => 'b',
        'g' => 'q',
        'p' => 'q',
        'q' => 'g',
        other => {
            // Shift within the alphabet for anything unlisted.
            if other.is_ascii_lowercase() {
                (((other as u8 - b'a' + 1) % 26) + b'a') as char
            } else {
                'x'
            }
        }
    }
}

/// A parametric OCR engine.
///
/// # Examples
///
/// ```
/// use hc_captcha::OcrEngine;
/// use rand::SeedableRng;
///
/// let ocr = OcrEngine::commercial();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Clean text is read nearly perfectly…
/// assert!(ocr.word_accuracy("example", 0.0) > 0.85);
/// // …but heavy distortion defeats it.
/// assert!(ocr.word_accuracy("example", 1.0) < 0.01);
/// let _reading = ocr.read("example", 0.5, &mut rng);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcrEngine {
    /// Per-character accuracy on undistorted text.
    pub clean_char_accuracy: f64,
    /// Per-character accuracy lost per unit distortion.
    pub distortion_penalty: f64,
}

impl OcrEngine {
    /// A commercial-grade engine: 98.5% per character clean, collapsing
    /// under distortion.
    #[must_use]
    pub fn commercial() -> Self {
        OcrEngine {
            clean_char_accuracy: 0.985,
            distortion_penalty: 0.62,
        }
    }

    /// A stronger research attacker (harder to defeat): 99.5% clean and a
    /// shallower collapse. Used for the security-margin ablation in F2.
    #[must_use]
    pub fn advanced_attacker() -> Self {
        OcrEngine {
            clean_char_accuracy: 0.995,
            distortion_penalty: 0.45,
        }
    }

    /// Per-character accuracy at a distortion level.
    #[must_use]
    pub fn char_accuracy(&self, distortion: f64) -> f64 {
        (self.clean_char_accuracy - self.distortion_penalty * distortion.clamp(0.0, 1.0))
            .clamp(0.0, 1.0)
    }

    /// Probability the whole word is read exactly.
    #[must_use]
    pub fn word_accuracy(&self, word: &str, distortion: f64) -> f64 {
        self.char_accuracy(distortion)
            .powi(word.chars().count() as i32)
    }

    /// Produces the engine's transcription: each character survives with
    /// the per-character accuracy, otherwise gets a confusion substitute;
    /// with a small distortion-scaled probability a character is dropped
    /// entirely (segmentation failure).
    pub fn read<R: Rng + ?Sized>(&self, word: &str, distortion: f64, rng: &mut R) -> String {
        let p = self.char_accuracy(distortion);
        let drop_p = 0.02 * distortion.clamp(0.0, 1.0);
        let mut out = String::with_capacity(word.len());
        for c in word.chars() {
            if rng.gen::<f64>() < drop_p {
                continue;
            }
            if rng.gen::<f64>() < p {
                out.push(c);
            } else {
                out.push(confusion_of(c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(8)
    }

    #[test]
    fn char_accuracy_clamps() {
        let ocr = OcrEngine::commercial();
        assert!(ocr.char_accuracy(0.0) > 0.98);
        assert_eq!(ocr.char_accuracy(5.0), ocr.char_accuracy(1.0));
        assert!(ocr.char_accuracy(1.0) >= 0.0);
        assert!(ocr.char_accuracy(-1.0) <= 1.0);
    }

    #[test]
    fn word_accuracy_falls_with_length_and_distortion() {
        let ocr = OcrEngine::commercial();
        assert!(ocr.word_accuracy("ab", 0.2) > ocr.word_accuracy("abcdef", 0.2));
        assert!(ocr.word_accuracy("abcdef", 0.1) > ocr.word_accuracy("abcdef", 0.8));
    }

    #[test]
    fn empirical_read_rate_matches_model() {
        let ocr = OcrEngine::commercial();
        let mut r = rng();
        let word = "grandest";
        let d = 0.3;
        let n = 20_000;
        let exact = (0..n).filter(|_| ocr.read(word, d, &mut r) == word).count();
        let rate = exact as f64 / n as f64;
        // Model rate minus drop probability effects.
        let drop_none = (1.0 - 0.02 * d).powi(word.len() as i32);
        let expected = ocr.word_accuracy(word, d) * drop_none;
        assert!(
            (rate - expected).abs() < 0.02,
            "rate {rate:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn clean_reads_are_usually_exact() {
        let ocr = OcrEngine::commercial();
        let mut r = rng();
        let exact = (0..1000)
            .filter(|_| ocr.read("bound", 0.0, &mut r) == "bound")
            .count();
        assert!(exact > 900, "exact {exact}");
    }

    #[test]
    fn heavy_distortion_defeats_the_attacker() {
        // Commercial OCR is pushed below the paper's "≪ 1%" pass mark;
        // the deliberately stronger research attacker retains a small edge
        // (that is the security-margin story of experiment F2).
        for (ocr, bound) in [
            (OcrEngine::commercial(), 0.01),
            (OcrEngine::advanced_attacker(), 0.05),
        ] {
            let mut r = rng();
            let exact = (0..5000)
                .filter(|_| ocr.read("certain", 1.0, &mut r) == "certain")
                .count();
            assert!(
                (exact as f64 / 5000.0) < bound,
                "attacker survived distortion: {exact}"
            );
        }
    }

    #[test]
    fn advanced_attacker_is_stronger() {
        let d = 0.6;
        assert!(
            OcrEngine::advanced_attacker().word_accuracy("sample", d)
                > OcrEngine::commercial().word_accuracy("sample", d)
        );
    }

    #[test]
    fn confusions_differ_from_input() {
        for c in "abcdefghijklmnopqrstuvwxyz".chars() {
            assert_ne!(confusion_of(c), c, "confusion of {c} maps to itself");
        }
        assert_eq!(confusion_of('!'), 'x');
    }
}
