//! A synthetic scanned-book corpus.
//!
//! Each [`ScannedWord`] is a pseudo-word (pronounceable syllables, so edit
//! distances behave like English) with a **distortion** level in `[0, 1]`
//! standing in for scan quality: ink bleed, skew, fading. Distortion is
//! what couples the whole system together — OCR accuracy collapses with
//! it while human accuracy barely moves, which is precisely the gap
//! reCAPTCHA harvests.

use rand::Rng;
use serde::{Deserialize, Serialize};

const ONSETS: [&str; 16] = [
    "b", "br", "c", "ch", "d", "f", "g", "gr", "l", "m", "n", "p", "s", "st", "t", "tr",
];
const VOWELS: [&str; 8] = ["a", "e", "i", "o", "u", "ai", "ea", "ou"];
const CODAS: [&str; 8] = ["", "n", "r", "s", "t", "nd", "st", "ck"];

/// Generates one pronounceable pseudo-word of 2–3 syllables.
pub fn pseudo_word<R: Rng + ?Sized>(rng: &mut R) -> String {
    let syllables = rng.gen_range(2..=3);
    let mut w = String::new();
    for i in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        if i == syllables - 1 {
            w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
    }
    w
}

/// One word of the scanned corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScannedWord {
    /// Index within the corpus.
    pub index: usize,
    /// The true text (unknown to the system; the experiment's gold).
    pub truth: String,
    /// Scan distortion in `[0, 1]`.
    pub distortion: f64,
}

/// The whole corpus.
///
/// # Examples
///
/// ```
/// use hc_captcha::ScannedCorpus;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let corpus = ScannedCorpus::generate(100, 0.2, 0.9, &mut rng);
/// assert_eq!(corpus.len(), 100);
/// let w = corpus.word(0).unwrap();
/// assert!((0.2..=0.9).contains(&w.distortion));
/// assert!(w.truth.len() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScannedCorpus {
    words: Vec<ScannedWord>,
}

impl ScannedCorpus {
    /// Generates `n` words with distortion uniform in
    /// `[distortion_lo, distortion_hi]` (clamped and ordered).
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        distortion_lo: f64,
        distortion_hi: f64,
        rng: &mut R,
    ) -> Self {
        let lo = distortion_lo.clamp(0.0, 1.0);
        let hi = distortion_hi.clamp(0.0, 1.0);
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let words = (0..n)
            .map(|index| ScannedWord {
                index,
                truth: pseudo_word(rng),
                distortion: if hi > lo { rng.gen_range(lo..=hi) } else { lo },
            })
            .collect();
        ScannedCorpus { words }
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Access one word.
    #[must_use]
    pub fn word(&self, index: usize) -> Option<&ScannedWord> {
        self.words.get(index)
    }

    /// Iterates over all words.
    pub fn iter(&self) -> impl Iterator<Item = &ScannedWord> {
        self.words.iter()
    }

    /// Mean distortion across the corpus.
    #[must_use]
    pub fn mean_distortion(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        self.words.iter().map(|w| w.distortion).sum::<f64>() / self.words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn pseudo_words_are_plausible() {
        let mut r = rng();
        for _ in 0..100 {
            let w = pseudo_word(&mut r);
            // Max: 3 syllables of 2-char onset + 2-char vowel, plus a
            // 2-char coda on the last syllable = 14 bytes.
            assert!(w.len() >= 2 && w.len() <= 14, "odd word {w:?}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ScannedCorpus::generate(50, 0.0, 1.0, &mut rng());
        let b = ScannedCorpus::generate(50, 0.0, 1.0, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn distortion_bounds_clamped_and_ordered() {
        let mut r = rng();
        let c = ScannedCorpus::generate(100, 0.9, 0.1, &mut r); // reversed
        for w in c.iter() {
            assert!((0.1..=0.9).contains(&w.distortion));
        }
        let c = ScannedCorpus::generate(10, -5.0, 7.0, &mut r); // out of range
        for w in c.iter() {
            assert!((0.0..=1.0).contains(&w.distortion));
        }
    }

    #[test]
    fn degenerate_distortion_range() {
        let mut r = rng();
        let c = ScannedCorpus::generate(10, 0.5, 0.5, &mut r);
        assert!(c.iter().all(|w| w.distortion == 0.5));
        assert!((c.mean_distortion() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus() {
        let mut r = rng();
        let c = ScannedCorpus::generate(0, 0.0, 1.0, &mut r);
        assert!(c.is_empty());
        assert_eq!(c.mean_distortion(), 0.0);
        assert!(c.word(0).is_none());
    }

    #[test]
    fn indices_are_sequential() {
        let mut r = rng();
        let c = ScannedCorpus::generate(20, 0.0, 1.0, &mut r);
        for (i, w) in c.iter().enumerate() {
            assert_eq!(w.index, i);
        }
    }
}
