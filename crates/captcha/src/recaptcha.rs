//! The two-word reCAPTCHA protocol.
//!
//! Each challenge pairs a **control** word (truth known to the service)
//! with an **unknown** word (an OCR failure from the scanned corpus). The
//! respondent types both; matching the control authenticates them *and*
//! makes their transcription of the unknown word count as a vote. Votes
//! are weighted as deployed: the OCR engine's own guesses seed the tally
//! at weight 0.5, human votes weigh 1.0, and a word is **digitized** when
//! one candidate accumulates the promotion threshold (default 2.5 — i.e.
//! at least two agreeing humans, or one human agreeing with both OCR
//! passes).
//!
//! At construction the service runs two independent OCR passes over the
//! corpus, exactly like the deployed pipeline: words where the passes
//! *agree* are accepted as OCR-solved (and may be wrong — that error shows
//! up in experiment F1's OCR-only baseline); words where they *disagree*
//! become the unknown-word pool.

use crate::corpus::{pseudo_word, ScannedCorpus};
use crate::ocr::OcrEngine;
use hc_collect::DetMap;
use hc_core::text::normalize_label;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReCaptchaConfig {
    /// Vote mass required to digitize a word.
    pub promote_votes: f64,
    /// Weight of one human vote.
    pub human_vote_weight: f64,
    /// Weight of one OCR guess.
    pub ocr_vote_weight: f64,
    /// Edit tolerance when checking the control word.
    pub control_max_edits: usize,
    /// Number of control words the service mints.
    pub control_bank_size: usize,
    /// CAPTCHA-grade distortion the service applies when *rendering*
    /// challenges (independent of the underlying scan quality; this is
    /// what keeps bots out even when the scanned word itself was clean).
    pub render_distortion: f64,
}

impl Default for ReCaptchaConfig {
    fn default() -> Self {
        ReCaptchaConfig {
            promote_votes: 2.5,
            human_vote_weight: 1.0,
            ocr_vote_weight: 0.5,
            control_max_edits: 1,
            control_bank_size: 256,
            render_distortion: 0.75,
        }
    }
}

/// Lifecycle of one corpus word inside the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WordStatus {
    /// Both OCR passes agreed; accepted without human help.
    OcrSolved {
        /// The agreed (possibly wrong) transcription.
        text: String,
    },
    /// In the unknown pool, accumulating votes.
    Pending,
    /// Promoted by human votes.
    Digitized {
        /// The winning transcription.
        text: String,
        /// The vote mass it won with.
        votes: f64,
    },
}

impl WordStatus {
    /// The accepted transcription, if any.
    #[must_use]
    pub fn text(&self) -> Option<&str> {
        match self {
            WordStatus::OcrSolved { text } | WordStatus::Digitized { text, .. } => Some(text),
            WordStatus::Pending => None,
        }
    }
}

/// One issued challenge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Challenge {
    /// Index into the service's control bank.
    pub control_index: usize,
    /// The control word's true text (rendered for the respondent).
    pub control_text: String,
    /// Distortion of the control rendering.
    pub control_distortion: f64,
    /// Corpus index of the unknown word.
    pub unknown_index: usize,
    /// The unknown word's true text (only reader models may peek; the
    /// service itself never reads this field).
    pub unknown_truth: String,
    /// Distortion of the unknown scan.
    pub unknown_distortion: f64,
}

/// The service's verdict on a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChallengeResponse {
    /// Whether the control word matched (the respondent is let through).
    pub passed: bool,
    /// Whether this response newly digitized the unknown word.
    pub digitized: bool,
}

/// The reCAPTCHA service.
///
/// # Examples
///
/// ```
/// use hc_captcha::{OcrEngine, ReCaptcha, ReCaptchaConfig, ScannedCorpus};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let corpus = ScannedCorpus::generate(200, 0.5, 1.0, &mut rng);
/// let mut service = ReCaptcha::new(corpus, OcrEngine::commercial(), ReCaptchaConfig::default(), &mut rng);
///
/// if let Some(ch) = service.issue(&mut rng) {
///     // A perfect respondent: types both words exactly.
///     let resp = service.answer(&ch, &ch.control_text.clone(), &ch.unknown_truth.clone());
///     assert!(resp.passed);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ReCaptcha {
    corpus: ScannedCorpus,
    config: ReCaptchaConfig,
    status: Vec<WordStatus>,
    // One tally per corpus word, bumped on every human vote. Entry
    // lookups only — the winning candidate is detected at insert time,
    // so the tally is never iterated.
    votes: Vec<DetMap<String, f64>>,
    control_bank: Vec<String>,
    pending: Vec<usize>,
    served: u64,
    control_failures: u64,
}

impl ReCaptcha {
    /// Builds the service: two OCR passes split the corpus into
    /// OCR-solved words and the pending pool (with seeded votes).
    pub fn new<R: Rng + ?Sized>(
        corpus: ScannedCorpus,
        ocr: OcrEngine,
        config: ReCaptchaConfig,
        rng: &mut R,
    ) -> Self {
        let mut status = Vec::with_capacity(corpus.len());
        let mut votes: Vec<DetMap<String, f64>> = Vec::with_capacity(corpus.len());
        let mut pending = Vec::with_capacity(corpus.len());
        for w in corpus.iter() {
            let pass1 = normalize_label(&ocr.read(&w.truth, w.distortion, rng));
            let pass2 = normalize_label(&ocr.read(&w.truth, w.distortion, rng));
            // A tally rarely sees more than a handful of distinct
            // transcriptions; pre-size past the minimum table so the OCR
            // seeds and the first human votes never trigger a regrow.
            let mut tally = DetMap::with_capacity(4);
            if !pass1.is_empty() {
                *tally.entry(pass1.clone()).or_insert(0.0) += config.ocr_vote_weight;
            }
            if !pass2.is_empty() {
                *tally.entry(pass2.clone()).or_insert(0.0) += config.ocr_vote_weight;
            }
            if !pass1.is_empty() && pass1 == pass2 {
                status.push(WordStatus::OcrSolved { text: pass1 });
            } else {
                status.push(WordStatus::Pending);
                pending.push(w.index);
            }
            votes.push(tally);
        }
        let control_bank = (0..config.control_bank_size.max(1))
            .map(|_| pseudo_word(rng))
            .collect();
        ReCaptcha {
            corpus,
            config,
            status,
            votes,
            control_bank,
            pending,
            served: 0,
            control_failures: 0,
        }
    }

    /// The protocol parameters.
    #[must_use]
    pub fn config(&self) -> &ReCaptchaConfig {
        &self.config
    }

    /// Issues a challenge over a random pending word, or `None` when the
    /// whole corpus is resolved.
    pub fn issue<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Challenge> {
        if self.pending.is_empty() {
            return None;
        }
        let unknown_index = self.pending[rng.gen_range(0..self.pending.len())];
        let word = self
            .corpus
            .word(unknown_index)
            .expect("pending indices are valid"); // hc-analyze: allow(P1): pending indices are built from this corpus
        let control_index = rng.gen_range(0..self.control_bank.len());
        self.served += 1;
        // Both words render at the service's CAPTCHA-grade distortion —
        // identical treatment, so bots cannot tell which is the control;
        // the unknown word additionally keeps whatever damage the original
        // scan carried.
        let render = self.config.render_distortion.clamp(0.0, 1.0);
        Some(Challenge {
            control_index,
            control_text: self.control_bank[control_index].clone(),
            control_distortion: render,
            unknown_index,
            unknown_truth: word.truth.clone(),
            unknown_distortion: render.max(word.distortion),
        })
    }

    /// Processes a response.
    pub fn answer(
        &mut self,
        challenge: &Challenge,
        control_answer: &str,
        unknown_answer: &str,
    ) -> ChallengeResponse {
        let control_ok = hc_core::text::fuzzy_agree(
            &challenge.control_text,
            control_answer,
            self.config.control_max_edits,
        );
        if !control_ok {
            self.control_failures += 1;
            return ChallengeResponse {
                passed: false,
                digitized: false,
            };
        }
        let idx = challenge.unknown_index;
        if !matches!(self.status[idx], WordStatus::Pending) {
            // Already resolved between issue and answer; accept the human.
            return ChallengeResponse {
                passed: true,
                digitized: false,
            };
        }
        let vote = normalize_label(unknown_answer);
        let mut digitized = false;
        if !vote.is_empty() {
            let tally = &mut self.votes[idx];
            let mass = tally.entry(vote.clone()).or_insert(0.0);
            *mass += self.config.human_vote_weight;
            if *mass >= self.config.promote_votes {
                self.status[idx] = WordStatus::Digitized {
                    text: vote,
                    votes: *mass,
                };
                self.pending.retain(|&p| p != idx);
                digitized = true;
            }
        }
        ChallengeResponse {
            passed: true,
            digitized,
        }
    }

    /// Status of one corpus word.
    #[must_use]
    pub fn status_of(&self, index: usize) -> Option<&WordStatus> {
        self.status.get(index)
    }

    /// Words still pending.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Words digitized by human votes.
    #[must_use]
    pub fn digitized_count(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, WordStatus::Digitized { .. }))
            .count()
    }

    /// Words accepted directly from agreeing OCR passes.
    #[must_use]
    pub fn ocr_solved_count(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, WordStatus::OcrSolved { .. }))
            .count()
    }

    /// Challenges served.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Responses that failed the control word.
    #[must_use]
    pub fn control_failures(&self) -> u64 {
        self.control_failures
    }

    /// Accuracy of all *resolved* words (OCR-solved + digitized) against
    /// corpus truth: `(correct, resolved)`.
    #[must_use]
    pub fn resolved_accuracy(&self) -> (usize, usize) {
        let mut correct = 0;
        let mut resolved = 0;
        for (i, s) in self.status.iter().enumerate() {
            if let Some(text) = s.text() {
                resolved += 1;
                let truth = normalize_label(&self.corpus.word(i).expect("index valid").truth); // hc-analyze: allow(P1): status and corpus have equal length
                if text == truth {
                    correct += 1;
                }
            }
        }
        (correct, resolved)
    }

    /// Accuracy of only the human-digitized words: `(correct, digitized)`.
    #[must_use]
    pub fn digitized_accuracy(&self) -> (usize, usize) {
        let mut correct = 0;
        let mut digitized = 0;
        for (i, s) in self.status.iter().enumerate() {
            if let WordStatus::Digitized { text, .. } = s {
                digitized += 1;
                let truth = normalize_label(&self.corpus.word(i).expect("index valid").truth); // hc-analyze: allow(P1): status and corpus have equal length
                if text == &truth {
                    correct += 1;
                }
            }
        }
        (correct, digitized)
    }

    /// The underlying corpus.
    #[must_use]
    pub fn corpus(&self) -> &ScannedCorpus {
        &self.corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(55)
    }

    fn service(n: usize, lo: f64, hi: f64) -> (ReCaptcha, rand::rngs::StdRng) {
        let mut r = rng();
        let corpus = ScannedCorpus::generate(n, lo, hi, &mut r);
        let s = ReCaptcha::new(
            corpus,
            OcrEngine::commercial(),
            ReCaptchaConfig::default(),
            &mut r,
        );
        (s, r)
    }

    #[test]
    fn clean_corpus_is_mostly_ocr_solved() {
        // At d = 0 a ~6.5-char word survives one OCR pass with p ≈ 0.9,
        // and OCR-solving needs two agreeing passes (≈ 0.82).
        let (s, _) = service(300, 0.0, 0.0);
        assert!(
            s.ocr_solved_count() as f64 / 300.0 > 0.7,
            "ocr solved {}",
            s.ocr_solved_count()
        );
    }

    #[test]
    fn distorted_corpus_feeds_the_pending_pool() {
        let (s, _) = service(300, 0.7, 1.0);
        assert!(
            s.pending_count() as f64 / 300.0 > 0.7,
            "pending {}",
            s.pending_count()
        );
    }

    #[test]
    fn control_failure_blocks_the_vote() {
        let (mut s, mut r) = service(100, 0.8, 1.0);
        let ch = s.issue(&mut r).unwrap();
        let truth = ch.unknown_truth.clone();
        let resp = s.answer(&ch, "totally wrong", &truth);
        assert!(!resp.passed);
        assert!(!resp.digitized);
        assert_eq!(s.control_failures(), 1);
        assert!(matches!(
            s.status_of(ch.unknown_index),
            Some(WordStatus::Pending)
        ));
    }

    #[test]
    fn two_agreeing_humans_digitize_with_ocr_seed() {
        let (mut s, mut r) = service(50, 0.9, 1.0);
        let pending_before = s.pending_count();
        let ch = s.issue(&mut r).unwrap();
        let truth = ch.unknown_truth.clone();
        let control = ch.control_text.clone();
        // Default weights: human 1.0 each; OCR seeds may or may not match
        // truth. Two correct humans reach 2.0 < 2.5 unless an OCR pass
        // agreed; a third human always settles it.
        let mut digitized = false;
        for _ in 0..3 {
            let resp = s.answer(&ch, &control, &truth);
            assert!(resp.passed);
            if resp.digitized {
                digitized = true;
                break;
            }
        }
        assert!(digitized);
        let status = s.status_of(ch.unknown_index).unwrap();
        assert_eq!(status.text(), Some(normalize_label(&truth).as_str()));
        assert_eq!(s.pending_count(), pending_before - 1);
        assert_eq!(s.digitized_count(), 1);
    }

    #[test]
    fn votes_on_resolved_words_are_ignored() {
        let (mut s, mut r) = service(10, 0.9, 1.0);
        let ch = s.issue(&mut r).unwrap();
        let truth = ch.unknown_truth.clone();
        let control = ch.control_text.clone();
        for _ in 0..3 {
            s.answer(&ch, &control, &truth);
        }
        // Extra answer after resolution.
        let resp = s.answer(&ch, &control, "different");
        assert!(resp.passed);
        assert!(!resp.digitized);
        assert_eq!(
            s.status_of(ch.unknown_index).unwrap().text(),
            Some(normalize_label(&truth).as_str())
        );
    }

    #[test]
    fn digitized_accuracy_is_high_with_truthful_humans() {
        let (mut s, mut r) = service(100, 0.8, 1.0);
        for _ in 0..2000 {
            let Some(ch) = s.issue(&mut r) else { break };
            let truth = ch.unknown_truth.clone();
            let control = ch.control_text.clone();
            s.answer(&ch, &control, &truth);
        }
        let (correct, digitized) = s.digitized_accuracy();
        assert!(digitized > 50, "digitized {digitized}");
        assert_eq!(correct, digitized, "truthful humans never mis-digitize");
    }

    #[test]
    fn issue_returns_none_when_resolved() {
        let mut r = rng();
        let corpus = ScannedCorpus::generate(0, 0.5, 1.0, &mut r);
        let mut s = ReCaptcha::new(
            corpus,
            OcrEngine::commercial(),
            ReCaptchaConfig::default(),
            &mut r,
        );
        assert!(s.issue(&mut r).is_none());
    }

    #[test]
    fn empty_votes_do_not_count() {
        let (mut s, mut r) = service(10, 0.9, 1.0);
        let ch = s.issue(&mut r).unwrap();
        let control = ch.control_text.clone();
        let resp = s.answer(&ch, &control, "   !!! ");
        assert!(resp.passed);
        assert!(!resp.digitized);
    }

    #[test]
    fn served_counter_increments() {
        let (mut s, mut r) = service(10, 0.9, 1.0);
        let _ = s.issue(&mut r);
        let _ = s.issue(&mut r);
        assert_eq!(s.served(), 2);
        assert_eq!(s.config().control_max_edits, 1);
    }
}
