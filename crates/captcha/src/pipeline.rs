//! The book-digitization loop.
//!
//! [`DigitizationPipeline`] streams simulated respondents — honest human
//! readers plus an optional share of OCR bots trying to sneak through —
//! against a [`ReCaptcha`] service, recording progress snapshots for
//! experiment F7 (digitized fraction and residual error vs total human
//! answers).

use crate::human::HumanReader;
use crate::ocr::OcrEngine;
use crate::recaptcha::ReCaptcha;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One progress snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineProgress {
    /// Responses processed so far.
    pub answers: u64,
    /// Fraction of the corpus resolved (OCR-solved + digitized).
    pub resolved_fraction: f64,
    /// Fraction of the corpus digitized by humans.
    pub digitized_fraction: f64,
    /// Accuracy of resolved words against truth.
    pub resolved_accuracy: f64,
    /// Accuracy of human-digitized words against truth.
    pub digitized_accuracy: f64,
    /// Control-word pass rate so far.
    pub control_pass_rate: f64,
}

/// Streams respondents at a reCAPTCHA service.
#[derive(Debug)]
pub struct DigitizationPipeline {
    service: ReCaptcha,
    reader: HumanReader,
    /// Fraction of responses that come from an OCR bot instead of a human.
    bot_share: f64,
    bot: OcrEngine,
    answers: u64,
    passes: u64,
}

impl DigitizationPipeline {
    /// Creates a pipeline over `service` with the given human model and a
    /// `bot_share` in `[0, 1]` of OCR-bot traffic.
    #[must_use]
    pub fn new(service: ReCaptcha, reader: HumanReader, bot_share: f64, bot: OcrEngine) -> Self {
        DigitizationPipeline {
            service,
            reader,
            bot_share: bot_share.clamp(0.0, 1.0),
            bot,
            answers: 0,
            passes: 0,
        }
    }

    /// Processes up to `n` responses (stops early when the corpus
    /// resolves). Returns the number actually processed.
    ///
    /// Under an `hc-obs` recording scope each call emits one batch of
    /// `captcha.*` counters (answers / passes / bot shares / words newly
    /// digitized) — batched per call, not per response, to keep traces
    /// bounded on million-answer runs.
    pub fn run<R: Rng + ?Sized>(&mut self, n: u64, rng: &mut R) -> u64 {
        let tracing = hc_obs::active();
        let mut processed = 0;
        let mut passed = 0u64;
        let mut bot_answers = 0u64;
        let mut digitized = 0u64;
        for _ in 0..n {
            let Some(ch) = self.service.issue(rng) else {
                break;
            };
            let is_bot = rng.gen::<f64>() < self.bot_share;
            let (control_answer, unknown_answer) = if is_bot {
                (
                    self.bot.read(&ch.control_text, ch.control_distortion, rng),
                    self.bot.read(&ch.unknown_truth, ch.unknown_distortion, rng),
                )
            } else {
                (
                    self.reader
                        .read(&ch.control_text, ch.control_distortion, rng),
                    self.reader
                        .read(&ch.unknown_truth, ch.unknown_distortion, rng),
                )
            };
            let resp = self.service.answer(&ch, &control_answer, &unknown_answer);
            self.answers += 1;
            if resp.passed {
                self.passes += 1;
                passed += 1;
            }
            if tracing {
                bot_answers += u64::from(is_bot);
                digitized += u64::from(resp.digitized);
            }
            processed += 1;
        }
        if tracing && processed > 0 {
            hc_obs::counter_now("captcha.answers", processed);
            hc_obs::counter_now("captcha.passes", passed);
            hc_obs::counter_now("captcha.bot_answers", bot_answers);
            hc_obs::counter_now("captcha.digitized", digitized);
        }
        processed
    }

    /// Takes a progress snapshot.
    #[must_use]
    pub fn progress(&self) -> PipelineProgress {
        let total = self.service.corpus().len().max(1);
        let (res_correct, resolved) = self.service.resolved_accuracy();
        let (dig_correct, digitized) = self.service.digitized_accuracy();
        PipelineProgress {
            answers: self.answers,
            resolved_fraction: resolved as f64 / total as f64,
            digitized_fraction: digitized as f64 / total as f64,
            resolved_accuracy: if resolved == 0 {
                0.0
            } else {
                res_correct as f64 / resolved as f64
            },
            digitized_accuracy: if digitized == 0 {
                0.0
            } else {
                dig_correct as f64 / digitized as f64
            },
            control_pass_rate: if self.answers == 0 {
                0.0
            } else {
                self.passes as f64 / self.answers as f64
            },
        }
    }

    /// The underlying service.
    #[must_use]
    pub fn service(&self) -> &ReCaptcha {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::ScannedCorpus;
    use crate::recaptcha::ReCaptchaConfig;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1001)
    }

    fn pipeline(n_words: usize, bot_share: f64) -> (DigitizationPipeline, rand::rngs::StdRng) {
        let mut r = rng();
        let corpus = ScannedCorpus::generate(n_words, 0.6, 1.0, &mut r);
        let service = ReCaptcha::new(
            corpus,
            OcrEngine::commercial(),
            ReCaptchaConfig::default(),
            &mut r,
        );
        (
            DigitizationPipeline::new(
                service,
                HumanReader::typical(),
                bot_share,
                OcrEngine::commercial(),
            ),
            r,
        )
    }

    #[test]
    fn humans_digitize_the_corpus_accurately() {
        let (mut p, mut r) = pipeline(150, 0.0);
        p.run(20_000, &mut r);
        let prog = p.progress();
        assert!(
            prog.digitized_fraction > 0.8,
            "digitized {:.2}",
            prog.digitized_fraction
        );
        assert!(
            prog.digitized_accuracy > 0.97,
            "accuracy {:.3}",
            prog.digitized_accuracy
        );
        assert!(
            prog.control_pass_rate > 0.85,
            "pass rate {:.2}",
            prog.control_pass_rate
        );
    }

    #[test]
    fn bots_are_filtered_by_the_control_word() {
        let (mut p, mut r) = pipeline(100, 1.0); // pure bot traffic
        p.run(5_000, &mut r);
        let prog = p.progress();
        // Bots rarely pass the distorted control (the 1-edit reCAPTCHA
        // tolerance leaves them a small residual rate), so digitization
        // stalls relative to human traffic.
        assert!(
            prog.control_pass_rate < 0.15,
            "bot pass rate {:.3}",
            prog.control_pass_rate
        );
        assert!(
            prog.digitized_fraction < 0.3,
            "bots digitized {:.2}",
            prog.digitized_fraction
        );
    }

    #[test]
    fn run_stops_when_corpus_resolves() {
        let (mut p, mut r) = pipeline(20, 0.0);
        let processed = p.run(1_000_000, &mut r);
        assert!(processed < 1_000_000);
        assert_eq!(p.service().pending_count(), 0);
    }

    #[test]
    fn progress_on_fresh_pipeline() {
        let (p, _) = pipeline(10, 0.0);
        let prog = p.progress();
        assert_eq!(prog.answers, 0);
        assert_eq!(prog.control_pass_rate, 0.0);
        assert_eq!(prog.digitized_fraction, 0.0);
    }

    #[test]
    fn mixed_traffic_still_converges() {
        let (mut p, mut r) = pipeline(80, 0.3);
        p.run(30_000, &mut r);
        let prog = p.progress();
        assert!(
            prog.digitized_fraction > 0.6,
            "digitized {:.2}",
            prog.digitized_fraction
        );
        assert!(prog.digitized_accuracy > 0.9);
    }
}
