//! # hc-captcha — CAPTCHA and reCAPTCHA, simulated end to end
//!
//! The target paper's first half is the CAPTCHA story: a distorted-text
//! challenge that humans pass and programs fail, and **reCAPTCHA**, which
//! recycles that human effort to digitize books — each challenge pairs a
//! *control* word (answer known) with an *unknown* word (where OCR failed);
//! answering the control correctly authenticates the user *and* casts a
//! vote on the unknown word. The paper reports ≥ 99% word-level accuracy
//! for the resulting transcriptions.
//!
//! We cannot ship scanned books or a commercial OCR engine, so this crate
//! substitutes the *error processes* that drive every reported number
//! (see DESIGN.md):
//!
//! * [`corpus`] — a synthetic scanned-book corpus: deterministic
//!   pseudo-words, each with a distortion level standing in for scan
//!   quality.
//! * [`ocr`] — a parametric OCR attacker/transcriber whose per-character
//!   accuracy degrades linearly with distortion (clean scans read well,
//!   hard scans fail — the reason reCAPTCHA has material to work with).
//! * [`human`] — a human reader model that degrades only mildly with
//!   distortion, with realistic typo errors.
//! * [`challenge`] — the CAPTCHA proper: issue, answer matching with
//!   edit-distance tolerance, pass/fail.
//! * [`recaptcha`] — the two-word protocol and vote-based word promotion
//!   (human votes weigh 1.0, the OCR's own guess seeds 0.5, matching the
//!   deployed weighting).
//! * [`pipeline`] — the digitization loop over a whole corpus, tracking
//!   progress and residual error for experiments F1/F7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod challenge;
pub mod corpus;
pub mod human;
pub mod ocr;
pub mod pipeline;
pub mod recaptcha;

pub use challenge::{Captcha, CaptchaOutcome};
pub use corpus::{ScannedCorpus, ScannedWord};
pub use human::HumanReader;
pub use ocr::OcrEngine;
pub use pipeline::{DigitizationPipeline, PipelineProgress};
pub use recaptcha::{ChallengeResponse, ReCaptcha, ReCaptchaConfig, WordStatus};
