//! The CAPTCHA challenge itself.
//!
//! A [`Captcha`] presents one or more distorted words; the respondent
//! passes when every word matches within the configured edit tolerance.
//! The security/usability frontier of experiment F2 comes straight from
//! this object: sweep distortion, fire human and OCR respondents at it,
//! and plot the two pass rates.

use hc_core::text::fuzzy_agree;
use serde::{Deserialize, Serialize};

/// Result of answering a CAPTCHA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaptchaOutcome {
    /// All words matched within tolerance.
    Pass,
    /// At least one word failed.
    Fail,
}

impl CaptchaOutcome {
    /// `true` for a pass.
    #[must_use]
    pub fn is_pass(self) -> bool {
        matches!(self, CaptchaOutcome::Pass)
    }
}

/// A distorted-text challenge.
///
/// # Examples
///
/// ```
/// use hc_captcha::{Captcha, CaptchaOutcome};
///
/// let c = Captcha::new(vec!["overlooks".into(), "inquiry".into()], 0.7, 1);
/// assert_eq!(c.check(&["overlooks".into(), "inquiry".into()]), CaptchaOutcome::Pass);
/// // One small typo is tolerated…
/// assert_eq!(c.check(&["overlook".into(), "inquiry".into()]), CaptchaOutcome::Pass);
/// // …but not garbage.
/// assert_eq!(c.check(&["zzz".into(), "inquiry".into()]), CaptchaOutcome::Fail);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Captcha {
    words: Vec<String>,
    /// Distortion applied to the rendering (what reader models consume).
    pub distortion: f64,
    /// Edit tolerance per word when checking answers.
    pub max_edits: usize,
}

impl Captcha {
    /// Builds a challenge over `words` at a distortion level, tolerating
    /// up to `max_edits` edits per word.
    #[must_use]
    pub fn new(words: Vec<String>, distortion: f64, max_edits: usize) -> Self {
        Captcha {
            words,
            distortion: distortion.clamp(0.0, 1.0),
            max_edits,
        }
    }

    /// The challenge words (what gets rendered/distorted).
    #[must_use]
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Checks a full answer: pass iff every word matches within tolerance
    /// and the answer has the right word count.
    #[must_use]
    pub fn check(&self, answers: &[String]) -> CaptchaOutcome {
        if answers.len() != self.words.len() {
            return CaptchaOutcome::Fail;
        }
        let ok = self
            .words
            .iter()
            .zip(answers)
            .all(|(w, a)| fuzzy_agree(w, a, self.max_edits));
        if ok {
            CaptchaOutcome::Pass
        } else {
            CaptchaOutcome::Fail
        }
    }

    /// Checks one word of the challenge (used by reCAPTCHA for the control
    /// word only).
    #[must_use]
    pub fn check_word(&self, index: usize, answer: &str) -> bool {
        self.words
            .get(index)
            .is_some_and(|w| fuzzy_agree(w, answer, self.max_edits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_tolerant_matching() {
        let c = Captcha::new(vec!["certain".into()], 0.5, 1);
        assert!(c.check(&["certain".into()]).is_pass());
        assert!(c.check(&["certaim".into()]).is_pass()); // 1 edit
        assert!(!c.check(&["certnim".into()]).is_pass()); // 2 edits
    }

    #[test]
    fn zero_tolerance_requires_normalized_equality() {
        let c = Captcha::new(vec!["Word".into()], 0.5, 0);
        assert!(c.check(&["word".into()]).is_pass(), "case-insensitive");
        assert!(!c.check(&["wird".into()]).is_pass());
    }

    #[test]
    fn word_count_must_match() {
        let c = Captcha::new(vec!["a".into(), "b".into()], 0.5, 1);
        assert!(!c.check(&["a".into()]).is_pass());
        assert!(!c.check(&["a".into(), "b".into(), "c".into()]).is_pass());
    }

    #[test]
    fn check_word_is_per_index() {
        let c = Captcha::new(vec!["alpha".into(), "beta".into()], 0.5, 1);
        assert!(c.check_word(0, "alpha"));
        assert!(c.check_word(1, "betta")); // 1 edit
        assert!(!c.check_word(1, "alpha"));
        assert!(!c.check_word(5, "alpha"));
    }

    #[test]
    fn distortion_clamps() {
        assert_eq!(Captcha::new(vec![], 7.0, 0).distortion, 1.0);
        assert_eq!(Captcha::new(vec![], -1.0, 0).distortion, 0.0);
    }

    #[test]
    fn empty_challenge_passes_empty_answer() {
        let c = Captcha::new(vec![], 0.5, 0);
        assert!(c.check(&[]).is_pass());
    }
}
